#!/usr/bin/env python
"""Strict type-checking gate: ``mypy --strict`` over ``src/repro``.

Usage::

    python tools/typecheck.py            # gate (exit 1 on any finding)
    python tools/typecheck.py --ruff     # also run `ruff check src tools tests`

mypy and ruff come from the ``dev`` optional-dependency extra
(``pip install -e .[dev]``); CI installs them.  On machines without them the
gate *skips* (exit 0) rather than failing, so the simulator itself stays
dependency-free -- the frfc-lint pass (``tools/frfc_lint.py``) has no such
requirement and always runs.
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _have(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


def _run(argv: list[str]) -> int:
    print("$", " ".join(argv), flush=True)
    return subprocess.run(argv, cwd=REPO).returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="typecheck", description="mypy --strict gate for src/repro"
    )
    parser.add_argument(
        "--ruff", action="store_true", help="also run `ruff check` on src, tools, tests"
    )
    args = parser.parse_args(argv)

    status = 0
    if _have("mypy"):
        status |= _run([sys.executable, "-m", "mypy", "--strict", "src/repro"])
    else:
        print("typecheck: mypy not installed; skipping (pip install -e .[dev])")

    if args.ruff:
        if _have("ruff"):
            status |= _run([sys.executable, "-m", "ruff", "check", "src", "tools", "tests"])
        else:
            print("typecheck: ruff not installed; skipping (pip install -e .[dev])")
    return status


if __name__ == "__main__":
    sys.exit(main())
