#!/usr/bin/env python
"""Command-line front end for frfc-lint, the simulator-specific linter.

Usage::

    python tools/frfc_lint.py src/repro          # lint the whole tree
    python tools/frfc_lint.py --list-rules       # print the rule catalogue

Exit status is 0 when no findings survive suppression, 1 otherwise, so the
script slots directly into CI.  The repository's own ``src`` directory is
put on ``sys.path`` automatically; no installation is required.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _bootstrap_path() -> None:
    src = Path(__file__).resolve().parent.parent / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))


def main(argv: list[str] | None = None) -> int:
    _bootstrap_path()
    from repro.lint import ALL_RULES, lint_paths

    parser = argparse.ArgumentParser(
        prog="frfc-lint",
        description="Simulator-specific static analysis (rules D001-D013).",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python tools/frfc_lint.py src/repro)")

    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"frfc-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
