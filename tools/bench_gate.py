#!/usr/bin/env python
"""Benchmark-trajectory regression gate for the simulator.

The observability layer's ``SimProfiler`` measures simulator speed
(cycles/sec per harness phase) on every observed run, but until now the
number went nowhere: nothing was tracked, so a performance regression
would drift in silently.  This tool closes the loop:

``record``
    Run the standard benchmark workload -- the observed quick point
    (FR6, load 0.5, quick preset, seed 1) with only the profiler attached,
    so the number is the raw simulator, not the event-bus overhead --
    write the baseline (``benchmarks/results/BENCH_5.json``) and append
    one line to the trajectory log
    (``benchmarks/results/BENCH_trajectory.jsonl``).  It then runs the
    per-model quick points (VC8, WH8, and FR6 on a 16x16 mesh), writes
    them to ``benchmarks/results/BENCH_models.json``, and appends one
    trajectory line per model (tagged with a ``model`` field).  All files
    are committed, so the trajectory accumulates one point per re-record
    across the repo's history.

``check``
    Re-run the primary workload and compare fresh cycles/sec against the
    baseline.  Fails loudly (exit 1) when the fresh number falls below
    ``--min-ratio`` times the baseline -- the default 0.7 flags a >30%
    regression.  With ``--models`` the per-model workloads are gated the
    same way against ``BENCH_models.json``.  CI runs on shared runners
    whose absolute speed differs from the machine that recorded the
    baseline, so its invocation passes a much looser ratio; the tight
    default is for like-for-like checks on the recording machine.

Usage::

    python tools/bench_gate.py record
    python tools/bench_gate.py check
    python tools/bench_gate.py check --models
    python tools/bench_gate.py check --min-ratio 0.3   # cross-machine (CI)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

BASELINE = REPO_ROOT / "benchmarks" / "results" / "BENCH_5.json"
MODELS_BASELINE = REPO_ROOT / "benchmarks" / "results" / "BENCH_models.json"
TRAJECTORY = REPO_ROOT / "benchmarks" / "results" / "BENCH_trajectory.jsonl"
BASELINE_SCHEMA = "frfc-bench-baseline/1"
MODELS_SCHEMA = "frfc-bench-models/1"

#: The primary benchmark workload: the standard observed quick point.
WORKLOAD = {"config": "FR6", "offered_load": 0.5, "preset": "quick", "seed": 1}

#: Per-model quick points: one per flow-control scheme plus a larger mesh.
#: Loads sit below each scheme's saturation so the drain phase terminates;
#: the mesh entry stresses the worklist machinery (256 routers, most idle).
MODEL_WORKLOADS = {
    "VC8": {"config": "VC8", "offered_load": 0.4, "preset": "quick", "seed": 1},
    "WH8": {"config": "WH8", "offered_load": 0.3, "preset": "quick", "seed": 1},
    "FR6_16x16": {
        "config": "FR6",
        "offered_load": 0.4,
        "preset": "quick",
        "seed": 1,
        "mesh": [16, 16],
    },
}


def _resolve_config(name: str) -> Any:
    from repro import FR6, VC8, WormholeConfig

    configs = {"FR6": FR6, "VC8": VC8, "WH8": WormholeConfig(buffers_per_input=8)}
    try:
        return configs[name]
    except KeyError:
        raise SystemExit(
            f"bench-gate: unknown workload config {name!r}; known: "
            + ", ".join(sorted(configs))
        ) from None


def _make_ledger(args: argparse.Namespace) -> Any:
    if args.no_ledger:
        return None
    from repro.obs.ledger import RunLedger

    return RunLedger(args.ledger)


def _record_bench(ledger: Any, label: str, report: dict[str, Any]) -> None:
    """Drop one ``kind: bench`` record into the run ledger.

    Deterministic outputs (cycles, packets) go in the result block; the
    wall-clock numbers live in the explicitly-labelled profile block, so
    re-records at the same git SHA overwrite rather than accumulate.
    """
    if ledger is None:
        return
    model = {"FR": "FR", "VC": "VC", "WH": "WH"}[str(report["workload"]["config"])[:2]]
    identity = ledger.bench_identity(model, {"label": label, **report["workload"]})
    ledger.record_bench(
        identity,
        {"cycles": report["cycles"],
         "packets_measured": report["packets_measured"]},
        profile=_bench_block(report),
    )


def run_benchmark(workload: dict[str, Any] | None = None) -> dict[str, Any]:
    """Run one workload with only the profiler attached; returns its report."""
    from repro import Mesh2D, run_experiment
    from repro.obs.session import ObsSession

    if workload is None:
        workload = WORKLOAD
    mesh_dims = workload.get("mesh")
    mesh = Mesh2D(*mesh_dims) if mesh_dims else None
    session = ObsSession(profile=True, manifest_out="", bench_out="")
    result = run_experiment(
        _resolve_config(str(workload["config"])),
        workload["offered_load"],
        preset=str(workload["preset"]),
        seed=int(workload["seed"]),
        mesh=mesh,
        obs=session,
    )
    assert session.profiler is not None
    report = session.profiler.report()
    report["workload"] = dict(workload)
    report["packets_measured"] = result.packets_measured
    return report


def git_sha() -> str:
    from repro.obs.manifest import git_sha as manifest_git_sha

    return manifest_git_sha()


def _bench_block(report: dict[str, Any]) -> dict[str, Any]:
    return {key: report[key] for key in ("cycles", "wall_seconds",
                                         "cycles_per_second", "phases")}


def _trajectory_entry(report: dict[str, Any], sha: str,
                      model: str | None = None) -> dict[str, Any]:
    entry = {
        "git_sha": sha,
        "cycles": report["cycles"],
        "wall_seconds": report["wall_seconds"],
        "cycles_per_second": report["cycles_per_second"],
        "phase_cycles_per_second": {
            name: phase["cycles_per_second"]
            for name, phase in sorted(report["phases"].items())
        },
    }
    if model is not None:
        entry["model"] = model
    return entry


def record(args: argparse.Namespace) -> int:
    sha = git_sha()
    ledger = _make_ledger(args)
    report = run_benchmark()
    _record_bench(ledger, "FR6", report)
    baseline = {
        "schema": BASELINE_SCHEMA,
        "workload": report["workload"],
        "packets_measured": report["packets_measured"],
        "git_sha": sha,
        "bench": _bench_block(report),
    }
    args.baseline.parent.mkdir(parents=True, exist_ok=True)
    with open(args.baseline, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    entries = [_trajectory_entry(report, sha)]
    print(f"bench-gate: recorded {report['cycles_per_second']:,.1f} cycles/sec "
          f"({report['cycles']} cycles, {report['wall_seconds']:.2f}s)")

    models: dict[str, Any] = {}
    for model in sorted(MODEL_WORKLOADS):
        model_report = run_benchmark(MODEL_WORKLOADS[model])
        _record_bench(ledger, model, model_report)
        models[model] = {
            "workload": model_report["workload"],
            "packets_measured": model_report["packets_measured"],
            "bench": _bench_block(model_report),
        }
        entries.append(_trajectory_entry(model_report, sha, model=model))
        print(f"  {model:>10}: {model_report['cycles_per_second']:>10,.1f} cycles/sec "
              f"({model_report['cycles']} cycles, "
              f"{model_report['wall_seconds']:.2f}s)")
    models_baseline = {"schema": MODELS_SCHEMA, "git_sha": sha, "models": models}
    with open(args.models_baseline, "w", encoding="utf-8") as handle:
        json.dump(models_baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")

    with open(args.trajectory, "a", encoding="utf-8") as handle:
        for entry in entries:
            handle.write(json.dumps(entry, sort_keys=True))
            handle.write("\n")
    print(f"  baseline:   {_display(args.baseline)}")
    print(f"  models:     {_display(args.models_baseline)}")
    print(f"  trajectory: {_display(args.trajectory)} "
          f"({sum(1 for _ in open(args.trajectory))} points)")
    if ledger is not None:
        print(f"  ledger:     {_display(Path(args.ledger))} "
              f"({ledger.recorded} bench records)")
    return 0


def _display(path: Path) -> str:
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def _gate_one(label: str, baseline_bench: dict[str, Any],
              baseline_workload: dict[str, Any], report: dict[str, Any],
              min_ratio: float) -> int:
    if report["workload"] != baseline_workload:
        print(f"bench-gate: {label} baseline was recorded for a different "
              f"workload ({baseline_workload}); re-record it")
        return 1
    # The workload is deterministic, so a cycle-count drift means the
    # simulation itself changed out from under the recorded baseline.
    if report["cycles"] != baseline_bench["cycles"]:
        print(f"bench-gate: {label} workload simulated {report['cycles']} cycles "
              f"but the baseline recorded {baseline_bench['cycles']}; the "
              "benchmark workload changed -- re-record the baseline")
        return 1
    old = baseline_bench["cycles_per_second"]
    new = report["cycles_per_second"]
    ratio = new / old if old else 0.0
    print(f"bench-gate: {label} baseline {old:,.1f} cycles/sec -> fresh "
          f"{new:,.1f} (ratio {ratio:.2f}, gate {min_ratio:.2f})")
    for name in sorted(report["phases"]):
        fresh_phase = report["phases"][name]["cycles_per_second"]
        base_phase = baseline_bench["phases"].get(name, {}).get(
            "cycles_per_second", 0.0
        )
        phase_ratio = fresh_phase / base_phase if base_phase else float("nan")
        print(f"  {name:>8}: {base_phase:>12,.1f} -> {fresh_phase:>12,.1f} "
              f"(ratio {phase_ratio:.2f})")
    if ratio < min_ratio:
        print(f"bench-gate: FAIL -- {label} is {1 - ratio:.0%} slower than the "
              "recorded baseline (beyond the allowed regression). If the slowdown "
              "is intentional, re-record with `python tools/bench_gate.py record`.")
        return 1
    return 0


def check(args: argparse.Namespace) -> int:
    if not args.baseline.exists():
        print(f"bench-gate: no baseline at {args.baseline}; run `record` first")
        return 1
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("schema") != BASELINE_SCHEMA:
        print(f"bench-gate: unexpected baseline schema {baseline.get('schema')!r}")
        return 1
    report = run_benchmark()
    failed = _gate_one("FR6", baseline["bench"], baseline["workload"], report,
                       args.min_ratio)
    if args.models:
        if not args.models_baseline.exists():
            print(f"bench-gate: no models baseline at {args.models_baseline}; "
                  "run `record` first")
            return 1
        with open(args.models_baseline, encoding="utf-8") as handle:
            models_baseline = json.load(handle)
        if models_baseline.get("schema") != MODELS_SCHEMA:
            print("bench-gate: unexpected models baseline schema "
                  f"{models_baseline.get('schema')!r}")
            return 1
        for model in sorted(MODEL_WORKLOADS):
            recorded = models_baseline["models"].get(model)
            if recorded is None:
                print(f"bench-gate: models baseline has no entry for {model}; "
                      "re-record it")
                failed = 1
                continue
            model_report = run_benchmark(MODEL_WORKLOADS[model])
            failed |= _gate_one(model, recorded["bench"], recorded["workload"],
                                model_report, args.min_ratio)
    if failed:
        return 1
    print("bench-gate: OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_gate", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--baseline", type=Path, default=BASELINE)
    parser.add_argument("--models-baseline", type=Path, default=MODELS_BASELINE)
    parser.add_argument("--trajectory", type=Path, default=TRAJECTORY)
    parser.add_argument(
        "--ledger",
        type=Path,
        default=REPO_ROOT / ".frfc" / "runs",
        help="run-ledger store for `kind: bench` records (default .frfc/runs)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="skip recording benchmark runs into the run ledger",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("record", help="run the workloads and (re)write the baselines")
    gate = sub.add_parser("check", help="run the workload and gate on the baseline")
    gate.add_argument(
        "--min-ratio",
        type=float,
        default=0.7,
        help="fail when fresh/baseline cycles/sec falls below this "
        "(default 0.7 = a >30%% regression fails)",
    )
    gate.add_argument(
        "--models",
        action="store_true",
        help="also gate the per-model quick points (VC8, WH8, FR6 on 16x16) "
        "against BENCH_models.json",
    )
    args = parser.parse_args(argv)
    if args.command == "record":
        return record(args)
    return check(args)


if __name__ == "__main__":
    sys.exit(main())
