#!/usr/bin/env python
"""Benchmark-trajectory regression gate for the simulator.

The observability layer's ``SimProfiler`` measures simulator speed
(cycles/sec per harness phase) on every observed run, but until now the
number went nowhere: nothing was tracked, so a performance regression
would drift in silently.  This tool closes the loop:

``record``
    Run the standard benchmark workload -- the observed quick point
    (FR6, load 0.5, quick preset, seed 1) with only the profiler attached,
    so the number is the raw simulator, not the event-bus overhead --
    write the baseline (``benchmarks/results/BENCH_5.json``) and append
    one line to the trajectory log
    (``benchmarks/results/BENCH_trajectory.jsonl``).  Both files are
    committed, so the trajectory accumulates one point per re-record
    across the repo's history.

``check``
    Re-run the same workload and compare fresh cycles/sec against the
    baseline.  Fails loudly (exit 1) when the fresh number falls below
    ``--min-ratio`` times the baseline -- the default 0.7 flags a >30%
    regression.  CI runs on shared runners whose absolute speed differs
    from the machine that recorded the baseline, so its invocation passes
    a much looser ratio; the tight default is for like-for-like checks on
    the recording machine.

Usage::

    python tools/bench_gate.py record
    python tools/bench_gate.py check
    python tools/bench_gate.py check --min-ratio 0.3   # cross-machine (CI)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

BASELINE = REPO_ROOT / "benchmarks" / "results" / "BENCH_5.json"
TRAJECTORY = REPO_ROOT / "benchmarks" / "results" / "BENCH_trajectory.jsonl"
BASELINE_SCHEMA = "frfc-bench-baseline/1"

#: The benchmark workload: the standard observed quick point.
WORKLOAD = {"config": "FR6", "offered_load": 0.5, "preset": "quick", "seed": 1}


def run_benchmark() -> dict[str, Any]:
    """Run the workload with only the profiler attached; returns its report."""
    from repro import FR6, run_experiment
    from repro.obs.session import ObsSession

    session = ObsSession(profile=True, manifest_out="", bench_out="")
    result = run_experiment(
        FR6,
        WORKLOAD["offered_load"],
        preset=str(WORKLOAD["preset"]),
        seed=int(WORKLOAD["seed"]),
        obs=session,
    )
    assert session.profiler is not None
    report = session.profiler.report()
    report["workload"] = dict(WORKLOAD)
    report["packets_measured"] = result.packets_measured
    return report


def git_sha() -> str:
    from repro.obs.manifest import git_sha as manifest_git_sha

    return manifest_git_sha()


def record(args: argparse.Namespace) -> int:
    report = run_benchmark()
    baseline = {
        "schema": BASELINE_SCHEMA,
        "workload": report["workload"],
        "packets_measured": report["packets_measured"],
        "git_sha": git_sha(),
        "bench": {key: report[key] for key in ("cycles", "wall_seconds",
                                               "cycles_per_second", "phases")},
    }
    args.baseline.parent.mkdir(parents=True, exist_ok=True)
    with open(args.baseline, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    entry = {
        "git_sha": baseline["git_sha"],
        "cycles": report["cycles"],
        "wall_seconds": report["wall_seconds"],
        "cycles_per_second": report["cycles_per_second"],
        "phase_cycles_per_second": {
            name: phase["cycles_per_second"]
            for name, phase in sorted(report["phases"].items())
        },
    }
    with open(args.trajectory, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True))
        handle.write("\n")
    print(f"bench-gate: recorded {report['cycles_per_second']:,.1f} cycles/sec "
          f"({report['cycles']} cycles, {report['wall_seconds']:.2f}s)")
    print(f"  baseline:   {_display(args.baseline)}")
    print(f"  trajectory: {_display(args.trajectory)} "
          f"({sum(1 for _ in open(args.trajectory))} points)")
    return 0


def _display(path: Path) -> str:
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def check(args: argparse.Namespace) -> int:
    if not args.baseline.exists():
        print(f"bench-gate: no baseline at {args.baseline}; run `record` first")
        return 1
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("schema") != BASELINE_SCHEMA:
        print(f"bench-gate: unexpected baseline schema {baseline.get('schema')!r}")
        return 1
    report = run_benchmark()
    if report["workload"] != baseline["workload"]:
        print("bench-gate: baseline was recorded for a different workload "
              f"({baseline['workload']}); re-record it")
        return 1
    # The workload is deterministic, so a cycle-count drift means the
    # simulation itself changed out from under the recorded baseline.
    if report["cycles"] != baseline["bench"]["cycles"]:
        print(f"bench-gate: workload simulated {report['cycles']} cycles but the "
              f"baseline recorded {baseline['bench']['cycles']}; the benchmark "
              "workload changed -- re-record the baseline")
        return 1
    old = baseline["bench"]["cycles_per_second"]
    new = report["cycles_per_second"]
    ratio = new / old if old else 0.0
    print(f"bench-gate: baseline {old:,.1f} cycles/sec -> fresh {new:,.1f} "
          f"(ratio {ratio:.2f}, gate {args.min_ratio:.2f})")
    for name in sorted(report["phases"]):
        fresh_phase = report["phases"][name]["cycles_per_second"]
        base_phase = baseline["bench"]["phases"].get(name, {}).get(
            "cycles_per_second", 0.0
        )
        phase_ratio = fresh_phase / base_phase if base_phase else float("nan")
        print(f"  {name:>8}: {base_phase:>12,.1f} -> {fresh_phase:>12,.1f} "
              f"(ratio {phase_ratio:.2f})")
    if ratio < args.min_ratio:
        print(f"bench-gate: FAIL -- simulator is {1 - ratio:.0%} slower than the "
              "recorded baseline (beyond the allowed regression). If the slowdown "
              "is intentional, re-record with `python tools/bench_gate.py record`.")
        return 1
    print("bench-gate: OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_gate", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--baseline", type=Path, default=BASELINE)
    parser.add_argument("--trajectory", type=Path, default=TRAJECTORY)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("record", help="run the workload and (re)write the baseline")
    gate = sub.add_parser("check", help="run the workload and gate on the baseline")
    gate.add_argument(
        "--min-ratio",
        type=float,
        default=0.7,
        help="fail when fresh/baseline cycles/sec falls below this "
        "(default 0.7 = a >30%% regression fails)",
    )
    args = parser.parse_args(argv)
    if args.command == "record":
        return record(args)
    return check(args)


if __name__ == "__main__":
    sys.exit(main())
