#!/usr/bin/env python
"""Command-line front end for the whole-model analyzers in repro.analysis.

Five subcommands, each a CI gate (exit 0 = property holds):

``cdg``
    Channel-dependency-graph deadlock prover.  With no arguments it runs
    the full self-check: certifies the shipped XY routing deadlock-free on
    the 8x8 mesh *and* confirms the prover names a concrete channel cycle
    for both intentionally broken routing fixtures.  ``--routing`` picks a
    single routing function instead.

``races``
    Cycle-phase race detector over the three shipped network models (FR,
    VC, wormhole): proves every ``step()`` phase loop is actor-order
    independent.  ``--verbose`` prints the per-phase read/write/link/hook
    effect sets behind the verdict.

``permute``
    Runtime order-permutation differ: re-runs one seeded workload under
    shuffled router evaluation orders and demands bit-identical results.

``hotpath``
    Static hot-path performance analyzer: inventories the allocation and
    churn constructs inside each model's per-cycle call tree.  With
    ``--check-budget`` it gates fresh counts against the committed
    ``frfc-hotpath/1`` budget; ``--write-budget`` re-records it;
    ``--verify`` cross-checks the static hot set against ``tracemalloc``
    on a short seeded quick point.

``isolation``
    Whole-program determinism & isolation prover: certifies each
    ``run_experiment``/``run_load_sweep`` entry point a pure function of
    (config, seed, load) -- shared-mutable-state inventory, RNG seed
    provenance, unordered-iteration detection -- and emits the
    ``frfc-isolation/1`` certificate.  ``--check-budget`` gates fresh
    findings against the committed certificate (``--fail-on-new`` rejects
    any finding absent from it); ``--write-budget`` re-records;
    ``--verify`` replays a quick point per model twice in-process and once
    in a ``spawn``-ed subprocess and requires identical digests.

Usage::

    python tools/frfc_analyze.py cdg
    python tools/frfc_analyze.py cdg --routing yx-mixed --mesh 4x4
    python tools/frfc_analyze.py races --verbose
    python tools/frfc_analyze.py permute --orders 5 --cycles 400
    python tools/frfc_analyze.py hotpath --verbose
    python tools/frfc_analyze.py hotpath --check-budget \\
        benchmarks/results/HOTPATH_baseline.json
    python tools/frfc_analyze.py hotpath --verify
    python tools/frfc_analyze.py isolation
    python tools/frfc_analyze.py isolation --check-budget \\
        benchmarks/results/ISOLATION_baseline.json --fail-on-new
    python tools/frfc_analyze.py isolation --verify

The repository's own ``src`` directory is put on ``sys.path``
automatically; no installation is required.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _bootstrap_path() -> None:
    src = Path(__file__).resolve().parent.parent / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))


def _parse_mesh(text: str):
    from repro.topology.mesh import Mesh2D

    try:
        width, height = (int(part) for part in text.lower().split("x"))
    except ValueError:
        raise SystemExit(
            f"frfc-analyze: bad mesh spec {text!r}; expected WxH"
        ) from None
    try:
        return Mesh2D(width, height)
    except ValueError as error:
        raise SystemExit(f"frfc-analyze: {error}") from None


def _make_routing(name: str, mesh):
    from repro.analysis.broken_routing import GreedyDimensionRouting, YXMixedRouting
    from repro.topology.routing import DimensionOrderRouting

    factories = {
        "xy": DimensionOrderRouting,
        "yx-mixed": YXMixedRouting,
        "adaptive-noescape": GreedyDimensionRouting,
    }
    return factories[name](mesh)


def _cmd_cdg(args: argparse.Namespace) -> int:
    from repro.analysis.cdg import prove_deadlock_freedom

    mesh = _parse_mesh(args.mesh)
    if args.routing is not None:
        report = prove_deadlock_freedom(
            _make_routing(args.routing, mesh), mesh, routing_name=args.routing
        )
        print(report.format())
        return 0 if report.deadlock_free else 1

    # Self-check mode: the shipped routing must certify clean AND the
    # prover must demonstrably catch both broken fixtures.
    failures = 0
    for name, expect_free in (
        ("xy", True),
        ("yx-mixed", False),
        ("adaptive-noescape", False),
    ):
        report = prove_deadlock_freedom(
            _make_routing(name, mesh), mesh, routing_name=name
        )
        print(report.format())
        verdict = "deadlock-free" if report.deadlock_free else "deadlock-prone"
        expected = "deadlock-free" if expect_free else "deadlock-prone"
        if report.deadlock_free is expect_free:
            print(f"  OK: {name} is {verdict}, as expected")
        else:
            print(f"  FAIL: {name} is {verdict}, expected {expected}")
            failures += 1
        print()
    return 1 if failures else 0


def _cmd_races(args: argparse.Namespace) -> int:
    from repro.analysis.phases import analyze_known_networks, analyze_model

    if args.model is not None:
        try:
            module, class_name = args.model.rsplit(":", 1)
        except ValueError:
            raise SystemExit(
                f"frfc-analyze: bad model spec {args.model!r}; "
                "expected dotted.module:ClassName"
            ) from None
        reports = [analyze_model(module, class_name)]
    else:
        reports = analyze_known_networks()
    hazards = 0
    for report in reports:
        print(report.format(verbose=args.verbose))
        print()
        hazards += len(report.hazards)
    if hazards:
        print(f"frfc-analyze: {hazards} race hazard(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_permute(args: argparse.Namespace) -> int:
    from repro.analysis.permute import run_permutation_diff

    try:
        report = run_permutation_diff(
            offered_load=args.load,
            seed=args.seed,
            cycles=args.cycles,
            orders=args.orders,
            mesh=_parse_mesh(args.mesh),
            check_invariants=args.check_invariants,
        )
    except ValueError as error:
        raise SystemExit(f"frfc-analyze: {error}") from None
    print(report.format())
    return 0 if report.identical else 1


def _cmd_hotpath(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.hotpath import (
        analyze_hot_model,
        analyze_hot_networks,
        build_budget,
        check_budget,
        verify_allocations,
    )

    if args.model is not None:
        try:
            module, class_name = args.model.rsplit(":", 1)
        except ValueError:
            raise SystemExit(
                f"frfc-analyze: bad model spec {args.model!r}; "
                "expected dotted.module:ClassName"
            ) from None
        reports = [analyze_hot_model(module, class_name)]
    else:
        reports = analyze_hot_networks()

    if args.json:
        print(json.dumps(build_budget(reports), indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.format(verbose=args.verbose))
            print()

    status = 0
    if args.write_budget is not None:
        budget = build_budget(reports)
        args.write_budget.parent.mkdir(parents=True, exist_ok=True)
        with open(args.write_budget, "w", encoding="utf-8") as handle:
            json.dump(budget, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"frfc-analyze: budget written to {args.write_budget}")

    if args.check_budget is not None:
        if not args.check_budget.exists():
            print(
                f"frfc-analyze: no budget at {args.check_budget}; "
                "record one with --write-budget",
                file=sys.stderr,
            )
            return 1
        with open(args.check_budget, encoding="utf-8") as handle:
            budget = json.load(handle)
        violations, notes = check_budget(
            reports, budget, fail_on_slack=args.fail_on_slack
        )
        for note in notes:
            print(f"note: {note}")
        if violations:
            for violation in violations:
                print(f"VIOLATION: {violation}", file=sys.stderr)
            print(
                f"frfc-analyze: {len(violations)} hot-path budget violation(s); "
                "fix the regression or deliberately re-record with --write-budget",
                file=sys.stderr,
            )
            status = 1
        else:
            print("frfc-analyze: hot-path allocation budget OK")

    if args.verify:
        from repro.analysis.phases import AnalysisError

        for report in reports:
            try:
                verdict = verify_allocations(
                    report, threshold=args.verify_threshold
                )
            except (AnalysisError, ValueError) as error:
                print(f"frfc-analyze: {error}", file=sys.stderr)
                status = 1
                continue
            print(verdict.format())
            if not verdict.passed:
                status = 1
        if status:
            print(
                "frfc-analyze: tracemalloc cross-check FAILED -- the static "
                "hot set does not account for observed allocations",
                file=sys.stderr,
            )
    return status


def _cmd_isolation(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.isolation import (
        IsolationAnalyzer,
        IsolationError,
        analyze_entry_points,
        build_certificate,
        check_certificate,
        verify_isolation,
    )

    try:
        if args.entry is not None:
            try:
                module, function = args.entry.rsplit(":", 1)
            except ValueError:
                raise SystemExit(
                    f"frfc-analyze: bad entry spec {args.entry!r}; "
                    "expected dotted.module:function"
                ) from None
            reports = [
                IsolationAnalyzer().analyze_entry(args.entry, module, function)
            ]
        else:
            reports = analyze_entry_points()
    except IsolationError as error:
        raise SystemExit(f"frfc-analyze: {error}") from None

    if args.json:
        print(json.dumps(build_certificate(reports), indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render())
            print()

    status = 0
    violated = sum(1 for report in reports if report.findings)

    if args.write_budget is not None:
        certificate = build_certificate(reports)
        args.write_budget.parent.mkdir(parents=True, exist_ok=True)
        with open(args.write_budget, "w", encoding="utf-8") as handle:
            json.dump(certificate, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"frfc-analyze: certificate written to {args.write_budget}")

    if args.check_budget is not None:
        if not args.check_budget.exists():
            print(
                f"frfc-analyze: no certificate at {args.check_budget}; "
                "record one with --write-budget",
                file=sys.stderr,
            )
            return 1
        with open(args.check_budget, encoding="utf-8") as handle:
            baseline = json.load(handle)
        violations, notes = check_certificate(
            reports, baseline, fail_on_new=args.fail_on_new
        )
        for note in notes:
            print(f"note: {note}")
        if violations:
            for violation in violations:
                print(f"VIOLATION: {violation}", file=sys.stderr)
            print(
                f"frfc-analyze: {len(violations)} isolation certificate "
                "violation(s); fix the shared state or deliberately "
                "re-record with --write-budget",
                file=sys.stderr,
            )
            status = 1
        else:
            print("frfc-analyze: isolation certificate OK")
    elif args.write_budget is None and violated:
        # Bare run: a VIOLATED entry point is itself the failure.
        print(
            f"frfc-analyze: {violated} entry point(s) VIOLATED",
            file=sys.stderr,
        )
        status = 1

    if args.verify:
        divergent = 0
        for verdict in verify_isolation(
            offered_load=args.load, seed=args.seed, cycles=args.cycles
        ):
            print(verdict.render())
            if not verdict.identical:
                divergent += 1
        if divergent:
            print(
                f"frfc-analyze: {divergent} model(s) diverged between serial "
                "and spawned runs -- hidden process state feeds the simulation",
                file=sys.stderr,
            )
            status = 1
    return status


def main(argv: list[str] | None = None) -> int:
    _bootstrap_path()
    parser = argparse.ArgumentParser(
        prog="frfc-analyze",
        description="Whole-model static analysis for the FRFC simulator.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    cdg = subparsers.add_parser("cdg", help="channel-dependency deadlock prover")
    cdg.add_argument(
        "--routing",
        choices=("xy", "yx-mixed", "adaptive-noescape"),
        default=None,
        help="prove one routing function (default: self-check all three)",
    )
    cdg.add_argument("--mesh", default="8x8", help="mesh as WxH (default 8x8)")
    cdg.set_defaults(func=_cmd_cdg)

    races = subparsers.add_parser("races", help="cycle-phase race detector")
    races.add_argument(
        "--model",
        default=None,
        help="analyze one model as dotted.module:ClassName "
        "(default: FR, VC, and wormhole)",
    )
    races.add_argument(
        "--verbose", action="store_true", help="print per-phase effect sets"
    )
    races.set_defaults(func=_cmd_races)

    permute = subparsers.add_parser(
        "permute", help="runtime order-permutation differ"
    )
    permute.add_argument("--orders", type=int, default=4, help="evaluation orders")
    permute.add_argument("--cycles", type=int, default=300, help="cycles per run")
    permute.add_argument("--load", type=float, default=0.3, help="offered load")
    permute.add_argument("--seed", type=int, default=7, help="workload seed")
    permute.add_argument("--mesh", default="4x4", help="mesh as WxH (default 4x4)")
    permute.add_argument(
        "--check-invariants",
        action="store_true",
        help="also run the InvariantChecker during each permuted run",
    )
    permute.set_defaults(func=_cmd_permute)

    hotpath = subparsers.add_parser(
        "hotpath", help="static hot-path allocation/churn analyzer"
    )
    hotpath.add_argument(
        "--model",
        default=None,
        help="analyze one model as dotted.module:ClassName "
        "(default: FR, VC, and wormhole)",
    )
    hotpath.add_argument(
        "--json", action="store_true", help="emit the frfc-hotpath/1 document"
    )
    hotpath.add_argument(
        "--verbose", action="store_true", help="print every finding, not counts"
    )
    hotpath.add_argument(
        "--write-budget",
        type=Path,
        default=None,
        metavar="PATH",
        help="record the current counts as the allocation budget",
    )
    hotpath.add_argument(
        "--check-budget",
        type=Path,
        default=None,
        metavar="PATH",
        help="fail when fresh counts exceed the recorded budget",
    )
    hotpath.add_argument(
        "--fail-on-slack",
        action="store_true",
        help="with --check-budget, also fail when the committed budget is "
        "looser than what the analyzer measures (forces re-recording wins)",
    )
    hotpath.add_argument(
        "--verify",
        action="store_true",
        help="cross-check the static hot set against tracemalloc on a "
        "short seeded 4x4 quick point",
    )
    hotpath.add_argument(
        "--verify-threshold",
        type=float,
        default=0.95,
        help="minimum fraction of allocation events the hot set must "
        "account for (default 0.95)",
    )
    hotpath.set_defaults(func=_cmd_hotpath)

    isolation = subparsers.add_parser(
        "isolation", help="whole-program determinism & isolation prover"
    )
    isolation.add_argument(
        "--entry",
        default=None,
        help="analyze one entry point as dotted.module:function "
        "(default: run_experiment per model plus run_load_sweep)",
    )
    isolation.add_argument(
        "--json", action="store_true", help="emit the frfc-isolation/1 certificate"
    )
    isolation.add_argument(
        "--write-budget",
        type=Path,
        default=None,
        metavar="PATH",
        help="record the current findings as the committed certificate",
    )
    isolation.add_argument(
        "--check-budget",
        type=Path,
        default=None,
        metavar="PATH",
        help="fail when a CERTIFIED entry degrades or findings grow past "
        "the committed certificate",
    )
    isolation.add_argument(
        "--fail-on-new",
        action="store_true",
        help="with --check-budget, also fail on any finding not present "
        "in the committed certificate",
    )
    isolation.add_argument(
        "--verify",
        action="store_true",
        help="replay a quick point per model twice in-process and once in "
        "a spawned subprocess; digests must be identical",
    )
    isolation.add_argument("--load", type=float, default=0.3, help="offered load")
    isolation.add_argument("--seed", type=int, default=7, help="workload seed")
    isolation.add_argument(
        "--cycles", type=int, default=400, help="cycles per verify run"
    )
    isolation.set_defaults(func=_cmd_isolation)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
