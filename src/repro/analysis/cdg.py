"""Channel-dependency-graph deadlock prover.

Dally & Seitz's classic criterion: a deterministic routing function on a
network is deadlock-free iff its *channel dependency graph* (CDG) is
acyclic.  The CDG has one vertex per unidirectional physical channel and an
edge ``c1 -> c2`` whenever some packet, holding ``c1``, can next request
``c2`` -- i.e. the two channels appear consecutively on some route.

This module builds the CDG for any :class:`~repro.topology.routing.
RoutingFunction` x :class:`~repro.topology.mesh.Mesh2D` purely from
observed behaviour: it walks :func:`~repro.topology.routing.route_path`
for every ordered ``(src, dst)`` pair and records consecutive channel
transitions.  No cooperation from the routing function is needed, so the
prover works unchanged for the shipped XY routing, for the intentionally
broken fixtures in :mod:`repro.analysis.broken_routing`, and for any
future routing function added to the repository.

The verdict is constructive in both directions:

* **acyclic** -- Tarjan's SCC algorithm yields a reverse-topological
  order; the prover emits a *certificate* assigning every channel a rank
  such that each dependency edge strictly increases rank.  Any such
  ranking is a proof of deadlock freedom (a cycle would need a rank less
  than itself).  The certificate is re-validated edge by edge before it is
  returned.
* **cyclic** -- the prover extracts and returns one concrete channel
  cycle out of a non-trivial SCC, the exact witness a developer needs.

A routing function that livelocks (revisits a node) is reported through
the ``livelocks`` list rather than crashing the build, using the precise
:class:`~repro.topology.routing.RoutingLoopError` diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.topology.mesh import PORT_NAMES, Mesh2D
from repro.topology.routing import RoutingFunction, RoutingLoopError, route_path


@dataclass(frozen=True)
class Channel:
    """One unidirectional physical channel: ``src`` to ``dst`` via ``port``."""

    src: int
    dst: int
    port: int

    def format(self) -> str:
        return f"{self.src}->{self.dst} ({PORT_NAMES.get(self.port, str(self.port))})"


@dataclass(frozen=True)
class RoutingLivelock:
    """One (src, dst) pair whose route revisits a node, with the node cycle."""

    src: int
    dst: int
    cycle: tuple[int, ...]

    def format(self) -> str:
        loop = " -> ".join(str(node) for node in self.cycle)
        return f"route {self.src} -> {self.dst} livelocks: {loop}"


@dataclass
class CDGReport:
    """The full verdict for one routing function on one mesh.

    ``deadlock_free`` is True iff the CDG is acyclic *and* no route
    livelocks.  When acyclic, ``ranks`` is the certificate (channel ->
    rank, every edge strictly rank-increasing); when cyclic,
    ``counterexample`` is one explicit channel cycle (first channel
    repeated at the end for readability).
    """

    routing_name: str
    mesh: Mesh2D
    channels: list[Channel]
    edges: dict[Channel, set[Channel]]
    ranks: dict[Channel, int] | None
    counterexample: list[Channel] | None
    livelocks: list[RoutingLivelock] = field(default_factory=list)

    @property
    def deadlock_free(self) -> bool:
        return self.ranks is not None and not self.livelocks

    @property
    def num_edges(self) -> int:
        return sum(len(targets) for targets in self.edges.values())

    def format(self, max_certificate_lines: int = 12) -> str:
        """Human-readable certificate or counterexample."""
        mesh = f"{self.mesh.width}x{self.mesh.height}"
        lines = [
            f"channel-dependency graph: {self.routing_name} on {mesh} mesh",
            f"  {len(self.channels)} channels, {self.num_edges} dependencies",
        ]
        for livelock in self.livelocks[:5]:
            lines.append(f"  LIVELOCK: {livelock.format()}")
        if len(self.livelocks) > 5:
            lines.append(f"  ... and {len(self.livelocks) - 5} more livelocked pairs")
        if self.counterexample is not None:
            lines.append("  DEADLOCK: channel dependency cycle:")
            for channel in self.counterexample:
                lines.append(f"    {channel.format()}")
        elif self.ranks is not None:
            lines.append(
                "  deadlock-free: certificate assigns every channel a rank; "
                "each dependency strictly increases rank"
            )
            by_rank = sorted(self.ranks.items(), key=lambda item: (item[1], item[0].src))
            shown = by_rank[:max_certificate_lines]
            for channel, rank in shown:
                lines.append(f"    rank {rank:>4}  {channel.format()}")
            if len(by_rank) > len(shown):
                lines.append(f"    ... {len(by_rank) - len(shown)} more channels")
        return "\n".join(lines)


def build_cdg(
    routing: RoutingFunction, mesh: Mesh2D
) -> tuple[dict[Channel, set[Channel]], list[RoutingLivelock]]:
    """Enumerate every (src, dst) route and collect channel transitions.

    Only mesh-to-mesh channels enter the graph: injection and ejection
    channels cannot participate in a deadlock cycle because injection
    depends on nothing upstream and ejection (infinite reassembly buffers,
    paper Section 3) depends on nothing downstream.
    """
    edges: dict[Channel, set[Channel]] = {}
    livelocks: list[RoutingLivelock] = []
    for src in mesh.nodes():
        for dst in mesh.nodes():
            if src == dst:
                continue
            try:
                path = route_path(routing, mesh, src, dst)
            except RoutingLoopError as error:
                livelocks.append(RoutingLivelock(src, dst, tuple(error.cycle)))
                continue
            hops = [
                _channel(routing, mesh, path[i], path[i + 1], dst)
                for i in range(len(path) - 1)
            ]
            for held, wanted in zip(hops, hops[1:]):
                edges.setdefault(held, set()).add(wanted)
                edges.setdefault(wanted, set())
    return edges, livelocks


def _channel(
    routing: RoutingFunction, mesh: Mesh2D, node: int, next_node: int, dst: int
) -> Channel:
    return Channel(src=node, dst=next_node, port=routing.output_port(node, dst))


def tarjan_sccs(edges: dict[Channel, set[Channel]]) -> list[list[Channel]]:
    """Tarjan's algorithm, iterative (meshes produce deep DFS stacks).

    Returns strongly connected components in reverse-topological order
    (every edge leaving a component points at an earlier-emitted one).
    """
    index_of: dict[Channel, int] = {}
    lowlink: dict[Channel, int] = {}
    on_stack: dict[Channel, bool] = {}
    stack: list[Channel] = []
    components: list[list[Channel]] = []
    counter = 0

    ordered = sorted(edges, key=lambda c: (c.src, c.dst, c.port))
    for root in ordered:
        if root in index_of:
            continue
        work: list[tuple[Channel, list[Channel], int]] = [
            (root, sorted(edges[root], key=lambda c: (c.src, c.dst, c.port)), 0)
        ]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successors, cursor = work.pop()
            advanced = False
            while cursor < len(successors):
                succ = successors[cursor]
                cursor += 1
                if succ not in index_of:
                    work.append((node, successors, cursor))
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append(
                        (succ, sorted(edges[succ], key=lambda c: (c.src, c.dst, c.port)), 0)
                    )
                    advanced = True
                    break
                if on_stack.get(succ, False):
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                component: list[Channel] = []
                while True:
                    top = stack.pop()
                    on_stack[top] = False
                    component.append(top)
                    if top == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def _extract_cycle(
    component: list[Channel], edges: dict[Channel, set[Channel]]
) -> list[Channel]:
    """One explicit cycle inside a non-trivial SCC, by DFS within it."""
    members = set(component)
    start = min(component, key=lambda c: (c.src, c.dst, c.port))
    trail: list[Channel] = [start]
    positions = {start: 0}
    while True:
        here = trail[-1]
        succ = min(
            (c for c in edges[here] if c in members),
            key=lambda c: (c.src, c.dst, c.port),
        )
        if succ in positions:
            cycle = trail[positions[succ] :]
            return cycle + [succ]
        positions[succ] = len(trail)
        trail.append(succ)


def prove_deadlock_freedom(
    routing: RoutingFunction, mesh: Mesh2D, routing_name: str | None = None
) -> CDGReport:
    """Build the CDG and either certify it acyclic or exhibit a cycle."""
    name = routing_name or type(routing).__name__
    edges, livelocks = build_cdg(routing, mesh)
    channels = sorted(edges, key=lambda c: (c.src, c.dst, c.port))
    components = tarjan_sccs(edges)
    for component in components:
        is_cycle = len(component) > 1 or component[0] in edges[component[0]]
        if is_cycle:
            counterexample = _extract_cycle(component, edges)
            return CDGReport(
                routing_name=name,
                mesh=mesh,
                channels=channels,
                edges=edges,
                ranks=None,
                counterexample=counterexample,
                livelocks=livelocks,
            )
    # Tarjan emits SCCs in reverse-topological order (edges point at
    # earlier-emitted components), so flipping the emission index gives a
    # rank every dependency strictly *increases*.  Re-validate edge by edge
    # anyway -- a certificate that is not checked is a comment.
    last = len(components) - 1
    ranks = {
        channel: last - index
        for index, component in enumerate(components)
        for channel in component
    }
    for held, wants in edges.items():
        for wanted in wants:
            if ranks[held] >= ranks[wanted]:
                raise AssertionError(
                    f"certificate invalid: {held.format()} (rank {ranks[held]}) "
                    f"depends on {wanted.format()} (rank {ranks[wanted]})"
                )
    return CDGReport(
        routing_name=name,
        mesh=mesh,
        channels=channels,
        edges=edges,
        ranks=ranks,
        counterexample=None,
        livelocks=livelocks,
    )
