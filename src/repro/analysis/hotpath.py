"""Static hot-path performance analyzer for the per-cycle call tree.

Every experiment in the reproduction is bounded by how fast the kernel can
step one cycle, and the per-cycle cost of pure-Python code is dominated by a
small set of interpreter-level constructs: allocations (displays,
comprehensions, object construction, closures, string building), attribute
dict lookups on slot-less classes, repeated attribute chains inside loops,
and dynamic control flow (``isinstance``, ``try``/``except``).  This module
walks the *statically reachable* call tree of each network model's
``step()`` -- the same call tree the phase-race detector reconstructs in
:mod:`repro.analysis.phases` -- and inventories those constructs per
function and per line.

Three consumers sit on top of the analyzer:

* ``frfc-analyze hotpath`` prints the per-model inventory and emits a
  machine-readable ``frfc-hotpath/1`` budget (counts per category per
  model).  The committed budget (``benchmarks/results/HOTPATH_baseline.json``)
  plus ``--check-budget`` form the CI regression gate: a PR that introduces
  a *new* hot-path allocation site above budget fails loudly.
* The D009 (hot-path allocation) and D010 (slot-less hot-path class) lint
  rules reuse the single-file mode (:func:`analyze_module_hotpath_ast`),
  with the usual ``# frfc-lint: disable=`` suppression.
* ``--verify`` cross-checks the static pass against reality: it steps a
  short seeded workload under :mod:`tracemalloc` and demands that the
  statically discovered hot functions (plus the known hook-reached
  collector/payload modules) account for nearly all observed allocation
  events -- the same prove-it-at-runtime backing the race detector gets
  from the order-permutation differ.

Categories
==========

====================  =======================================================
category              meaning
====================  =======================================================
``list_display``      a ``[...]`` literal evaluated on the hot path
``dict_display``      a ``{k: v}`` literal
``set_display``       a ``{...}`` literal
``tuple_display``     a non-constant tuple display (cheap; advisory only)
``comprehension``     list/set/dict comprehension (allocates result + frame)
``genexpr``           generator expression (allocates a generator object)
``object_construction``  a call to a project class constructor
``closure``           a ``def``/``lambda`` nested in a hot function
``str_concat``        string ``+`` or f-string outside ``raise`` statements
``slotless_class``    a hot class (or base) without ``__slots__``
``hot_import``        an ``import`` executed inside a hot function
``attr_chain_loop``   an attribute chain (>= 2 links) read repeatedly in a
                      loop; bind it to a local before the loop
``isinstance_check``  ``isinstance`` used as per-cycle control flow
``try_except``        a ``try`` statement on the hot path
``hook_escape``       a call through a ``Callable`` attribute (observability
                      hooks, ejection callbacks) -- leaves the static tree
``opaque_call``       a method call on a receiver the analyzer cannot type
====================  =======================================================

Allocation findings raised inside ``raise`` statements are skipped: error
paths execute at most once per run, not per cycle.

Only the *budgeted* categories (:data:`BUDGETED_CATEGORIES`) gate CI; the
rest are advisory context for a human reading the report.
"""

from __future__ import annotations

import ast
import importlib.util
import tracemalloc
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.analysis.phases import (
    KNOWN_NETWORKS,
    AnalysisError,
    ClassInfo,
    SingleModuleResolver,
    SourceResolver,
    _annotation_text,
    _find_actor_collections,
)

if TYPE_CHECKING:
    from repro.sim.netbase import NetworkModel

__all__ = [
    "ALL_CATEGORIES",
    "BUDGETED_CATEGORIES",
    "BUDGET_SCHEMA",
    "HotFunction",
    "HotPathFinding",
    "ModelHotPathReport",
    "VerifyReport",
    "analyze_hot_model",
    "analyze_hot_networks",
    "analyze_module_hotpath_ast",
    "analyze_module_hotpath_source",
    "build_budget",
    "check_budget",
    "verify_allocations",
]

BUDGET_SCHEMA = "frfc-hotpath/1"

#: Allocation-site categories (the per-cycle garbage the issue targets).
ALLOCATION_CATEGORIES: tuple[str, ...] = (
    "list_display",
    "dict_display",
    "set_display",
    "tuple_display",
    "comprehension",
    "genexpr",
    "object_construction",
    "closure",
    "str_concat",
)

#: Structural findings about the hot set itself.
STRUCTURAL_CATEGORIES: tuple[str, ...] = ("slotless_class", "hot_import")

#: Advisory context: not gated, but worth a human's attention.
ADVISORY_CATEGORIES: tuple[str, ...] = (
    "attr_chain_loop",
    "isinstance_check",
    "try_except",
    "hook_escape",
    "opaque_call",
)

ALL_CATEGORIES: tuple[str, ...] = (
    ALLOCATION_CATEGORIES + STRUCTURAL_CATEGORIES + ADVISORY_CATEGORIES
)

#: Categories the CI budget gate enforces.  Tuple displays are excluded
#: (CPython builds small tuples cheaply and folds constant ones); the
#: advisory categories are excluded because they flag *style*, not garbage.
BUDGETED_CATEGORIES: tuple[str, ...] = (
    "list_display",
    "dict_display",
    "set_display",
    "comprehension",
    "genexpr",
    "object_construction",
    "closure",
    "str_concat",
    "slotless_class",
    "hot_import",
)

#: Container/stdlib method names whose receivers are usually builtin
#: containers; calls to these on an untyped receiver are not "escapes".
_STDLIB_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "copy", "count", "discard",
        "endswith", "extend", "format", "get", "index", "insert", "items",
        "join", "keys", "pop", "popleft", "remove", "reverse", "rstrip",
        "setdefault", "sort", "split", "startswith", "strip", "update",
        "values",
    }
)

#: Modules reached only through hooks/payloads during a run (the latency and
#: throughput collectors fed by the ejection callbacks, and the packet
#: payload bookkeeping).  ``--verify`` attributes their allocations to the
#: hook bucket rather than calling them unexplained.
_HOOK_FILE_SUFFIXES: tuple[str, ...] = (
    "stats/collectors.py",
    "stats/streaming.py",
    "traffic/packet.py",
)

ClassKey = tuple[str, str]


@dataclass(frozen=True)
class HotFunction:
    """One function/method statically reachable from a model's ``step()``."""

    module: str
    qualname: str
    path: str
    line: int
    end_line: int


@dataclass(frozen=True)
class HotPathFinding:
    """One construct of interest at one line of a hot function."""

    category: str
    module: str
    path: str
    qualname: str
    line: int
    in_loop: bool
    detail: str

    def format(self) -> str:
        loop = " [in loop]" if self.in_loop else ""
        return f"{self.path}:{self.line}: {self.category} in {self.qualname}: {self.detail}{loop}"


@dataclass
class ModelHotPathReport:
    """The hot-set inventory of one network model."""

    label: str
    module: str
    class_name: str
    hot_functions: list[HotFunction]
    hot_classes: list[str]
    findings: list[HotPathFinding]

    def counts(self) -> dict[str, int]:
        """Finding counts per category (zeros included, stable order)."""
        counts = {category: 0 for category in ALL_CATEGORIES}
        for finding in self.findings:
            counts[finding.category] += 1
        return counts

    def format(self, verbose: bool = False) -> str:
        files = {fn.path for fn in self.hot_functions}
        lines = [
            f"hot path of {self.label} ({self.module}:{self.class_name}):",
            f"  {len(self.hot_functions)} hot functions in {len(files)} files, "
            f"{len(self.hot_classes)} hot classes",
        ]
        counts = self.counts()
        flagged = [c for c in ALL_CATEGORIES if counts[c]]
        if not flagged:
            lines.append("  no findings")
        for category in flagged:
            gate = "  (budgeted)" if category in BUDGETED_CATEGORIES else ""
            lines.append(f"  {category:<20} {counts[category]:>4}{gate}")
        if verbose:
            for finding in sorted(
                self.findings, key=lambda f: (f.path, f.line, f.category)
            ):
                lines.append(f"    {finding.format()}")
            for fn in sorted(self.hot_functions, key=lambda f: (f.path, f.line)):
                lines.append(
                    f"    hot: {fn.qualname} ({fn.path}:{fn.line}-{fn.end_line})"
                )
        return "\n".join(lines)


@dataclass
class _ClassModel:
    """Statically inferred attribute types of one class (along its MRO)."""

    key: ClassKey
    attr_types: dict[str, frozenset[ClassKey]]
    callable_attrs: frozenset[str]
    #: Dispatch-slot aliases: ``self.X = self._Y`` (possibly conditional)
    #: where ``_Y`` is a method -- calls through ``X`` reach every ``_Y``.
    method_aliases: dict[str, frozenset[str]]


class HotPathAnalyzer:
    """Walks one model's ``step()`` call tree and inventories its cost.

    The walk is an over-approximation: attribute types are inferred from
    annotations and ``__init__`` assignments, containers are approximated
    by their element types (indexing/iterating a ``list[FRRouter]`` yields
    an ``FRRouter``), and dynamic dispatch is closed over by re-walking
    statically known subclasses that override a hot method.  Dispatch-slot
    attributes (``self.X = self._Y_plain``/``self._Y_observed`` rebound at
    hook attach/detach) are followed to *every* method they can be bound
    to.  Calls the
    analyzer cannot resolve are reported (``hook_escape``/``opaque_call``)
    rather than silently dropped, and the ``--verify`` tracemalloc mode
    checks the closure against observed allocations.
    """

    def __init__(self, info: ClassInfo, label: str | None = None) -> None:
        self.info = info
        self.label = label or info.name
        self.resolver = info.resolver
        self._resolved: dict[ClassKey, ClassInfo] = {}
        self._class_models: dict[ClassKey, _ClassModel] = {}
        self._seen_modules: set[str] = set()
        self._origins: dict[str, str] = {}
        self._worklist: list[tuple[ClassKey | None, str, str]] = []
        self._visited_methods: set[tuple[ClassKey, str]] = set()
        self._visited_functions: set[tuple[str, str]] = set()
        self._recorded_functions: set[tuple[str, str]] = set()
        self._hot_methods: set[tuple[ClassKey, str]] = set()
        self.hot_functions: list[HotFunction] = []
        self.findings: list[HotPathFinding] = []

    # -- public entry point -------------------------------------------------

    def analyze(self) -> ModelHotPathReport:
        if self.info.method("step") is None:
            raise AnalysisError(
                f"{self.info.module}.{self.info.name} has no step() method"
            )
        self._register(self.info)
        self._enqueue_method((self.info.module, self.info.name), "step")
        # Drain, then close over statically known subclass overrides of hot
        # methods (virtual dispatch), until a fixpoint.
        for _ in range(32):
            self._drain()
            if not self._expand_subclasses():
                break
        self._check_slots()
        unique_keys = dict.fromkeys(key for key, _ in sorted(self._hot_methods))
        hot_classes = sorted(f"{module}:{name}" for (module, name) in unique_keys)
        return ModelHotPathReport(
            label=self.label,
            module=self.info.module,
            class_name=self.info.name,
            hot_functions=sorted(
                self.hot_functions, key=lambda f: (f.path, f.line)
            ),
            hot_classes=hot_classes,
            findings=self.findings,
        )

    # -- resolution helpers -------------------------------------------------

    def _register(self, info: ClassInfo) -> None:
        self._resolved.setdefault((info.module, info.name), info)
        self._seen_modules.add(info.module)

    def _resolve(self, name: str, module: str) -> ClassInfo | None:
        info = self.resolver.resolve_class(name, module)
        if info is not None:
            self._register(info)
        return info

    def _resolve_function(
        self, name: str, module: str, _depth: int = 0
    ) -> tuple[ast.FunctionDef, str] | None:
        if _depth > 8:
            return None
        tree = self.resolver.module_ast(module)
        if tree is None:
            return None
        for stmt in tree.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
                return stmt, module
        for stmt in tree.body:
            if isinstance(stmt, ast.ImportFrom) and stmt.module:
                for alias in stmt.names:
                    if (alias.asname or alias.name) == name:
                        return self._resolve_function(
                            alias.name, stmt.module, _depth + 1
                        )
        return None

    def _find_method(
        self, info: ClassInfo, name: str
    ) -> tuple[ast.FunctionDef, ClassInfo] | None:
        for cls in info.mro():
            for stmt in cls.node.body:
                if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
                    return stmt, cls
        return None

    def _module_path(self, module: str) -> str:
        if module in self._origins:
            return self._origins[module]
        if module.startswith("<file:") and module.endswith(">"):
            path = module[len("<file:") : -1]
        else:
            try:
                spec = importlib.util.find_spec(module)
            except (ImportError, ValueError):
                spec = None
            path = spec.origin if spec is not None and spec.origin else "<unknown>"
        self._origins[module] = path
        return path

    # -- class models (attribute type inference) ----------------------------

    def _class_model(self, key: ClassKey) -> _ClassModel | None:
        if key in self._class_models:
            return self._class_models[key]
        info = self._resolved.get(key)
        if info is None:
            return None
        attr_types: dict[str, set[ClassKey]] = {}
        callable_attrs: set[str] = set()
        method_aliases: dict[str, set[str]] = {}
        for member in info.mro():
            self._register(member)
            for stmt in member.node.body:
                if not isinstance(stmt, ast.FunctionDef):
                    continue
                param_ann = {
                    arg.arg: arg.annotation
                    for arg in list(stmt.args.args) + stmt.args.kwonlyargs
                    if arg.annotation is not None
                }
                for node in ast.walk(stmt):
                    if isinstance(node, ast.AnnAssign):
                        attr = self._self_attr(node.target)
                        if attr is None:
                            continue
                        if "Callable" in _annotation_text(node.annotation):
                            callable_attrs.add(attr)
                            continue
                        types = self._classes_in_annotation(
                            node.annotation, member.module
                        )
                        if node.value is not None:
                            types |= self._classes_in_expr(
                                node.value, member.module, param_ann
                            )
                        attr_types.setdefault(attr, set()).update(types)
                    elif isinstance(node, ast.Assign):
                        for target in node.targets:
                            attr = self._self_attr(target)
                            if attr is None:
                                continue
                            if (
                                isinstance(node.value, ast.Name)
                                and node.value.id in param_ann
                                and "Callable"
                                in _annotation_text(param_ann[node.value.id])
                            ):
                                callable_attrs.add(attr)
                                continue
                            targets = self._method_refs_in(node.value, info)
                            if targets:
                                method_aliases.setdefault(attr, set()).update(
                                    targets
                                )
                                continue
                            attr_types.setdefault(attr, set()).update(
                                self._classes_in_expr(
                                    node.value, member.module, param_ann
                                )
                            )
        model = _ClassModel(
            key=key,
            attr_types={k: frozenset(v) for k, v in attr_types.items()},
            callable_attrs=frozenset(callable_attrs),
            method_aliases={
                k: frozenset(v) for k, v in method_aliases.items()
            },
        )
        self._class_models[key] = model
        return model

    @staticmethod
    def _self_attr(target: ast.expr) -> str | None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
        return None

    def _method_refs_in(self, value: ast.expr, info: ClassInfo) -> frozenset[str]:
        """Dispatch targets of an assigned value that is a method reference.

        Captures dispatch-slot rebinding like
        ``self.accept = self._accept_observed if hook else self._accept_plain``.
        The value must *be* a method reference -- a bare ``self.Y`` or a
        conditional expression over them -- not merely contain one (a method
        passed as a constructor argument is a callback, not a rebinding).
        """
        if isinstance(value, ast.Attribute):
            attr = self._self_attr(value)
            if attr is not None and self._find_method(info, attr) is not None:
                return frozenset({attr})
            return frozenset()
        if isinstance(value, ast.IfExp):
            return self._method_refs_in(value.body, info) | self._method_refs_in(
                value.orelse, info
            )
        if isinstance(value, ast.BoolOp):
            refs: frozenset[str] = frozenset()
            for operand in value.values:
                refs |= self._method_refs_in(operand, info)
            return refs
        return frozenset()

    def _classes_in_annotation(
        self, annotation: ast.expr | None, module: str
    ) -> frozenset[ClassKey]:
        if annotation is None:
            return frozenset()
        keys: set[ClassKey] = set()
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name):
                info = self._resolve(node.id, module)
                if info is not None:
                    keys.add((info.module, info.name))
        return frozenset(keys)

    def _classes_in_expr(
        self,
        value: ast.expr,
        module: str,
        param_ann: dict[str, ast.expr | None],
    ) -> frozenset[ClassKey]:
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            info = self._resolve(value.func.id, module)
            return frozenset({(info.module, info.name)}) if info else frozenset()
        if isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._classes_in_expr(value.elt, module, param_ann)
        if isinstance(value, ast.DictComp):
            return self._classes_in_expr(value.value, module, param_ann)
        if isinstance(value, ast.IfExp):
            return self._classes_in_expr(
                value.body, module, param_ann
            ) | self._classes_in_expr(value.orelse, module, param_ann)
        if isinstance(value, ast.Name) and value.id in param_ann:
            return self._classes_in_annotation(param_ann[value.id], module)
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            out: frozenset[ClassKey] = frozenset()
            for elt in value.elts:
                out |= self._classes_in_expr(elt, module, param_ann)
            return out
        if isinstance(value, ast.BinOp):
            return self._classes_in_expr(
                value.left, module, param_ann
            ) | self._classes_in_expr(value.right, module, param_ann)
        return frozenset()

    # -- the walk -----------------------------------------------------------

    def _enqueue_method(self, key: ClassKey, name: str) -> None:
        if (key, name) in self._visited_methods:
            return
        self._visited_methods.add((key, name))
        self._worklist.append((key, "", name))

    def _enqueue_function(self, module: str, name: str) -> None:
        if (module, name) in self._visited_functions:
            return
        self._visited_functions.add((module, name))
        self._worklist.append((None, module, name))

    def _drain(self) -> None:
        while self._worklist:
            key, module, name = self._worklist.pop(0)
            if key is not None:
                self._walk_method(key, name)
            else:
                self._walk_module_function(module, name)

    def _walk_method(self, key: ClassKey, name: str) -> None:
        info = self._resolved.get(key)
        if info is None:
            return
        found = self._find_method(info, name)
        if found is None:
            return
        func, owner = found
        self._hot_methods.add((key, name))
        qualname = f"{owner.name}.{name}"
        self._record_hot_function(owner.module, qualname, func)
        model = self._class_model(key)
        self._walk_function(func, owner.module, model)

    def _walk_module_function(self, module: str, name: str) -> None:
        resolved = self._resolve_function(name, module)
        if resolved is None:
            return
        func, owner_module = resolved
        self._seen_modules.add(owner_module)
        self._record_hot_function(owner_module, name, func)
        self._walk_function(func, owner_module, None)

    def _record_hot_function(
        self, module: str, qualname: str, func: ast.FunctionDef
    ) -> None:
        fkey = (module, qualname)
        if fkey in self._recorded_functions:
            return
        self._recorded_functions.add(fkey)
        path = self._module_path(module)
        self.hot_functions.append(
            HotFunction(
                module=module,
                qualname=qualname,
                path=path,
                line=func.lineno,
                end_line=func.end_lineno or func.lineno,
            )
        )
        self._scan_function(func, module, path, qualname)

    def _walk_function(
        self, func: ast.FunctionDef, module: str, model: _ClassModel | None
    ) -> None:
        env = self._infer_locals(func, module, model)
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                self._resolve_call(node, module, model, env)

    def _infer_locals(
        self, func: ast.FunctionDef, module: str, model: _ClassModel | None
    ) -> dict[str, frozenset[ClassKey]]:
        env: dict[str, frozenset[ClassKey]] = {}
        if model is not None:
            env["self"] = frozenset({model.key})
        for arg in list(func.args.args) + func.args.kwonlyargs:
            if arg.annotation is not None and arg.arg != "self":
                env[arg.arg] = self._classes_in_annotation(arg.annotation, module)
        # Flow-insensitive fixpoint: assignment chains like
        # ``table = self.out_tables[port]; slot = table.find_departure(...)``
        # converge in a couple of rounds.
        for _ in range(4):
            changed = False
            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    types = self._expr_types(node.value, module, env)
                    for target in node.targets:
                        changed |= self._bind_target(target, types, env)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    types = self._classes_in_annotation(node.annotation, module)
                    if node.value is not None:
                        types |= self._expr_types(node.value, module, env)
                    changed |= self._bind_target(node.target, types, env)
                elif isinstance(node, ast.For):
                    types = self._expr_types(node.iter, module, env)
                    changed |= self._bind_target(node.target, types, env)
                elif isinstance(node, ast.comprehension):
                    types = self._expr_types(node.iter, module, env)
                    changed |= self._bind_target(node.target, types, env)
            if not changed:
                break
        return env

    def _bind_target(
        self,
        target: ast.expr,
        types: frozenset[ClassKey],
        env: dict[str, frozenset[ClassKey]],
    ) -> bool:
        changed = False
        if isinstance(target, ast.Name):
            merged = env.get(target.id, frozenset()) | types
            if merged != env.get(target.id, frozenset()):
                env[target.id] = merged
                changed = True
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                changed |= self._bind_target(elt, types, env)
        return changed

    def _expr_types(
        self,
        expr: ast.expr,
        module: str,
        env: dict[str, frozenset[ClassKey]],
        _depth: int = 0,
    ) -> frozenset[ClassKey]:
        if _depth > 12:
            return frozenset()
        if isinstance(expr, ast.Name):
            return env.get(expr.id, frozenset())
        if isinstance(expr, ast.Attribute):
            base = self._expr_types(expr.value, module, env, _depth + 1)
            return self._attr_types_on(base, expr.attr)
        if isinstance(expr, ast.Subscript):
            # Container-element approximation: indexing a list[FRRouter]
            # (whose inferred type set is {FRRouter}) yields an FRRouter.
            return self._expr_types(expr.value, module, env, _depth + 1)
        if isinstance(expr, ast.Call):
            return self._call_return_types(expr, module, env, _depth)
        if isinstance(expr, ast.IfExp):
            return self._expr_types(
                expr.body, module, env, _depth + 1
            ) | self._expr_types(expr.orelse, module, env, _depth + 1)
        if isinstance(expr, ast.BoolOp):
            out: frozenset[ClassKey] = frozenset()
            for value in expr.values:
                out |= self._expr_types(value, module, env, _depth + 1)
            return out
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            elts: frozenset[ClassKey] = frozenset()
            for elt in expr.elts:
                elts |= self._expr_types(elt, module, env, _depth + 1)
            return elts
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._expr_types(expr.elt, module, env, _depth + 1)
        if isinstance(expr, ast.BinOp):
            return self._expr_types(
                expr.left, module, env, _depth + 1
            ) | self._expr_types(expr.right, module, env, _depth + 1)
        return frozenset()

    def _attr_types_on(
        self, keys: frozenset[ClassKey], attr: str
    ) -> frozenset[ClassKey]:
        out: set[ClassKey] = set()
        for key in sorted(keys):
            model = self._class_model(key)
            if model is not None:
                out |= model.attr_types.get(attr, frozenset())
        return frozenset(out)

    def _call_return_types(
        self,
        call: ast.Call,
        module: str,
        env: dict[str, frozenset[ClassKey]],
        _depth: int,
    ) -> frozenset[ClassKey]:
        if isinstance(call.func, ast.Name):
            info = self._resolve(call.func.id, module)
            if info is not None:
                return frozenset({(info.module, info.name)})
            resolved = self._resolve_function(call.func.id, module)
            if resolved is not None:
                func, owner_module = resolved
                return self._classes_in_annotation(func.returns, owner_module)
            return frozenset()
        if isinstance(call.func, ast.Attribute):
            receiver = self._expr_types(call.func.value, module, env, _depth + 1)
            out: set[ClassKey] = set()
            for key in receiver:
                info = self._resolved.get(key)
                if info is None:
                    continue
                found = self._find_method(info, call.func.attr)
                if found is not None:
                    func, owner = found
                    out |= self._classes_in_annotation(func.returns, owner.module)
            return frozenset(out)
        return frozenset()

    def _resolve_call(
        self,
        call: ast.Call,
        module: str,
        model: _ClassModel | None,
        env: dict[str, frozenset[ClassKey]],
    ) -> None:
        callee = call.func
        if isinstance(callee, ast.Name):
            if self._resolve(callee.id, module) is not None:
                return  # construction; inventoried by the syntactic scan
            resolved = self._resolve_function(callee.id, module)
            if resolved is not None:
                _, owner_module = resolved
                self._enqueue_function(owner_module, callee.id)
            return
        if not isinstance(callee, ast.Attribute):
            return
        receiver_types = self._expr_types(callee.value, module, env)
        name = callee.attr
        dispatched = False
        for key in sorted(receiver_types):
            info = self._resolved.get(key)
            if info is None:
                continue
            receiver_model = self._class_model(key)
            if receiver_model is not None and name in receiver_model.callable_attrs:
                self._finding(
                    "hook_escape",
                    module,
                    call,
                    self._qualname_of(call, module),
                    f"call through Callable attribute '{name}'",
                )
                dispatched = True
                continue
            if self._find_method(info, name) is not None:
                self._enqueue_method(key, name)
                dispatched = True
                continue
            if receiver_model is not None:
                # Dispatch-slot alias: the attribute is rebound to one of a
                # known set of methods; walk every possible target.
                for target in sorted(receiver_model.method_aliases.get(name, ())):
                    self._enqueue_method(key, target)
                    dispatched = True
        if not receiver_types and name not in _STDLIB_METHODS:
            self._finding(
                "opaque_call",
                module,
                call,
                self._qualname_of(call, module),
                f"cannot type receiver of .{name}(); call escapes the static tree",
            )
        del dispatched

    def _qualname_of(self, node: ast.AST, module: str) -> str:
        # Findings raised during the semantic walk carry the enclosing hot
        # function's qualname; the syntactic scan already knows it, so this
        # lookup is only for call-resolution findings.
        lineno = getattr(node, "lineno", 0)
        for fn in self.hot_functions:
            if fn.module == module and fn.line <= lineno <= fn.end_line:
                return fn.qualname
        return "<module>"

    # -- virtual dispatch closure -------------------------------------------

    def _expand_subclasses(self) -> bool:
        # Register every class in every module the walk has touched, then
        # enqueue subclass overrides of hot methods.
        for module in sorted(self._seen_modules):
            tree = self.resolver.module_ast(module)
            if tree is None:
                continue
            for stmt in tree.body:
                if isinstance(stmt, ast.ClassDef):
                    self._resolve(stmt.name, module)
        added = False
        hot = list(self._hot_methods)
        for key, info in list(self._resolved.items()):
            ancestors = {(c.module, c.name) for c in info.mro()} - {key}
            own = {
                s.name for s in info.node.body if isinstance(s, ast.FunctionDef)
            }
            for hot_key, method in hot:
                if (
                    hot_key in ancestors
                    and method in own
                    and (key, method) not in self._visited_methods
                ):
                    self._enqueue_method(key, method)
                    added = True
        return added

    # -- __slots__ audit ----------------------------------------------------

    def _check_slots(self) -> None:
        flagged: set[ClassKey] = set()
        for key in sorted({k for k, _ in sorted(self._hot_methods)}):
            info = self._resolved.get(key)
            if info is None or self._slots_exempt(info):
                continue
            for member in info.mro():
                member_key = (member.module, member.name)
                if member_key in flagged or self._slots_exempt(member):
                    continue
                if not self._has_slots(member.node):
                    flagged.add(member_key)
                    role = "" if member_key == key else f" (base of {info.name})"
                    self._append_finding(
                        HotPathFinding(
                            category="slotless_class",
                            module=member.module,
                            path=self._module_path(member.module),
                            qualname=member.name,
                            line=member.node.lineno,
                            in_loop=False,
                            detail=f"hot class {member.name}{role} has no __slots__",
                        )
                    )

    def _slots_exempt(self, info: ClassInfo) -> bool:
        # Networks (anything with a step()) are stepped once, not per-actor;
        # exceptions and Protocols never live on the per-cycle path.
        if info.method("step") is not None:
            return True
        if info.name.endswith(("Error", "Exception", "Warning")):
            return True
        for base in info.node.bases:
            if isinstance(base, ast.Name) and base.id in (
                "Protocol",
                "Exception",
                "BaseException",
            ):
                return True
        return False

    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        return True
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__"
                ):
                    return True
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "slots"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
        return False

    # -- syntactic per-function scan ----------------------------------------

    def _finding(
        self,
        category: str,
        module: str,
        node: ast.AST,
        qualname: str,
        detail: str,
        in_loop: bool = False,
    ) -> None:
        self._append_finding(
            HotPathFinding(
                category=category,
                module=module,
                path=self._module_path(module),
                qualname=qualname,
                line=getattr(node, "lineno", 0),
                in_loop=in_loop,
                detail=detail,
            )
        )

    def _append_finding(self, finding: HotPathFinding) -> None:
        if finding not in self.findings:
            self.findings.append(finding)

    def _scan_function(
        self, func: ast.FunctionDef, module: str, path: str, qualname: str
    ) -> None:
        for stmt in func.body:
            self._scan_node(stmt, module, qualname, in_loop=False, in_raise=False)
        self._scan_attr_chains(func, module, qualname)

    def _scan_node(
        self,
        node: ast.AST,
        module: str,
        qualname: str,
        in_loop: bool,
        in_raise: bool,
    ) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            in_loop = True
        elif isinstance(node, ast.Raise):
            in_raise = True
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            self._finding(
                "closure", module, node, qualname, "nested function/lambda", in_loop
            )
        elif isinstance(node, ast.Try):
            self._finding(
                "try_except", module, node, qualname, "try/except on hot path", in_loop
            )
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            self._finding(
                "hot_import", module, node, qualname,
                "import executed on the hot path; hoist to module level", in_loop,
            )
        elif not in_raise:
            self._scan_allocation(node, module, qualname, in_loop)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            in_loop = True  # the element expression runs per iteration
        for child in ast.iter_child_nodes(node):
            self._scan_node(child, module, qualname, in_loop, in_raise)

    def _scan_allocation(
        self, node: ast.AST, module: str, qualname: str, in_loop: bool
    ) -> None:
        if isinstance(node, (ast.List, ast.Set)) and isinstance(
            getattr(node, "ctx", ast.Load()), ast.Load
        ):
            category = "list_display" if isinstance(node, ast.List) else "set_display"
            self._finding(category, module, node, qualname, ast.unparse(node), in_loop)
        elif isinstance(node, ast.Dict):
            self._finding(
                "dict_display", module, node, qualname, ast.unparse(node), in_loop
            )
        elif isinstance(node, ast.Tuple) and isinstance(node.ctx, ast.Load):
            # Constant tuples are folded by the compiler; skip them.
            if not all(isinstance(elt, ast.Constant) for elt in node.elts):
                self._finding(
                    "tuple_display", module, node, qualname, ast.unparse(node), in_loop
                )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            self._finding(
                "comprehension", module, node, qualname, ast.unparse(node), in_loop
            )
        elif isinstance(node, ast.GeneratorExp):
            self._finding(
                "genexpr", module, node, qualname, ast.unparse(node), in_loop
            )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "isinstance":
                self._finding(
                    "isinstance_check", module, node, qualname,
                    "isinstance as per-cycle control flow", in_loop,
                )
            elif self._resolve(node.func.id, module) is not None:
                self._finding(
                    "object_construction", module, node, qualname,
                    f"constructs {node.func.id}", in_loop,
                )
        elif isinstance(node, ast.JoinedStr):
            self._finding(
                "str_concat", module, node, qualname, "f-string on hot path", in_loop
            )
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            if any(
                isinstance(side, ast.Constant) and isinstance(side.value, str)
                for side in (node.left, node.right)
            ):
                self._finding(
                    "str_concat", module, node, qualname,
                    "string concatenation on hot path", in_loop,
                )

    # -- repeated attribute chains in loops ---------------------------------

    def _scan_attr_chains(
        self, func: ast.FunctionDef, module: str, qualname: str
    ) -> None:
        reported: set[str] = set()
        for loop in ast.walk(func):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            assigned = {
                n.id
                for n in ast.walk(loop)
                if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
            }
            tallies: dict[str, tuple[int, int]] = {}
            for chain, root, lineno in self._chains_in(loop):
                if root in assigned:
                    continue
                count, first = tallies.get(chain, (0, lineno))
                tallies[chain] = (count + 1, min(first, lineno))
            for chain, (count, first) in sorted(tallies.items()):
                if count < 2 or chain in reported:
                    continue
                reported.add(chain)
                self._append_finding(
                    HotPathFinding(
                        category="attr_chain_loop",
                        module=module,
                        path=self._module_path(module),
                        qualname=qualname,
                        line=first,
                        in_loop=True,
                        detail=f"'{chain}' looked up {count}x in one loop; "
                        "bind it to a local",
                    )
                )

    def _chains_in(self, root: ast.AST) -> list[tuple[str, str, int]]:
        chains: list[tuple[str, str, int]] = []

        def collect(node: ast.AST) -> None:
            if isinstance(node, ast.Call):
                # For method calls, only the receiver chain repeats work;
                # the trailing method attribute is the call itself.
                if isinstance(node.func, ast.Attribute):
                    collect(node.func.value)
                else:
                    collect(node.func)
                for arg in node.args:
                    collect(arg)
                for keyword in node.keywords:
                    collect(keyword.value)
                return
            if isinstance(node, ast.Attribute):
                chain = self._pure_chain(node)
                if chain is not None:
                    name, parts = chain
                    if len(parts) >= 2:
                        chains.append(
                            (f"{name}.{'.'.join(parts)}", name, node.lineno)
                        )
                    return
                collect(node.value)
                return
            for child in ast.iter_child_nodes(node):
                collect(child)

        collect(root)
        return chains

    @staticmethod
    def _pure_chain(node: ast.Attribute) -> tuple[str, list[str]] | None:
        parts: list[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.reverse()
        return current.id, parts


# ---------------------------------------------------------------------------
# Whole-model and single-file entry points
# ---------------------------------------------------------------------------


def analyze_hot_model(
    module: str,
    class_name: str,
    label: str | None = None,
    resolver: SourceResolver | None = None,
) -> ModelHotPathReport:
    """Analyze one network model given as ``dotted.module:ClassName``."""
    resolver = resolver or SourceResolver()
    info = resolver.resolve_class(class_name, module)
    if info is None:
        raise AnalysisError(f"cannot resolve {module}:{class_name}")
    return HotPathAnalyzer(info, label=label or class_name).analyze()


def analyze_hot_networks() -> list[ModelHotPathReport]:
    """Analyze the three shipped network models (FR, VC, wormhole)."""
    resolver = SourceResolver()
    return [
        analyze_hot_model(module, class_name, label=label, resolver=resolver)
        for label, module, class_name in KNOWN_NETWORKS
    ]


def analyze_module_hotpath_source(source: str, path: str) -> list[HotPathFinding]:
    """Single-file analysis for the D009/D010 lint rules, from source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []
    return analyze_module_hotpath_ast(tree, path)


def analyze_module_hotpath_ast(tree: ast.Module, path: str) -> list[HotPathFinding]:
    """Single-file analysis for the D009/D010 lint rules.

    Mirrors the D007 gate: only models whose ``step()`` class *and* actor
    collection classes all live in the linted file are analyzed.  Models
    with imported actors are skipped here -- the whole-model
    ``frfc_analyze hotpath`` pass (and its committed budget) covers those.
    """
    module = f"<file:{path}>"
    resolver = SingleModuleResolver(module, tree)
    local_classes = {
        stmt.name for stmt in tree.body if isinstance(stmt, ast.ClassDef)
    }
    findings: list[HotPathFinding] = []
    for stmt in tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        info = ClassInfo(name=stmt.name, module=module, node=stmt, resolver=resolver)
        if info.method("step") is None or info.method("__init__") is None:
            continue
        collections = _find_actor_collections(info)
        if not collections:
            continue
        if not all(c.class_name in local_classes for c in collections):
            continue
        findings.extend(HotPathAnalyzer(info, label=stmt.name).analyze().findings)
    return findings


# ---------------------------------------------------------------------------
# Budget (the CI gate's file format)
# ---------------------------------------------------------------------------


def build_budget(reports: Iterable[ModelHotPathReport]) -> dict[str, Any]:
    """The ``frfc-hotpath/1`` budget document for a set of model reports."""
    return {
        "schema": BUDGET_SCHEMA,
        "models": {
            report.label: {
                "module": report.module,
                "class": report.class_name,
                "hot_functions": len(report.hot_functions),
                "hot_classes": len(report.hot_classes),
                "categories": report.counts(),
            }
            for report in reports
        },
    }


def check_budget(
    reports: Sequence[ModelHotPathReport],
    budget: dict[str, Any],
    fail_on_slack: bool = False,
) -> tuple[list[str], list[str]]:
    """Compare fresh reports against a recorded budget.

    Returns ``(violations, notes)``: a violation is a budgeted category
    whose fresh count *exceeds* the recorded budget (or a model the budget
    does not know); a note is informational (a category that improved and
    could be re-recorded tighter, or a stale model in the budget).  With
    ``fail_on_slack``, slack is a violation too: the committed budget must
    match what the analyzer measures exactly, so every improvement gets
    locked in by re-recording instead of silently eroding the gate.
    """
    violations: list[str] = []
    notes: list[str] = []
    if budget.get("schema") != BUDGET_SCHEMA:
        violations.append(
            f"unexpected budget schema {budget.get('schema')!r}; "
            f"expected {BUDGET_SCHEMA!r}"
        )
        return violations, notes
    models = budget.get("models", {})
    fresh_labels = {report.label for report in reports}
    for report in reports:
        entry = models.get(report.label)
        if entry is None:
            violations.append(
                f"model {report.label} is missing from the budget; re-record it"
            )
            continue
        recorded = entry.get("categories", {})
        counts = report.counts()
        for category in BUDGETED_CATEGORIES:
            allowed = int(recorded.get(category, 0))
            fresh = counts[category]
            if fresh > allowed:
                violations.append(
                    f"{report.label}: {category} count {fresh} exceeds the "
                    f"recorded budget of {allowed} -- new hot-path "
                    f"{category.replace('_', ' ')} site(s); remove them or "
                    "re-record the budget with intent"
                )
            elif fresh < allowed:
                if fail_on_slack:
                    violations.append(
                        f"{report.label}: {category} improved ({fresh} < "
                        f"budget {allowed}) but the committed budget was not "
                        "tightened; re-record it to lock in the win"
                    )
                else:
                    notes.append(
                        f"{report.label}: {category} improved ({fresh} < budget "
                        f"{allowed}); consider re-recording to lock in the win"
                    )
    for label in models:
        if label not in fresh_labels:
            notes.append(f"budget lists model {label} which was not analyzed")
    return violations, notes


# ---------------------------------------------------------------------------
# Runtime cross-check (tracemalloc)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AllocationSite:
    """One observed allocation site tracemalloc could not attribute."""

    path: str
    line: int
    count: int
    size: int


@dataclass
class VerifyReport:
    """Outcome of the tracemalloc cross-check for one model."""

    label: str
    warmup: int
    cycles: int
    total_count: int
    hot_count: int
    hook_count: int
    unattributed: list[AllocationSite]
    threshold: float

    @property
    def coverage(self) -> float:
        if self.total_count == 0:
            return 0.0
        return (self.hot_count + self.hook_count) / self.total_count

    @property
    def passed(self) -> bool:
        return self.total_count > 0 and self.coverage >= self.threshold

    def format(self) -> str:
        verdict = "OK" if self.passed else "FAIL"
        lines = [
            f"tracemalloc cross-check for {self.label} "
            f"({self.cycles} cycles after {self.warmup} warm-up): {verdict}",
            f"  {self.total_count} allocation events in the simulator; "
            f"{self.hot_count} inside statically hot functions, "
            f"{self.hook_count} in hook-reached code "
            f"(coverage {self.coverage:.1%}, threshold {self.threshold:.1%})",
        ]
        for site in sorted(
            self.unattributed, key=lambda s: s.count, reverse=True
        )[:10]:
            lines.append(
                f"  unattributed: {site.path}:{site.line} "
                f"({site.count} events, {site.size} B)"
            )
        return "\n".join(lines)


def _build_network_for_label(
    label: str, offered_load: float, seed: int
) -> "NetworkModel":
    from repro.baselines.vc.config import VC8
    from repro.baselines.wormhole.network import WormholeConfig
    from repro.core.config import FR6
    from repro.harness.experiment import build_network
    from repro.topology.mesh import Mesh2D

    configs = {"FR": FR6, "VC": VC8, "WH": WormholeConfig(buffers_per_input=8)}
    if label not in configs:
        raise AnalysisError(f"no verify workload for model label {label!r}")
    return build_network(
        configs[label], offered_load, mesh=Mesh2D(4, 4), seed=seed
    )


def verify_allocations(
    report: ModelHotPathReport,
    warmup: int = 64,
    cycles: int = 192,
    offered_load: float = 0.5,
    seed: int = 1,
    threshold: float = 0.95,
) -> VerifyReport:
    """Step a short seeded 4x4 workload under tracemalloc and check that the
    static hot set accounts for (nearly) all observed allocation events.

    Warm-up cycles run untraced so steady-state per-cycle allocation is what
    gets measured.  Events are bucketed by their allocating Python line:
    inside a hot function's span ("hot"), elsewhere in a file the hot set
    touches or in the known hook-fed collector/payload modules ("hook" --
    code reached only through ``Callable`` attributes the static pass
    reports as ``hook_escape``), or unattributed.  Allocations outside the
    ``repro`` package (stdlib internals) are ignored.
    """
    import repro

    package_root = str(Path(repro.__file__).resolve().parent)
    spans: dict[str, list[tuple[int, int]]] = {}
    for fn in report.hot_functions:
        resolved = str(Path(fn.path).resolve())
        spans.setdefault(resolved, []).append((fn.line, fn.end_line))

    network = _build_network_for_label(report.label, offered_load, seed)
    for cycle in range(warmup):
        network.step(cycle)
    tracemalloc.start(1)
    try:
        for cycle in range(warmup, warmup + cycles):
            network.step(cycle)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()

    total = hot = hook = 0
    unattributed: list[AllocationSite] = []
    for stat in snapshot.statistics("lineno"):
        frame = stat.traceback[0]
        path = str(Path(frame.filename).resolve())
        if not path.startswith(package_root):
            continue
        total += stat.count
        if any(lo <= frame.lineno <= hi for lo, hi in spans.get(path, ())):
            hot += stat.count
        elif path in spans or path.endswith(_HOOK_FILE_SUFFIXES):
            hook += stat.count
        else:
            unattributed.append(
                AllocationSite(
                    path=path, line=frame.lineno, count=stat.count, size=stat.size
                )
            )
    return VerifyReport(
        label=report.label,
        warmup=warmup,
        cycles=cycles,
        total_count=total,
        hot_count=hot,
        hook_count=hook,
        unattributed=unattributed,
        threshold=threshold,
    )
