"""Intentionally deadlock-prone routing functions (negative CDG fixtures).

The channel-dependency-graph prover in :mod:`repro.analysis.cdg` must do two
things well: certify the shipped XY routing deadlock-free, and name the
exact offending channel cycle when a routing function is *not*.  These two
routing functions exercise the second path.  Both are deterministic, both
always make minimal progress (so :func:`repro.topology.route_path`
terminates for every pair), yet both allow the four turn combinations that
close a cycle of channel waits on a mesh without virtual channels:

* :class:`YXMixedRouting` routes XY for even-numbered destinations and YX
  for odd-numbered ones.  Mixing the two dimension orders permits all eight
  turns, the textbook way to break dimension-ordered deadlock freedom.
* :class:`GreedyDimensionRouting` models a "minimal adaptive routing
  without an escape channel": at every hop it greedily corrects the
  dimension with the larger remaining offset.  Each single decision looks
  harmless, but position-dependent dimension order again closes wait
  cycles -- the hazard escape virtual channels exist to break (Duato).

Neither class may ever be handed to a network model; they exist so tests
and the ``frfc_analyze cdg`` CLI can demonstrate a real counterexample
cycle.  They satisfy the :class:`repro.topology.routing.RoutingFunction`
protocol.
"""

from __future__ import annotations

from repro.topology.mesh import EAST, EJECT, NORTH, SOUTH, WEST, Mesh2D


class YXMixedRouting:
    """XY routing toward even destinations, YX toward odd ones.

    Deterministic and minimal, but the mixture allows both the XY turns
    (east/west then north/south) and the YX turns (north/south then
    east/west), whose composition around any mesh square is a channel
    cycle.
    """

    def __init__(self, mesh: Mesh2D) -> None:
        self.mesh = mesh

    def output_port(self, node: int, destination: int) -> int:
        """Route dimension-ordered, with the order picked by the destination."""
        x, y = self.mesh.coordinates(node)
        dx, dy = self.mesh.coordinates(destination)
        if destination % 2 == 0:
            order = ("x", "y")
        else:
            order = ("y", "x")
        for dimension in order:
            if dimension == "x" and x != dx:
                return EAST if x < dx else WEST
            if dimension == "y" and y != dy:
                return SOUTH if y < dy else NORTH
        return EJECT


class GreedyDimensionRouting:
    """Minimal 'adaptive' routing with no escape path.

    Corrects whichever dimension has the larger remaining offset (ties go
    to x), a simplified model of minimal adaptive routing collapsed to one
    deterministic choice per hop.  Without an escape channel the
    position-dependent dimension order closes channel-wait cycles.
    """

    def __init__(self, mesh: Mesh2D) -> None:
        self.mesh = mesh

    def output_port(self, node: int, destination: int) -> int:
        """Greedily reduce the dimension with the larger remaining offset."""
        x, y = self.mesh.coordinates(node)
        dx, dy = self.mesh.coordinates(destination)
        offset_x = dx - x
        offset_y = dy - y
        if offset_x == 0 and offset_y == 0:
            return EJECT
        if abs(offset_x) >= abs(offset_y) and offset_x != 0:
            return EAST if offset_x > 0 else WEST
        return SOUTH if offset_y > 0 else NORTH
