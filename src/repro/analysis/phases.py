"""Cycle-phase race detector: static order-independence proof for ``step()``.

Every network model in this repository advances time in *phases*: ``step``
walks the routers (then the interfaces, then the routers again...) calling
one phase method per actor per cycle.  The models are written so the order
in which actors are visited **within** a phase loop cannot matter -- the
precondition both for reproducibility (the loop order is an implementation
detail, not physics) and for any future parallel-stepping optimisation.
Nothing enforced that property until now; this module proves it statically.

The proof rests on an *ownership discipline* that the shipped code already
follows and that this analyzer makes checkable:

========  ==============================================================
owned     State created by the actor itself (fresh objects, per-actor RNG
          streams).  Reachable from exactly one actor: never a race.
node      The actor's own node-group peer -- an interface's ``self.router``
          is the router at the *same* mesh node, wired with the same index
          at construction.  Actor ``i`` touching node-group state only
          touches node ``i``'s state, so per-actor effects stay disjoint.
shared    One object handed to *every* actor (the routing table, the
          config), or the network's own attributes seen from inside a
          phase loop.  Reads commute; any write is a same-cycle race and
          is flagged.
channel   A :class:`repro.sim.link.Link` -- the one mutable object two
          *different* nodes legitimately share.  Safe exactly because the
          link is a pipeline register with ``delay >= 1``: ``send`` fills
          the ``cycle + delay`` slot while ``receive`` drains the ``cycle``
          slot, so sender and receiver commute.  Only the pipeline API
          (``send``/``receive``/``capacity_remaining``/``in_flight`` and
          the ``width``/``delay``/``total_sent`` fields) preserves that
          argument; any other access is flagged.
hook      A ``Callable`` attribute installed by the network (ejection,
          NI credits, observability).  Hook *targets* either stay inside
          the node group or append to network-level aggregation
          collectors; the static pass records each hook escape, and the
          runtime order-permutation differ (:mod:`repro.analysis.permute`)
          verifies the aggregation is order-independent in fact.
payload   A value drained from a channel via ``receive`` -- ownership has
          transferred to this actor for good, so mutating it is safe.
========  ==============================================================

Classification is read from the code itself, not from a hand-kept list:
``Link``-annotated attributes are channels, ``Callable``-annotated
attributes and constructor parameters are hooks, constructor arguments
that subscript an actor collection with the construction loop variable are
node-group references, loop-invariant constructor arguments are shared,
and everything else the actor builds is owned.

Phase loops come in two shapes, both recognised:

* ``for router in self.routers: router.control_phase(cycle)`` -- iterate
  the actor collection directly (optionally through a local alias);
* ``for node in self.eval_order: self.routers[node].control_phase(cycle)``
  -- iterate the permutable evaluation order and index the collection.
  ``self.<collection>[node]`` with the exact loop index is the actor
  itself; any other index reaches a *different* node and is shared.

The detector then walks the full phase call tree -- through helper
methods, node-group calls, and resolvable shared-object methods -- and
flags as a **D007 hazard** every write to shared state and every channel
access outside the pipeline API, i.e. exactly the same-cycle
write-then-read couplings that do not pass through a ``Link`` pipeline
stage.  Statements ``step`` runs directly (packet creation, occupancy
sampling) execute on the single network actor with no intra-phase
concurrency, so they are sequenced by definition and reported in the
phase order without race analysis.

Two refinements keep the proof exact for the active-set kernel:

* **Per-actor slots in shared arrays.**  A subscript store whose index is
  the phase loop's own index variable (``self._flags[node] = 0`` inside
  ``for node in self.eval_order``) writes a slot no other iteration of the
  loop touches: iteration ``i`` writes only slot ``i``, so the slots are
  disjoint across actors and the store is recorded as a per-actor write
  rather than flagged.  Any subscript store with a non-index key on shared
  state is still a hazard.
* **Method-alias dispatch.**  An attribute assigned a bound method of the
  same class (``self.accept_flit = self._accept_flit_plain``, swapped by
  hook setters) is a dispatch slot; a call through it is walked into
  *every* method ever assigned to that slot anywhere in the class, so the
  analysis covers the union of plain and observed variants instead of
  silently skipping the call.
"""

from __future__ import annotations

import ast
import importlib.util
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

#: The Link pipeline API: calls that preserve the delay >= 1 argument.
LINK_API_CALLS = frozenset({"send", "receive", "capacity_remaining", "in_flight"})

#: Link fields that are safe to read (configuration and lifetime counters,
#: plus ``pending``, the documented O(1) occupancy counter ``in_flight``
#: returns verbatim -- reading it commutes exactly like calling in_flight).
LINK_API_FIELDS = frozenset({"width", "delay", "total_sent", "pending"})

#: Method names assumed to mutate their receiver when the class is opaque.
MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "add", "insert", "extend", "extendleft",
        "remove", "discard", "pop", "popleft", "popitem", "clear", "update",
        "setdefault", "sort", "reverse", "write",
    }
)

#: Network attributes that hold the permutable actor evaluation order.
INDEX_ORDER_ATTRS = frozenset({"eval_order"})

#: The shipped network models the ``frfc_analyze races`` CLI checks.
KNOWN_NETWORKS: tuple[tuple[str, str, str], ...] = (
    ("FR", "repro.core.network", "FRNetwork"),
    ("VC", "repro.baselines.vc.network", "VCNetwork"),
    ("WH", "repro.baselines.wormhole.network", "WormholeNetwork"),
)

_MAX_CALL_DEPTH = 12


class AnalysisError(Exception):
    """The model could not be analysed (unresolvable class, missing step)."""


# ---------------------------------------------------------------------------
# Source resolution (AST only -- model modules are never executed)
# ---------------------------------------------------------------------------


@dataclass
class ClassInfo:
    """One class's AST plus enough context to resolve its bases."""

    name: str
    module: str
    node: ast.ClassDef
    resolver: "SourceResolver"

    def method(self, name: str) -> ast.FunctionDef | None:
        """Find ``name`` along the (statically resolvable) MRO."""
        for cls in self.mro():
            for stmt in cls.node.body:
                if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
                    return stmt
        return None

    def mro(self) -> list["ClassInfo"]:
        """This class followed by its resolvable base classes, in order."""
        chain: list[ClassInfo] = [self]
        seen = {(self.module, self.name)}
        frontier = [self]
        while frontier:
            current = frontier.pop(0)
            for base in current.node.bases:
                if not isinstance(base, ast.Name):
                    continue
                resolved = current.resolver.resolve_class(base.id, current.module)
                if resolved is None or (resolved.module, resolved.name) in seen:
                    continue
                seen.add((resolved.module, resolved.name))
                chain.append(resolved)
                frontier.append(resolved)
        return chain


class SourceResolver:
    """Loads and caches module ASTs by dotted name, without executing them."""

    def __init__(self) -> None:
        self._modules: dict[str, ast.Module | None] = {}

    def module_ast(self, module: str) -> ast.Module | None:
        if module not in self._modules:
            self._modules[module] = self._load(module)
        return self._modules[module]

    def _load(self, module: str) -> ast.Module | None:
        try:
            spec = importlib.util.find_spec(module)
        except (ImportError, ValueError):
            return None
        if spec is None or spec.origin is None or not spec.origin.endswith(".py"):
            return None
        source = Path(spec.origin).read_text(encoding="utf-8")
        return ast.parse(source, filename=spec.origin)

    def resolve_class(self, name: str, module: str) -> ClassInfo | None:
        """Find class ``name`` in ``module`` or through its imports."""
        tree = self.module_ast(module)
        if tree is None:
            return None
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef) and stmt.name == name:
                return ClassInfo(name=name, module=module, node=stmt, resolver=self)
        for stmt in tree.body:
            if isinstance(stmt, ast.ImportFrom) and stmt.module:
                for alias in stmt.names:
                    if (alias.asname or alias.name) == name:
                        return self.resolve_class(alias.name, stmt.module)
        return None


class SingleModuleResolver(SourceResolver):
    """Resolution restricted to one already-parsed module (lint-rule mode).

    Imports are deliberately not followed: the per-file D007 lint rule can
    only reason about models whose actor classes live in the same file;
    the ``frfc_analyze races`` CLI does the whole-model, cross-module job.
    """

    def __init__(self, module: str, tree: ast.Module) -> None:
        super().__init__()
        self._modules[module] = tree

    def _load(self, module: str) -> ast.Module | None:
        return None


# ---------------------------------------------------------------------------
# Ownership classification
# ---------------------------------------------------------------------------

OWNED = "owned"
NODE = "node"
SHARED = "shared"
CHANNEL = "channel"
HOOK = "hook"
PAYLOAD = "payload"
SCALAR = "scalar"
SELF = "self"  # the actor currently being stepped by the phase loop
NETWORK = "network"  # the network object, seen from inside a phase loop
ACTORS = "actors"  # an actor collection attribute (self.routers, ...)
INDEX = "index"  # the phase loop's actor index variable


@dataclass(frozen=True)
class Val:
    """Abstract value: an ownership kind, an optional class, a report chain."""

    kind: str
    cls: str | None = None
    chain: tuple[str, ...] = ()


@dataclass
class AttrClass:
    """Classification of one actor attribute or constructor parameter."""

    kind: str
    cls: str | None = None  # class name for NODE / SHARED attributes


@dataclass(frozen=True)
class ActorCollection:
    """One ``self.<attr> = [ActorClass(...) for v in ...]`` construction.

    ``module`` is where the construction statement lives (the class that
    defines the ``__init__``), which is where ``class_name`` resolves from.
    """

    attr: str
    class_name: str
    loop_var: str
    call: ast.Call
    module: str


def _annotation_text(node: ast.expr | None) -> str:
    return ast.unparse(node) if node is not None else ""


def _find_actor_collections(info: ClassInfo) -> list[ActorCollection]:
    """Actor constructions from every ``__init__`` along the MRO.

    A subclass like the wormhole network inherits its collections (and its
    ``step``) from the base network, so each class's own ``__init__`` is
    scanned; the most-derived definition of an attribute wins.
    """
    collections: list[ActorCollection] = []
    for cls in info.mro():
        for stmt in cls.node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
                for found in _collections_in_init(stmt, cls.module):
                    if all(found.attr != existing.attr for existing in collections):
                        collections.append(found)
    return collections


def _collections_in_init(init: ast.FunctionDef, module: str) -> list[ActorCollection]:
    collections: list[ActorCollection] = []
    for stmt in ast.walk(init):
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        value = stmt.value
        if not (isinstance(value, ast.ListComp) and isinstance(value.elt, ast.Call)):
            continue
        func = value.elt.func
        if not isinstance(func, ast.Name):
            continue
        generator = value.generators[0]
        if not isinstance(generator.target, ast.Name):
            continue
        collections.append(
            ActorCollection(
                attr=target.attr,
                class_name=func.id,
                loop_var=generator.target.id,
                call=value.elt,
                module=module,
            )
        )
    return collections


def _mentions_name(expr: ast.expr, name: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == name for node in ast.walk(expr)
    )


def _classify_constructor_arg(
    expr: ast.expr, loop_var: str, collections: Sequence[ActorCollection]
) -> AttrClass:
    """Ownership of one constructor argument, from the construction site."""
    if isinstance(expr, ast.Subscript):
        base = expr.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            for collection in collections:
                if collection.attr == base.attr:
                    index = expr.slice
                    if isinstance(index, ast.Name) and index.id == loop_var:
                        return AttrClass(NODE, cls=collection.class_name)
                    # Indexing an actor collection by anything other than
                    # the construction loop variable reaches a *different*
                    # node: classify shared so any write is flagged.
                    return AttrClass(SHARED, cls=collection.class_name)
    if _mentions_name(expr, loop_var):
        return AttrClass(OWNED)
    return AttrClass(SHARED)


def _param_names(func: ast.FunctionDef) -> list[str]:
    names = [arg.arg for arg in func.args.posonlyargs + func.args.args]
    return names[1:] if names and names[0] == "self" else names


def _bind_call_args(func: ast.FunctionDef, call: ast.Call) -> dict[str, ast.expr]:
    """Map constructor-call argument expressions onto parameter names."""
    bound: dict[str, ast.expr] = {}
    for name, arg in zip(_param_names(func), call.args):
        bound[name] = arg
    for keyword in call.keywords:
        if keyword.arg is not None:
            bound[keyword.arg] = keyword.value
    return bound


class ActorModel:
    """Everything the walker needs to know about one actor class."""

    def __init__(
        self,
        info: ClassInfo,
        collection: ActorCollection | None,
        all_collections: Sequence[ActorCollection],
    ) -> None:
        self.info = info
        self.attrs: dict[str, AttrClass] = {}
        self.param_classes: dict[str, AttrClass] = {}
        # Dispatch slots: attribute name -> every method of this class ever
        # assigned to it (``self.X = self._X_plain`` and the hook-setter
        # swaps).  A call through the slot is analysed as the union.
        self.method_aliases: dict[str, list[str]] = {}
        init = info.method("__init__")
        if init is not None:
            self._classify_params(init, collection, all_collections)
            self._classify_attrs()

    def _classify_params(
        self,
        init: ast.FunctionDef,
        collection: ActorCollection | None,
        all_collections: Sequence[ActorCollection],
    ) -> None:
        site = _bind_call_args(init, collection.call) if collection is not None else {}
        for arg in init.args.posonlyargs + init.args.args:
            if arg.arg == "self":
                continue
            annotation = _annotation_text(arg.annotation)
            if "Callable" in annotation:
                self.param_classes[arg.arg] = AttrClass(HOOK)
                continue
            if "Link" in annotation:
                self.param_classes[arg.arg] = AttrClass(CHANNEL)
                continue
            if arg.arg in site and collection is not None:
                classified = _classify_constructor_arg(
                    site[arg.arg], collection.loop_var, all_collections
                )
                if classified.kind == SHARED and classified.cls is None:
                    classified = AttrClass(SHARED, cls=_bare_class_name(annotation))
                self.param_classes[arg.arg] = classified
            else:
                # No visible construction site (base-class params, kwargs):
                # shared is the conservative default -- reads stay legal,
                # writes are flagged.
                self.param_classes[arg.arg] = AttrClass(
                    SHARED, cls=_bare_class_name(annotation)
                )

    def _classify_attrs(self) -> None:
        for cls in self.info.mro():
            for method in cls.node.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                for stmt in ast.walk(method):
                    self._classify_attr_stmt(stmt, method.name == "__init__")

    def _classify_attr_stmt(self, stmt: ast.stmt, in_init: bool) -> None:
        if isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            if not self._is_self_attr(target):
                return
            annotation = _annotation_text(stmt.annotation)
            if "Link" in annotation:
                self.attrs[target.attr] = AttrClass(CHANNEL)
            elif "Callable" in annotation:
                self.attrs[target.attr] = AttrClass(HOOK)
            else:
                self.attrs.setdefault(target.attr, AttrClass(OWNED))
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if not self._is_self_attr(target):
                    continue
                value = stmt.value
                if self._is_self_attr(value) and self.info.method(value.attr) is not None:
                    targets = self.method_aliases.setdefault(target.attr, [])
                    if value.attr not in targets:
                        targets.append(value.attr)
                    self.attrs.setdefault(target.attr, AttrClass(OWNED))
                    continue
                if target.attr in self.attrs:
                    continue
                if in_init and isinstance(value, ast.Name):
                    param = self.param_classes.get(value.id)
                    if param is not None:
                        self.attrs[target.attr] = param
                        continue
                self.attrs.setdefault(target.attr, AttrClass(OWNED))

    @staticmethod
    def _is_self_attr(target: ast.expr) -> bool:
        return (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        )


def _bare_class_name(annotation: str) -> str | None:
    """``'DimensionOrderRouting'`` from a plain class annotation, else None."""
    return annotation if annotation.isidentifier() else None


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Hazard:
    """One same-cycle shared-state coupling that bypasses the Link pipeline."""

    rule_id: str
    network: str
    phase: str
    location: str
    line: int
    message: str

    def format(self) -> str:
        return (
            f"{self.network} phase '{self.phase}' at {self.location}:"
            f"{self.line}: {self.rule_id} {self.message}"
        )


@dataclass
class PhaseEffects:
    """Per-phase read/write sets over ``Class.attr`` chains, plus escapes."""

    name: str
    actor_class: str | None
    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    channel_ops: set[str] = field(default_factory=set)
    hook_calls: set[str] = field(default_factory=set)


@dataclass
class ModelRaceReport:
    """The race-detector verdict for one network model."""

    network: str
    module: str
    phases: list[PhaseEffects]
    hazards: list[Hazard]

    @property
    def clean(self) -> bool:
        return not self.hazards

    def format(self, verbose: bool = False) -> str:
        lines = [f"cycle-phase race analysis: {self.network} ({self.module})"]
        for index, phase in enumerate(self.phases, start=1):
            actor = phase.actor_class or "network"
            lines.append(f"  phase {index}: {phase.name}  [{actor}]")
            if verbose and phase.actor_class is not None:
                if phase.reads:
                    lines.append(f"    reads:  {', '.join(sorted(phase.reads))}")
                if phase.writes:
                    lines.append(f"    writes: {', '.join(sorted(phase.writes))}")
                if phase.channel_ops:
                    lines.append(f"    links:  {', '.join(sorted(phase.channel_ops))}")
                if phase.hook_calls:
                    lines.append(f"    hooks:  {', '.join(sorted(phase.hook_calls))}")
        if self.hazards:
            lines.append(f"  {len(self.hazards)} hazard(s):")
            for hazard in self.hazards:
                lines.append(f"    {hazard.format()}")
        else:
            lines.append(
                "  no hazards: within every phase, actors couple only through "
                "Link send/receive (delay >= 1) or node-local wiring"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The walker
# ---------------------------------------------------------------------------


class _EffectWalker:
    """Walks one phase's call tree collecting effects and hazards."""

    def __init__(
        self,
        analyzer: "NetworkAnalyzer",
        phase: PhaseEffects,
        hazards: list[Hazard],
    ) -> None:
        self.analyzer = analyzer
        self.network = analyzer.label
        self.phase = phase
        self.hazards = hazards
        self.visited: set[tuple[str, str, tuple[str, ...]]] = set()

    # -- entry ----------------------------------------------------------------

    def walk_method(
        self,
        model: ActorModel,
        method: ast.FunctionDef,
        args: dict[str, Val],
        depth: int,
        location: str,
        self_val: Val | None = None,
    ) -> None:
        if depth > _MAX_CALL_DEPTH:
            return
        bound_self = self_val or Val(SELF, cls=model.info.name)
        signature = (
            model.info.name,
            method.name,
            tuple(sorted(f"{k}={v.kind}" for k, v in args.items()))
            + (bound_self.kind,),
        )
        if signature in self.visited:
            return
        self.visited.add(signature)
        env: dict[str, Val] = {"self": bound_self}
        for arg in method.args.posonlyargs + method.args.args + method.args.kwonlyargs:
            if arg.arg == "self":
                continue
            env[arg.arg] = args.get(arg.arg, Val(SCALAR))
        where = f"{location} -> {model.info.name}.{method.name}"
        for stmt in method.body:
            self._stmt(stmt, env, depth, where)

    # -- statements -----------------------------------------------------------

    def _stmt(self, stmt: ast.stmt, env: dict[str, Val], depth: int, where: str) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env, depth, where)
            for target in stmt.targets:
                self._store(target, value, env, depth, where)
        elif isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value, env, depth, where)
            self._store(stmt.target, Val(SCALAR), env, depth, where)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self._eval(stmt.value, env, depth, where)
                self._store(stmt.target, value, env, depth, where)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._store(target, Val(SCALAR), env, depth, where)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env, depth, where)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value, env, depth, where)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env, depth, where)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test, env, depth, where)
            for child in stmt.body + stmt.orelse:
                self._stmt(child, env, depth, where)
        elif isinstance(stmt, ast.For):
            element = _element_of(self._eval(stmt.iter, env, depth, where))
            self._bind_target(stmt.target, element, env)
            for child in stmt.body + stmt.orelse:
                self._stmt(child, env, depth, where)
        elif isinstance(stmt, ast.Try):
            for child in stmt.body + stmt.orelse + stmt.finalbody:
                self._stmt(child, env, depth, where)
            for handler in stmt.handlers:
                for child in handler.body:
                    self._stmt(child, env, depth, where)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr, env, depth, where)
            for child in stmt.body:
                self._stmt(child, env, depth, where)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env, depth, where)
        elif isinstance(stmt, ast.FunctionDef):
            # Nested functions are walked in place with the same environment
            # (closures over phase state share its ownership).
            for child in stmt.body:
                self._stmt(child, env, depth, where)

    # -- stores ---------------------------------------------------------------

    def _store(
        self, target: ast.expr, value: Val, env: dict[str, Val], depth: int, where: str
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store(element, _element_of(value), env, depth, where)
        elif isinstance(target, ast.Starred):
            self._store(target.value, value, env, depth, where)
        elif isinstance(target, ast.Attribute):
            base = self._eval(target.value, env, depth, where)
            self._check_write(base, target.attr, target.lineno, where)
        elif isinstance(target, ast.Subscript):
            index = self._eval(target.slice, env, depth, where)
            base = self._eval(target.value, env, depth, where)
            if index.kind == INDEX and base.kind in (SHARED, NETWORK):
                # A per-actor slot keyed by the phase loop's own index:
                # iteration i writes only slot i, so the slots are disjoint
                # across actors and the store cannot race within the phase
                # (the worklist-flag pattern).  Record it as a write.
                if base.chain:
                    chain = ".".join(base.chain + ("[]",))
                elif base.cls is not None:
                    chain = f"{base.cls}.[]"
                else:
                    chain = "[]"
                self.phase.writes.add(chain)
                return
            self._check_write(base, "[]", target.lineno, where)

    def _check_write(self, base: Val, attr: str, line: int, where: str) -> None:
        if base.chain:
            chain = ".".join(base.chain + (attr,))
        elif base.cls is not None:
            chain = f"{base.cls}.{attr}"
        else:
            chain = attr
        if base.kind in (SHARED, NETWORK, ACTORS):
            self._hazard(
                line,
                where,
                f"same-cycle write to shared state `{chain}`: state visible to "
                "every actor in the phase loop must only change through a Link "
                "pipeline stage",
            )
        elif base.kind == CHANNEL:
            self._hazard(
                line,
                where,
                f"direct mutation of link state `{chain}` bypasses the "
                "pipeline register; use Link.send/receive",
            )
        elif base.kind in (SELF, NODE):
            self.phase.writes.add(chain)

    # -- expressions ----------------------------------------------------------

    def _eval(self, expr: ast.expr, env: dict[str, Val], depth: int, where: str) -> Val:
        if isinstance(expr, ast.Name):
            return env.get(expr.id, Val(SCALAR))
        if isinstance(expr, ast.Attribute):
            return self._attribute(expr, env, depth, where)
        if isinstance(expr, ast.Subscript):
            index = self._eval(expr.slice, env, depth, where)
            base = self._eval(expr.value, env, depth, where)
            if base.kind == ACTORS:
                if index.kind == INDEX:
                    # self.<collection>[<phase loop index>] IS the actor.
                    return Val(SELF, cls=base.cls, chain=base.chain)
                # Any other index reaches a different node: shared.
                return Val(SHARED, cls=base.cls, chain=base.chain)
            return base
        if isinstance(expr, ast.Call):
            return self._call(expr, env, depth, where)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            elements = [self._eval(e, env, depth, where) for e in expr.elts]
            for element in elements:
                if element.kind in (PAYLOAD, OWNED):
                    return Val(element.kind)
            return Val(OWNED)
        if isinstance(expr, ast.Dict):
            for key in expr.keys:
                if key is not None:
                    self._eval(key, env, depth, where)
            for value in expr.values:
                self._eval(value, env, depth, where)
            return Val(OWNED)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            scope = dict(env)
            for generator in expr.generators:
                element = _element_of(self._eval(generator.iter, scope, depth, where))
                self._bind_target(generator.target, element, scope)
                for condition in generator.ifs:
                    self._eval(condition, scope, depth, where)
            if isinstance(expr, ast.DictComp):
                self._eval(expr.key, scope, depth, where)
                self._eval(expr.value, scope, depth, where)
            else:
                self._eval(expr.elt, scope, depth, where)
            return Val(OWNED)
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                self._eval(value, env, depth, where)
            return Val(SCALAR)
        if isinstance(expr, ast.BinOp):
            self._eval(expr.left, env, depth, where)
            self._eval(expr.right, env, depth, where)
            return Val(SCALAR)
        if isinstance(expr, ast.UnaryOp):
            self._eval(expr.operand, env, depth, where)
            return Val(SCALAR)
        if isinstance(expr, ast.Compare):
            self._eval(expr.left, env, depth, where)
            for comparator in expr.comparators:
                self._eval(comparator, env, depth, where)
            return Val(SCALAR)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test, env, depth, where)
            body = self._eval(expr.body, env, depth, where)
            orelse = self._eval(expr.orelse, env, depth, where)
            return body if body.kind != SCALAR else orelse
        if isinstance(expr, ast.JoinedStr):
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value, env, depth, where)
            return Val(SCALAR)
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, env, depth, where)
        if isinstance(expr, ast.Lambda):
            return Val(OWNED)
        if isinstance(expr, ast.Slice):
            for part in (expr.lower, expr.upper, expr.step):
                if part is not None:
                    self._eval(part, env, depth, where)
            return Val(SCALAR)
        return Val(SCALAR)

    def _attribute(
        self, expr: ast.Attribute, env: dict[str, Val], depth: int, where: str
    ) -> Val:
        base = self._eval(expr.value, env, depth, where)
        attr = expr.attr
        if base.kind == NETWORK:
            collection = self.analyzer.collection_for(attr)
            if collection is not None:
                return Val(
                    ACTORS,
                    cls=collection.class_name,
                    chain=(base.cls or "network", attr),
                )
            # The network's own state, seen concurrently by every loop
            # iteration: reads commute, writes are flagged via SHARED.
            self.phase.reads.add(f"{base.cls or 'network'}.{attr}")
            return Val(SHARED, chain=(base.cls or "network", attr))
        if base.kind in (SELF, NODE):
            model = self._model_for(base)
            chain = (model.info.name if model else base.cls or "?", attr)
            self.phase.reads.add(".".join(chain))
            classification = model.attrs.get(attr) if model else None
            if classification is None:
                return Val(OWNED, chain=chain)
            if classification.kind in (CHANNEL, HOOK):
                return Val(classification.kind, chain=chain)
            if classification.kind in (NODE, SHARED):
                return Val(classification.kind, cls=classification.cls, chain=chain)
            return Val(OWNED, chain=chain)
        if base.kind == CHANNEL:
            if attr in LINK_API_FIELDS or attr in LINK_API_CALLS:
                return Val(CHANNEL, chain=base.chain + (attr,))
            self._hazard(
                expr.lineno,
                where,
                f"access to link internals `{'.'.join(base.chain + (attr,))}` "
                "outside the Link pipeline API (send/receive/"
                "capacity_remaining/in_flight)",
            )
            return Val(SCALAR)
        if base.kind in (SHARED, ACTORS):
            return Val(SHARED, cls=None, chain=base.chain + (attr,))
        if base.kind in (OWNED, PAYLOAD, HOOK):
            return Val(base.kind, chain=base.chain + (attr,))
        return Val(SCALAR)

    def _call(self, expr: ast.Call, env: dict[str, Val], depth: int, where: str) -> Val:
        arg_vals = [self._eval(arg, env, depth, where) for arg in expr.args]
        keyword_vals = {
            kw.arg: self._eval(kw.value, env, depth, where)
            for kw in expr.keywords
            if kw.arg is not None
        }
        func = expr.func
        if isinstance(func, ast.Attribute):
            base = self._eval(func.value, env, depth, where)
            return self._method_call(func, base, arg_vals, keyword_vals, depth, where)
        # Plain names: builtins, module-level constructors and helpers --
        # all create fresh (owned) values; phase code never routes shared
        # mutation through a bare function in this codebase.
        return Val(OWNED)

    def _method_call(
        self,
        func: ast.Attribute,
        base: Val,
        args: list[Val],
        keywords: dict[str, Val],
        depth: int,
        where: str,
    ) -> Val:
        name = func.attr
        if base.kind == CHANNEL:
            chain = ".".join(base.chain + (name,))
            if name in LINK_API_CALLS:
                self.phase.channel_ops.add(chain)
                return Val(PAYLOAD) if name == "receive" else Val(SCALAR)
            self._hazard(
                func.lineno,
                where,
                f"call `{chain}()` is not part of the Link pipeline API; "
                "same-cycle link state must flow through send/receive",
            )
            return Val(SCALAR)
        if base.kind == HOOK:
            self.phase.hook_calls.add(".".join(base.chain) or name)
            return Val(SCALAR)
        if base.kind in (SELF, NODE):
            model = self._model_for(base)
            if model is None:
                return Val(OWNED)
            classification = model.attrs.get(name)
            if classification is not None:
                if classification.kind == HOOK:
                    self.phase.hook_calls.add(f"{model.info.name}.{name}")
                    return Val(SCALAR)
                if classification.kind == CHANNEL:
                    self._hazard(
                        func.lineno,
                        where,
                        f"calling link attribute `{model.info.name}.{name}` "
                        "directly; only the Link pipeline API moves state "
                        "between actors",
                    )
                    return Val(SCALAR)
            method = model.info.method(name)
            if method is not None:
                bound = dict(zip(_param_names(method), args))
                bound.update(keywords)
                self.walk_method(model, method, bound, depth + 1, where)
                return Val(OWNED)
            # Dispatch slot: walk every method ever assigned to it.
            for alias in model.method_aliases.get(name, ()):
                aliased = model.info.method(alias)
                if aliased is not None:
                    bound = dict(zip(_param_names(aliased), args))
                    bound.update(keywords)
                    self.walk_method(model, aliased, bound, depth + 1, where)
            return Val(OWNED)
        if base.kind == NETWORK:
            method = self.analyzer.info.method(name)
            if method is not None:
                bound = dict(zip(_param_names(method), args))
                bound.update(keywords)
                self.walk_method(
                    self.analyzer.network_model,
                    method,
                    bound,
                    depth + 1,
                    where,
                    self_val=base,
                )
            return Val(SCALAR)
        if base.kind in (SHARED, ACTORS):
            resolved = self._resolve_shared_methods(base, name)
            if resolved:
                for model, method in resolved:
                    bound = dict(zip(_param_names(method), args))
                    bound.update(keywords)
                    self.walk_method(
                        model,
                        method,
                        bound,
                        depth + 1,
                        where,
                        self_val=Val(SHARED, cls=model.info.name, chain=(model.info.name,)),
                    )
                return Val(SCALAR)
            if name in MUTATOR_METHODS:
                self._hazard(
                    func.lineno,
                    where,
                    f"mutating call `{'.'.join(base.chain + (name,))}()` on "
                    "shared state: same-cycle visible to every actor",
                )
            return Val(SCALAR)
        # owned / payload / scalar / index receivers cannot couple actors.
        return Val(OWNED)

    # -- helpers --------------------------------------------------------------

    def _model_for(self, base: Val) -> ActorModel | None:
        if base.cls is None:
            return None
        return self.analyzer.actor_model(base.cls)

    def _resolve_shared_methods(
        self, base: Val, name: str
    ) -> list[tuple[ActorModel, ast.FunctionDef]]:
        if base.cls is None:
            return []
        model = self.analyzer.actor_model(base.cls)
        if model is None:
            return []
        method = model.info.method(name)
        if method is not None:
            return [(model, method)]
        # Dispatch slot: every method ever assigned to it.
        resolved = []
        for alias in model.method_aliases.get(name, ()):
            aliased = model.info.method(alias)
            if aliased is not None:
                resolved.append((model, aliased))
        return resolved

    def _bind_target(self, target: ast.expr, value: Val, env: dict[str, Val]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, _element_of(value), env)

    def _hazard(self, line: int, where: str, message: str) -> None:
        self.hazards.append(
            Hazard(
                rule_id="D007",
                network=self.network,
                phase=self.phase.name,
                location=where,
                line=line,
                message=message,
            )
        )


def _element_of(value: Val) -> Val:
    """The abstract element obtained by iterating or unpacking ``value``."""
    if value.kind == ACTORS:
        # Iterating an actor collection yields *every* actor, not this
        # iteration's own: treat elements as shared so writes are flagged.
        return Val(SHARED, cls=value.cls, chain=value.chain)
    if value.kind in (PAYLOAD, OWNED, SHARED, NODE, CHANNEL):
        return Val(value.kind, cls=value.cls, chain=value.chain)
    return Val(SCALAR)


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


class NetworkAnalyzer:
    """Analyses one network model class for cycle-phase races."""

    def __init__(self, info: ClassInfo, label: str | None = None) -> None:
        self.info = info
        self.label = label or info.name
        self.collections: list[ActorCollection] = _find_actor_collections(info)
        self._models: dict[str, ActorModel | None] = {}
        self._network_model: ActorModel | None = None
        for collection in self.collections:
            if collection.class_name not in self._models:
                resolved = self.info.resolver.resolve_class(
                    collection.class_name, collection.module
                ) or self._resolve_anywhere(collection.class_name)
                self._models[collection.class_name] = (
                    ActorModel(resolved, collection, self.collections)
                    if resolved is not None
                    else None
                )

    @property
    def network_model(self) -> ActorModel:
        if self._network_model is None:
            self._network_model = ActorModel(self.info, None, self.collections)
        return self._network_model

    def _resolve_anywhere(self, class_name: str) -> ClassInfo | None:
        """Resolve a class from the network module or any actor module.

        Shared-object classes (the routing function, configs) are often
        imported by the *actor* module rather than the network module, so
        resolution falls back through every module already involved.
        """
        modules = [self.info.module]
        for model in self._models.values():
            if model is not None and model.info.module not in modules:
                modules.append(model.info.module)
        for module in modules:
            resolved = self.info.resolver.resolve_class(class_name, module)
            if resolved is not None:
                return resolved
        return None

    def actor_model(self, class_name: str) -> ActorModel | None:
        if class_name not in self._models:
            resolved = self._resolve_anywhere(class_name)
            self._models[class_name] = (
                ActorModel(resolved, None, self.collections)
                if resolved is not None
                else None
            )
        return self._models[class_name]

    def collection_for(self, attr: str) -> ActorCollection | None:
        for collection in self.collections:
            if collection.attr == attr:
                return collection
        return None

    # -- phase extraction ----------------------------------------------------

    def analyze(self) -> ModelRaceReport:
        step = self.info.method("step")
        if step is None:
            raise AnalysisError(
                f"{self.label}: class {self.info.name} has no step() method"
            )
        phases: list[PhaseEffects] = []
        hazards: list[Hazard] = []
        aliases: dict[str, str] = {}  # local name -> the self.<attr> it aliases
        for stmt in step.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Attribute)
                and isinstance(stmt.value.value, ast.Name)
                and stmt.value.value.id == "self"
            ):
                aliases[stmt.targets[0].id] = stmt.value.attr
                continue
            loop_attr = self._loop_iter_attr(stmt, aliases)
            if loop_attr is not None and self.collection_for(loop_attr) is not None:
                assert isinstance(stmt, ast.For)
                collection = self.collection_for(loop_attr)
                assert collection is not None
                phases.append(self._direct_loop_phase(stmt, collection, hazards))
            elif loop_attr in INDEX_ORDER_ATTRS:
                assert isinstance(stmt, ast.For)
                phases.append(self._index_loop_phase(stmt, hazards))
            else:
                phases.append(self._singleton_phase(stmt))
        return ModelRaceReport(
            network=self.label, module=self.info.module, phases=phases, hazards=hazards
        )

    def _loop_iter_attr(self, stmt: ast.stmt, aliases: dict[str, str]) -> str | None:
        """The ``self.<attr>`` a For statement iterates, through aliases."""
        if not isinstance(stmt, ast.For):
            return None
        iterator = stmt.iter
        if (
            isinstance(iterator, ast.Attribute)
            and isinstance(iterator.value, ast.Name)
            and iterator.value.id == "self"
        ):
            return iterator.attr
        if isinstance(iterator, ast.Name):
            return aliases.get(iterator.id)
        return None

    def _direct_loop_phase(
        self, stmt: ast.For, collection: ActorCollection, hazards: list[Hazard]
    ) -> PhaseEffects:
        """``for router in self.routers: router.phase(cycle)`` loops."""
        name = self._phase_name(stmt, collection.attr)
        phase = PhaseEffects(name=name, actor_class=collection.class_name)
        model = self._models.get(collection.class_name)
        if model is None:
            hazards.append(self._unresolvable(collection.class_name, name, stmt.lineno))
            return phase
        walker = _EffectWalker(self, phase, hazards)
        env: dict[str, Val] = {"self": Val(NETWORK, cls=self.info.name)}
        if isinstance(stmt.target, ast.Name):
            env[stmt.target.id] = Val(SELF, cls=collection.class_name)
        for child in stmt.body:
            walker._stmt(child, env, 0, f"{self.info.name}.step")
        return phase

    def _index_loop_phase(self, stmt: ast.For, hazards: list[Hazard]) -> PhaseEffects:
        """``for node in self.eval_order: self.routers[node].phase(cycle)``."""
        actor_class = None
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Attribute)
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id == "self"
            ):
                collection = self.collection_for(node.value.attr)
                if collection is not None:
                    actor_class = collection.class_name
                    break
        name = self._phase_name(stmt, actor_class or "eval_order")
        phase = PhaseEffects(name=name, actor_class=actor_class)
        if actor_class is not None and self._models.get(actor_class) is None:
            hazards.append(self._unresolvable(actor_class, name, stmt.lineno))
            return phase
        walker = _EffectWalker(self, phase, hazards)
        env: dict[str, Val] = {"self": Val(NETWORK, cls=self.info.name)}
        if isinstance(stmt.target, ast.Name):
            env[stmt.target.id] = Val(INDEX)
        for child in stmt.body:
            walker._stmt(child, env, 0, f"{self.info.name}.step")
        return phase

    def _unresolvable(self, class_name: str, phase: str, line: int) -> Hazard:
        return Hazard(
            rule_id="D007",
            network=self.label,
            phase=phase,
            location=f"{self.info.name}.step",
            line=line,
            message=(
                f"actor class `{class_name}` could not be resolved; "
                "phase is unverifiable"
            ),
        )

    @staticmethod
    def _phase_name(stmt: ast.For, subject: str) -> str:
        methods = [
            child.value.func.attr
            for child in stmt.body
            if isinstance(child, ast.Expr)
            and isinstance(child.value, ast.Call)
            and isinstance(child.value.func, ast.Attribute)
        ]
        return f"{subject}: {', '.join(methods) or '<loop>'}"

    def _singleton_phase(self, stmt: ast.stmt) -> PhaseEffects:
        description = ast.unparse(stmt).splitlines()[0]
        if len(description) > 60:
            description = description[:57] + "..."
        return PhaseEffects(name=f"network: {description}", actor_class=None)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def analyze_model(
    module: str,
    class_name: str,
    label: str | None = None,
    resolver: SourceResolver | None = None,
) -> ModelRaceReport:
    """Race-analyze one network model class by dotted module path."""
    resolver = resolver or SourceResolver()
    info = resolver.resolve_class(class_name, module)
    if info is None:
        raise AnalysisError(f"cannot resolve class {class_name} in module {module}")
    return NetworkAnalyzer(info, label=label).analyze()


def analyze_known_networks() -> list[ModelRaceReport]:
    """Race-analyze the three shipped network models (FR, VC, wormhole)."""
    resolver = SourceResolver()
    return [
        analyze_model(module, class_name, label=label, resolver=resolver)
        for label, module, class_name in KNOWN_NETWORKS
    ]


def analyze_module_source(source: str, path: str) -> list[Hazard]:
    """Single-file analysis for the D007 lint rule, from source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []
    return analyze_module_ast(tree, path)


def analyze_module_ast(tree: ast.Module, path: str) -> list[Hazard]:
    """Single-file analysis for the D007 lint rule.

    Finds every class in the module that defines both a ``step`` method and
    an actor construction whose classes all live in the *same file*, and
    returns the hazards of each.  Models whose actor classes are imported
    are skipped -- the whole-model ``frfc_analyze races`` pass covers those.
    """
    module = f"<file:{path}>"
    resolver = SingleModuleResolver(module, tree)
    local_classes = {stmt.name for stmt in tree.body if isinstance(stmt, ast.ClassDef)}
    hazards: list[Hazard] = []
    for stmt in tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        info = ClassInfo(name=stmt.name, module=module, node=stmt, resolver=resolver)
        if info.method("step") is None or info.method("__init__") is None:
            continue
        analyzer = NetworkAnalyzer(info)
        if not analyzer.collections:
            continue
        if not all(
            collection.class_name in local_classes
            for collection in analyzer.collections
        ):
            continue
        hazards.extend(analyzer.analyze().hazards)
    return hazards
