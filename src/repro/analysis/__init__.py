"""Whole-model static analysis: deadlock proofs, race detection, differs.

This subpackage reasons about the simulator *as a model*, complementing the
per-file lint pass in :mod:`repro.lint` and the runtime
:class:`~repro.sim.invariants.InvariantChecker`:

* :mod:`repro.analysis.cdg` -- channel-dependency-graph deadlock prover:
  certifies a routing function deadlock-free (with a checkable rank
  certificate) or exhibits the exact offending channel cycle.
* :mod:`repro.analysis.broken_routing` -- deliberately deadlock-prone
  routing fixtures the prover must catch.
* :mod:`repro.analysis.phases` -- cycle-phase race detector: proves the
  per-phase actor loops in every network's ``step()`` are
  order-independent, i.e. all same-cycle cross-node coupling flows through
  a ``Link`` pipeline stage.
* :mod:`repro.analysis.permute` -- runtime order-permutation differ: the
  dynamic counterpart, re-running a seeded workload under shuffled router
  evaluation orders and requiring bit-identical results.
* :mod:`repro.analysis.hotpath` -- static hot-path performance analyzer:
  inventories the allocation/churn constructs inside each model's
  per-cycle call tree, backs the D009/D010 lint rules, and gates the
  committed ``frfc-hotpath/1`` allocation budget (with a ``tracemalloc``
  runtime cross-check).
* :mod:`repro.analysis.isolation` -- whole-program determinism & isolation
  prover: certifies each ``run_experiment``/``run_load_sweep`` entry point
  a pure function of (config, seed, load) -- shared-mutable-state
  inventory, RNG seed provenance, unordered-iteration detection -- emits
  the ``frfc-isolation/1`` certificate gated by
  ``benchmarks/results/ISOLATION_baseline.json``, backs the D011/D012/D013
  lint rules, and cross-checks dynamically via spawn/serial digest
  identity.
* :mod:`repro.analysis.broken_isolation` -- deliberately
  isolation-breaking fixtures the prover must catch.

Everything here is pure stdlib and imports the simulator's modules only as
source text (AST) or through their public APIs; analysis never mutates
model state.
"""

from repro.analysis.broken_routing import GreedyDimensionRouting, YXMixedRouting
from repro.analysis.cdg import (
    CDGReport,
    Channel,
    RoutingLivelock,
    build_cdg,
    prove_deadlock_freedom,
    tarjan_sccs,
)
from repro.analysis.phases import (
    AnalysisError,
    Hazard,
    ModelRaceReport,
    PhaseEffects,
    analyze_known_networks,
    analyze_model,
    analyze_module_ast,
    analyze_module_source,
)
from repro.analysis.hotpath import (
    HotFunction,
    HotPathFinding,
    ModelHotPathReport,
    VerifyReport,
    analyze_hot_model,
    analyze_hot_networks,
    build_budget,
    check_budget,
    verify_allocations,
)
from repro.analysis.isolation import (
    EntryPointReport,
    IsolationError,
    IsolationFinding,
    IsolationVerifyReport,
    analyze_entry_points,
    build_certificate,
    check_certificate,
    verify_isolation,
)
from repro.analysis.permute import (
    PermutationReport,
    RunDigest,
    run_permutation_diff,
)

__all__ = [
    "AnalysisError",
    "CDGReport",
    "Channel",
    "EntryPointReport",
    "GreedyDimensionRouting",
    "Hazard",
    "HotFunction",
    "HotPathFinding",
    "IsolationError",
    "IsolationFinding",
    "IsolationVerifyReport",
    "ModelHotPathReport",
    "ModelRaceReport",
    "PermutationReport",
    "PhaseEffects",
    "RoutingLivelock",
    "RunDigest",
    "VerifyReport",
    "YXMixedRouting",
    "analyze_entry_points",
    "analyze_hot_model",
    "analyze_hot_networks",
    "analyze_known_networks",
    "analyze_model",
    "analyze_module_ast",
    "analyze_module_source",
    "build_budget",
    "build_cdg",
    "build_certificate",
    "check_budget",
    "check_certificate",
    "prove_deadlock_freedom",
    "run_permutation_diff",
    "tarjan_sccs",
    "verify_allocations",
    "verify_isolation",
]
