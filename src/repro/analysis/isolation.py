"""Whole-program determinism & isolation prover (``frfc-analyze isolation``).

The ROADMAP's parallel sweep fabric will farm ``run_experiment`` points out
to a process pool and merge digests that must be byte-identical to a serial
run.  That is only sound if every sweep point is a pure function of
``(config, seed, load)`` -- no mutable state shared between points, no
ambient randomness, no iteration order that depends on hashes or object
identity.  This module proves that property statically, in the same
"analyze the whole reachable tree, emit a checkable certificate, gate CI"
shape as the cdg deadlock prover and the hotpath allocation budget:

1. **Reachability** -- starting from an entry point (``run_experiment`` per
   model, ``run_load_sweep``), compute the import closure of ``repro.*``
   modules at module granularity.  Import statements anywhere in a module
   are followed (including function-level lazy imports); ``if
   TYPE_CHECKING:`` blocks are skipped (they never execute).  Per-model
   trees stop at the *other* models' config/network modules so a finding in
   the VC arbiter does not invalidate the FR certificate.  Parent-package
   ``__init__`` modules are import-time re-export plumbing and are not
   added unless imported by name.

2. **Global-state inventory** (pass 1) -- every module-level and
   class-level mutable binding (list/dict/set displays, calls to the
   mutable factories) in the scanned tree is classified *read-only*,
   *written* (``global`` rebinds, mutator-method calls, subscript or
   attribute stores), or *escaping* (the bare name returned, yielded, or
   passed whole to a reference-retaining callee -- any alias handed out can
   be mutated later).  ``functools`` caches and mutable default arguments
   are memoization in disguise and are flagged directly.

3. **RNG provenance** (pass 2) -- every stochastic draw must flow from an
   explicitly seeded :class:`repro.sim.rng.DeterministicRng`: the receiver
   traces to a ``DeterministicRng``-annotated parameter, an explicit
   ``DeterministicRng(...)`` construction, a ``.spawn(...)`` of a traced
   generator, or a ``self.<attr>`` assigned one of those along the class
   MRO.  Any use of the ambient ``random`` module, and any draw-named call
   whose receiver cannot be traced, is a finding.  ``repro/sim/rng.py``
   itself -- the one sanctioned wrapper around stdlib ``random`` -- is
   structurally exempt.

4. **Unordered iteration** (pass 3) -- iterating a set (display, ``set``
   call, or a set-typed name/attribute), keying maps by ``id()``/``hash()``,
   or sorting with ``key=id``/``key=hash`` makes element order depend on
   the process's hash seed or heap layout, which can leak into simulated
   state or exported artifacts.  ``sorted(...)`` wrappers are the fix and
   are naturally not flagged.  (Python dicts iterate in insertion order,
   which is deterministic; plain dict iteration is fine.)

The result is an ``frfc-isolation/1`` certificate: each entry point is
CERTIFIED (with the evidence -- modules scanned, globals classified
read-only, draws traced) or VIOLATED (with file:line findings).  The
committed baseline lives at ``benchmarks/results/ISOLATION_baseline.json``
and CI replays ``--check-budget`` against it.  :func:`verify_isolation` is
the dynamic witness: the same quick point replayed twice in-process and
once in a ``spawn``-ed subprocess must produce identical digests for all
three models.

Like the rest of :mod:`repro.analysis`, everything here reads the
simulator's modules as source text only -- nothing in the scanned tree is
executed.  The analysis is deliberately conservative: it over-approximates
escapes (handing a module-level container to an unknown callee counts) and
under-approximates aliasing through local rebinds; the order-permutation
differ and :func:`verify_isolation` backstop the gaps dynamically.

The per-file projections of passes 1-3 back the D011/D012/D013 lint rules
(see :mod:`repro.lint.rules`); the whole-program pass deliberately ignores
``# frfc-lint: disable=`` comments, so a suppressed sin still voids the
certificate if it is reachable from an entry point.
"""

from __future__ import annotations

import ast
import importlib.util
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.analysis.phases import MUTATOR_METHODS, SingleModuleResolver, SourceResolver

CERT_SCHEMA = "frfc-isolation/1"

#: Verdicts.
CERTIFIED = "CERTIFIED"
VIOLATED = "VIOLATED"

#: Finding categories (certificate ``findings[].category`` values).
GLOBAL_WRITE = "global-write"
GLOBAL_ESCAPE = "global-escape"
CLASS_MUTABLE_WRITE = "class-mutable-write"
FUNCTOOLS_CACHE = "functools-cache"
DEFAULT_ALIAS = "default-alias"
RNG_UNTRACED = "rng-untraced"
UNORDERED_ITERATION = "unordered-iteration"
ID_KEYED = "id-keyed"

CATEGORIES = (
    GLOBAL_WRITE,
    GLOBAL_ESCAPE,
    CLASS_MUTABLE_WRITE,
    FUNCTOOLS_CACHE,
    DEFAULT_ALIAS,
    RNG_UNTRACED,
    UNORDERED_ITERATION,
    ID_KEYED,
)

#: Constructors whose result is a shared mutable container.
MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter", "OrderedDict"}
)

#: Methods that *draw* from a generator (DeterministicRng's API plus the
#: stdlib ``random`` surface).  ``spawn`` is derivation, not a draw.
DRAW_METHODS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "shuffled", "chance", "getrandbits", "randbytes",
        "gauss", "normalvariate", "expovariate", "betavariate", "triangular",
    }
)

#: Builtins that consume an argument without retaining a reference to it;
#: passing a module-level container to these is a read, not an escape.
NON_RETAINING_CALLEES = frozenset(
    {
        "len", "sorted", "list", "tuple", "dict", "set", "frozenset", "sum",
        "min", "max", "any", "all", "iter", "next", "enumerate", "zip", "map",
        "filter", "reversed", "repr", "str", "bool", "print", "isinstance",
        "format", "join", "id", "type", "hash",
    }
)

#: The sanctioned wrapper around stdlib ``random`` -- exempt from pass 2.
RNG_WRAPPER_SUFFIX = "sim/rng.py"

#: Modules that hold each model's config/network pair; the per-model entry
#: trees stop at the *other* models' modules.
MODEL_MODULES: Mapping[str, tuple[str, ...]] = {
    "FR": ("repro.core.config", "repro.core.network"),
    "VC": ("repro.baselines.vc.config", "repro.baselines.vc.network"),
    "WH": ("repro.baselines.wormhole.network",),
}

_ALL_MODEL_MODULES = frozenset(m for mods in MODEL_MODULES.values() for m in mods)

#: The certified entry points: (name, module, function, model-or-None).
ENTRY_POINTS: tuple[tuple[str, str, str, Optional[str]], ...] = (
    ("run_experiment[FR]", "repro.harness.experiment", "run_experiment", "FR"),
    ("run_experiment[VC]", "repro.harness.experiment", "run_experiment", "VC"),
    ("run_experiment[WH]", "repro.harness.experiment", "run_experiment", "WH"),
    ("run_load_sweep", "repro.harness.sweep", "run_load_sweep", None),
)


class IsolationError(Exception):
    """The entry point could not be analysed (unresolvable module)."""


@dataclass(frozen=True)
class IsolationFinding:
    """One isolation hazard, anchored to a file:line."""

    category: str
    path: str
    line: int
    qualname: str
    detail: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.category}] {self.qualname}: {self.detail}"

    def key(self) -> tuple[str, str, str, str]:
        """Identity for baseline comparison -- line numbers drift, so they
        are deliberately not part of the key."""
        return (self.category, self.path, self.qualname, self.detail)


@dataclass
class ModuleScan:
    """One module's contribution to an entry point's evidence."""

    module: str
    path: str
    read_only_globals: tuple[str, ...]
    traced_draws: int
    findings: tuple[IsolationFinding, ...]


@dataclass
class EntryPointReport:
    """Verdict plus evidence for one certified entry point."""

    name: str
    module: str
    function: str
    model: Optional[str]
    modules: tuple[str, ...]
    read_only_globals: tuple[str, ...]
    traced_draws: int
    findings: tuple[IsolationFinding, ...]

    @property
    def verdict(self) -> str:
        return VIOLATED if self.findings else CERTIFIED

    def render(self) -> str:
        lines = [
            f"{self.name}: {self.verdict}"
            f"  ({len(self.modules)} modules, "
            f"{len(self.read_only_globals)} read-only globals, "
            f"{self.traced_draws} draws traced)"
        ]
        for finding in self.findings:
            lines.append(f"  {finding.render()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Module resolution and import closure
# ---------------------------------------------------------------------------


class _OriginResolver(SourceResolver):
    """A :class:`SourceResolver` that also remembers where modules live."""

    def __init__(self) -> None:
        super().__init__()
        self.origins: dict[str, str] = {}

    def _load(self, module: str) -> ast.Module | None:
        try:
            spec = importlib.util.find_spec(module)
        except (ImportError, ValueError):
            return None
        if spec is None or spec.origin is None or not spec.origin.endswith(".py"):
            return None
        self.origins[module] = spec.origin
        source = Path(spec.origin).read_text(encoding="utf-8")
        return ast.parse(source, filename=spec.origin)


def _rel_path(origin: str) -> str:
    """Repo-relative posix path for certificate stability across checkouts."""
    posix = Path(origin).as_posix()
    for marker in ("/src/", "/tools/", "/tests/"):
        index = posix.rfind(marker)
        if index >= 0:
            return posix[index + 1 :]
    return posix


def _is_type_checking_test(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id == "TYPE_CHECKING":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING":
            return True
    return False


def _module_imports(tree: ast.Module, module: str, resolver: SourceResolver) -> list[str]:
    """Every ``repro.*`` module imported anywhere in ``tree``.

    Function-level lazy imports count (they execute at run time);
    ``if TYPE_CHECKING:`` bodies do not (they never execute).
    """
    found: list[str] = []

    def visit(body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.If) and _is_type_checking_test(stmt.test):
                visit(stmt.orelse)
                continue
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    if alias.name.startswith("repro"):
                        found.append(alias.name)
            elif isinstance(stmt, ast.ImportFrom):
                target = stmt.module or ""
                if stmt.level:
                    parts = module.split(".")
                    base = parts[: len(parts) - stmt.level]
                    target = ".".join(base + ([target] if target else []))
                if not target.startswith("repro"):
                    continue
                found.append(target)
                for alias in stmt.names:
                    submodule = f"{target}.{alias.name}"
                    if resolver.module_ast(submodule) is not None:
                        found.append(submodule)
            for child_body in (
                getattr(stmt, "body", None),
                getattr(stmt, "orelse", None),
                getattr(stmt, "finalbody", None),
            ):
                if isinstance(child_body, list):
                    visit(child_body)
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    visit(handler.body)

    visit(tree.body)
    return found


def import_closure(
    root: str, resolver: SourceResolver, stop: frozenset[str] = frozenset()
) -> list[str]:
    """Transitive ``repro.*`` import closure of ``root``, sorted.

    Modules in ``stop`` are excluded along with everything only reachable
    through them.
    """
    seen: set[str] = set()
    frontier = [root]
    while frontier:
        module = frontier.pop()
        if module in seen or module in stop:
            continue
        tree = resolver.module_ast(module)
        if tree is None:
            continue
        seen.add(module)
        frontier.extend(_module_imports(tree, module, resolver))
    return sorted(seen)


# ---------------------------------------------------------------------------
# The three analysis passes (one walk per module, cached)
# ---------------------------------------------------------------------------


def _ann_text(node: ast.expr | None) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return ""


def _is_mutable_value(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name in MUTABLE_FACTORIES
    return False


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _assigned_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally inside ``func`` (shadowing module globals)."""
    names: set[str] = set()
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    globals_declared: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not func:
                names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
    return names - globals_declared


@dataclass
class _ClassFacts:
    """Per-class facts pass 1-3 need about attribute provenance."""

    mutable_attrs: dict[str, int] = field(default_factory=dict)  # name -> line
    reassigned_attrs: set[str] = field(default_factory=set)  # self.X = ... somewhere
    traced_rng_attrs: set[str] = field(default_factory=set)  # self.X is a DeterministicRng
    set_attrs: set[str] = field(default_factory=set)  # self.X is a set


class _ModuleAnalyzer:
    """One walk over one module, producing a :class:`ModuleScan`."""

    def __init__(
        self,
        module: str,
        tree: ast.Module,
        path: str,
        resolver: SourceResolver,
        include_set_displays: bool = True,
    ) -> None:
        self.module = module
        self.tree = tree
        self.path = path
        self.resolver = resolver
        self.include_set_displays = include_set_displays
        self.findings: list[IsolationFinding] = []
        self.traced_draws = 0
        self.mutable_globals: dict[str, int] = {}
        self.random_names: set[str] = set()  # names bound to ambient random
        self.class_facts: dict[str, _ClassFacts] = {}
        self.rng_exempt = path.replace("\\", "/").endswith(RNG_WRAPPER_SUFFIX)

    # -- driving ----------------------------------------------------------

    def run(self) -> ModuleScan:
        self._inventory_module_scope()
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(stmt, qualname=f"{self.module}.{stmt.name}", facts=None)
            elif isinstance(stmt, ast.ClassDef):
                facts = self.class_facts.get(stmt.name)
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._scan_function(
                            item,
                            qualname=f"{self.module}.{stmt.name}.{item.name}",
                            facts=facts,
                        )
        written = {f.detail.split(" ")[0] for f in self.findings if f.category == GLOBAL_WRITE}
        escaped = {f.detail.split(" ")[0] for f in self.findings if f.category == GLOBAL_ESCAPE}
        read_only = tuple(
            sorted(
                f"{self.module}.{name}"
                for name in self.mutable_globals
                if name not in written and name not in escaped
            )
        )
        self.findings.sort(key=lambda f: (f.path, f.line, f.category, f.detail))
        return ModuleScan(
            module=self.module,
            path=self.path,
            read_only_globals=read_only,
            traced_draws=self.traced_draws,
            findings=tuple(self.findings),
        )

    def _emit(self, category: str, node: ast.AST, qualname: str, detail: str) -> None:
        self.findings.append(
            IsolationFinding(
                category=category,
                path=self.path,
                line=getattr(node, "lineno", 0),
                qualname=qualname,
                detail=detail,
            )
        )

    # -- module / class scope inventory -----------------------------------

    def _inventory_module_scope(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    if alias.name == "random":
                        self.random_names.add(alias.asname or "random")
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.module == "random":
                    for alias in stmt.names:
                        self.random_names.add(alias.asname or alias.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and _is_mutable_value(stmt.value):
                        self.mutable_globals[target.id] = stmt.lineno
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and _is_mutable_value(stmt.value):
                    self.mutable_globals[stmt.target.id] = stmt.lineno
            elif isinstance(stmt, ast.ClassDef):
                self.class_facts[stmt.name] = self._class_facts(stmt)

    def _class_facts(self, node: ast.ClassDef) -> _ClassFacts:
        facts = _ClassFacts()
        for stmt in node.body:
            value: ast.expr | None
            if isinstance(stmt, ast.Assign) and isinstance(stmt.targets[0], ast.Name):
                name, value, ann = stmt.targets[0].id, stmt.value, ""
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                name, value, ann = stmt.target.id, stmt.value, _ann_text(stmt.annotation)
            else:
                continue
            if _is_mutable_value(value):
                facts.mutable_attrs[name] = stmt.lineno
            if (value is not None and _is_set_expr(value)) or ann.split("[")[0] == "set":
                facts.set_attrs.add(name)
        # Attribute provenance comes from every method along the (statically
        # resolvable) MRO; fixpoint over two rounds catches attr-from-attr.
        methods = self._mro_methods(node)
        for _ in range(2):
            for method in methods:
                params = self._traced_params(method)
                local_traced: set[str] = set(params)
                for sub in ast.walk(method):
                    if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                        target = sub.targets[0]
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            facts.reassigned_attrs.add(target.attr)
                            if self._rng_traced(sub.value, local_traced, facts):
                                facts.traced_rng_attrs.add(target.attr)
                            if _is_set_expr(sub.value):
                                facts.set_attrs.add(target.attr)
                        elif isinstance(target, ast.Name):
                            if self._rng_traced(sub.value, local_traced, facts):
                                local_traced.add(target.id)
                    elif isinstance(sub, ast.AnnAssign) and sub.target is not None:
                        target = sub.target
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            facts.reassigned_attrs.add(target.attr)
                            ann = _ann_text(sub.annotation)
                            if "DeterministicRng" in ann:
                                facts.traced_rng_attrs.add(target.attr)
                            if ann.split("[")[0] == "set" or (
                                sub.value is not None and _is_set_expr(sub.value)
                            ):
                                facts.set_attrs.add(target.attr)
        return facts

    def _mro_methods(self, node: ast.ClassDef) -> list[ast.FunctionDef]:
        """All methods of ``node`` and its statically resolvable bases."""
        methods = [s for s in node.body if isinstance(s, ast.FunctionDef)]
        for base in node.bases:
            if not isinstance(base, ast.Name):
                continue
            resolved = self.resolver.resolve_class(base.id, self.module)
            if resolved is None:
                continue
            for cls in resolved.mro():
                methods.extend(
                    s for s in cls.node.body if isinstance(s, ast.FunctionDef)
                )
        return methods

    # -- rng provenance helpers -------------------------------------------

    def _traced_params(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        traced: set[str] = set()
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if "DeterministicRng" in _ann_text(arg.annotation):
                traced.add(arg.arg)
        return traced

    def _rng_traced(
        self, node: ast.expr | None, local_traced: set[str], facts: Optional[_ClassFacts]
    ) -> bool:
        """Does ``node`` evaluate to a deterministically seeded generator?"""
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in local_traced
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return facts is not None and node.attr in facts.traced_rng_attrs
            return False
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "DeterministicRng":
                return True
            if isinstance(func, ast.Attribute):
                if func.attr == "DeterministicRng":
                    return True
                if func.attr == "spawn":
                    return self._rng_traced(func.value, local_traced, facts)
            return False
        if isinstance(node, ast.BoolOp):
            return all(self._rng_traced(v, local_traced, facts) for v in node.values)
        if isinstance(node, ast.IfExp):
            return self._rng_traced(node.body, local_traced, facts) and self._rng_traced(
                node.orelse, local_traced, facts
            )
        return False

    # -- per-function scan -------------------------------------------------

    def _scan_function(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        facts: Optional[_ClassFacts],
    ) -> None:
        self._check_decorators(func, qualname)
        self._check_defaults(func, qualname)
        local_names = _assigned_names(func)
        global_declared: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                global_declared.update(node.names)
        # Pass 2 state: names known to hold a deterministic generator.
        traced = set(self._traced_params(func))
        # Pass 3 state: names known to hold a set (annotations + assignments).
        set_locals: set[str] = set()
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            ann = _ann_text(arg.annotation)
            if ann.split("[")[0] in {"set", "frozenset"}:
                set_locals.add(arg.arg)
        for _ in range(2):
            for node in ast.walk(func):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        if self._rng_traced(node.value, traced, facts):
                            traced.add(target.id)
                        if _is_set_expr(node.value):
                            set_locals.add(target.id)
                elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                    ann = _ann_text(node.annotation)
                    if "DeterministicRng" in ann:
                        traced.add(node.target.id)
                    if ann.split("[")[0] == "set":
                        set_locals.add(node.target.id)

        for node in ast.walk(func):
            self._check_global_write(node, qualname, local_names, global_declared)
            self._check_global_escape(node, qualname, local_names)
            self._check_class_write(node, qualname, facts)
            if not self.rng_exempt:
                self._check_rng(node, qualname, traced, facts)
            self._check_iteration(node, qualname, set_locals, facts)
            self._check_id_keys(node, qualname)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
                self._check_decorators(node, f"{qualname}.{node.name}")
                self._check_defaults(node, f"{qualname}.{node.name}")

    def _check_decorators(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
    ) -> None:
        for decorator in func.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = (
                target.id
                if isinstance(target, ast.Name)
                else target.attr if isinstance(target, ast.Attribute) else ""
            )
            if name in {"lru_cache", "cache"}:
                self._emit(
                    FUNCTOOLS_CACHE,
                    decorator,
                    qualname,
                    f"@{name} memoizes across calls; results would be shared "
                    "between sweep points in the same process",
                )

    def _check_defaults(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
    ) -> None:
        args = func.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None and _is_mutable_value(default):
                self._emit(
                    DEFAULT_ALIAS,
                    default,
                    qualname,
                    "mutable default argument is evaluated once and aliased "
                    "across every call",
                )

    def _check_global_write(
        self,
        node: ast.AST,
        qualname: str,
        local_names: set[str],
        global_declared: set[str],
    ) -> None:
        def is_global_mutable(expr: ast.expr) -> str | None:
            if isinstance(expr, ast.Name) and expr.id in self.mutable_globals:
                if expr.id not in local_names or expr.id in global_declared:
                    return expr.id
            return None

        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            if node.id in global_declared:
                self._emit(
                    GLOBAL_WRITE,
                    node,
                    qualname,
                    f"{node.id} rebound via `global` -- module state mutated at run time",
                )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATOR_METHODS:
                name = is_global_mutable(node.func.value)
                if name is not None:
                    self._emit(
                        GLOBAL_WRITE,
                        node,
                        qualname,
                        f"{name} mutated via .{node.func.attr}() -- shared across "
                        "every caller in the process",
                    )
        elif isinstance(node, (ast.Subscript, ast.Attribute)) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            name = is_global_mutable(node.value)
            if name is not None:
                kind = "subscript" if isinstance(node, ast.Subscript) else "attribute"
                self._emit(
                    GLOBAL_WRITE,
                    node,
                    qualname,
                    f"{name} mutated via {kind} store -- shared across every "
                    "caller in the process",
                )

    def _check_global_escape(
        self, node: ast.AST, qualname: str, local_names: set[str]
    ) -> None:
        def global_name(expr: ast.expr | None) -> str | None:
            if (
                isinstance(expr, ast.Name)
                and expr.id in self.mutable_globals
                and expr.id not in local_names
            ):
                return expr.id
            return None

        if isinstance(node, (ast.Return, ast.Yield)):
            name = global_name(node.value)
            if name is not None:
                self._emit(
                    GLOBAL_ESCAPE,
                    node,
                    qualname,
                    f"{name} escapes by return/yield -- callers receive an alias "
                    "to shared module state",
                )
        elif isinstance(node, ast.Call):
            callee = _call_name(node)
            if callee in NON_RETAINING_CALLEES:
                return
            for arg in [*node.args, *[k.value for k in node.keywords]]:
                name = global_name(arg)
                if name is not None:
                    self._emit(
                        GLOBAL_ESCAPE,
                        node,
                        qualname,
                        f"{name} passed whole to {callee or '<call>'}() -- the callee "
                        "may retain an alias to shared module state",
                    )
        elif isinstance(node, ast.Assign):
            name = global_name(node.value)
            if name is not None and any(
                isinstance(t, (ast.Attribute, ast.Subscript)) for t in node.targets
            ):
                self._emit(
                    GLOBAL_ESCAPE,
                    node,
                    qualname,
                    f"{name} stored into an object attribute/container -- an alias "
                    "to shared module state now lives past this call",
                )

    def _check_class_write(
        self, node: ast.AST, qualname: str, facts: Optional[_ClassFacts]
    ) -> None:
        def hazard_attr(expr: ast.expr) -> str | None:
            # self.X where X is a class-level mutable never shadowed per-instance.
            if (
                facts is not None
                and isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in facts.mutable_attrs
                and expr.attr not in facts.reassigned_attrs
            ):
                return expr.attr
            # ClassName.X for any class in this module with a mutable X.
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id in self.class_facts
                and expr.attr in self.class_facts[expr.value.id].mutable_attrs
            ):
                return f"{expr.value.id}.{expr.attr}"
            return None

        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATOR_METHODS:
                attr = hazard_attr(node.func.value)
                if attr is not None:
                    self._emit(
                        CLASS_MUTABLE_WRITE,
                        node,
                        qualname,
                        f"{attr} is class-level mutable state mutated via "
                        f".{node.func.attr}() -- shared by every instance",
                    )
        elif isinstance(node, (ast.Subscript,)) and isinstance(node.ctx, (ast.Store, ast.Del)):
            attr = hazard_attr(node.value)
            if attr is not None:
                self._emit(
                    CLASS_MUTABLE_WRITE,
                    node,
                    qualname,
                    f"{attr} is class-level mutable state mutated via subscript "
                    "store -- shared by every instance",
                )

    def _check_rng(
        self,
        node: ast.AST,
        qualname: str,
        traced: set[str],
        facts: Optional[_ClassFacts],
    ) -> None:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.random_names:
                self._emit(
                    RNG_UNTRACED,
                    node,
                    qualname,
                    f"{func.id}() draws from the ambient `random` module -- "
                    "seed provenance untraceable",
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id in self.random_names:
            self._emit(
                RNG_UNTRACED,
                node,
                qualname,
                f"random.{func.attr}() uses ambient process-global state -- "
                "seed provenance untraceable",
            )
            return
        if func.attr not in DRAW_METHODS:
            return
        if self._rng_traced(receiver, traced, facts):
            self.traced_draws += 1
            return
        self._emit(
            RNG_UNTRACED,
            node,
            qualname,
            f".{func.attr}() draw on a receiver that does not trace to a "
            "seeded DeterministicRng",
        )

    def _check_iteration(
        self,
        node: ast.AST,
        qualname: str,
        set_locals: set[str],
        facts: Optional[_ClassFacts],
    ) -> None:
        iters: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it):
                if self.include_set_displays:
                    self._emit(
                        UNORDERED_ITERATION,
                        it,
                        qualname,
                        "iterating a set expression -- element order depends on "
                        "the process hash seed; sort it first",
                    )
            elif isinstance(it, ast.Name) and it.id in set_locals:
                self._emit(
                    UNORDERED_ITERATION,
                    it,
                    qualname,
                    f"iterating set-typed {it.id} -- element order depends on "
                    "the process hash seed; sort it first",
                )
            elif (
                facts is not None
                and isinstance(it, ast.Attribute)
                and isinstance(it.value, ast.Name)
                and it.value.id == "self"
                and it.attr in facts.set_attrs
            ):
                self._emit(
                    UNORDERED_ITERATION,
                    it,
                    qualname,
                    f"iterating set-typed self.{it.attr} -- element order depends "
                    "on the process hash seed; sort it first",
                )

    def _check_id_keys(self, node: ast.AST, qualname: str) -> None:
        def is_identity_call(expr: ast.expr) -> str | None:
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id in {"id", "hash"}
            ):
                return expr.func.id
            return None

        if isinstance(node, ast.Subscript) and isinstance(node.ctx, (ast.Store, ast.Load, ast.Del)):
            name = is_identity_call(node.slice)
            if name is not None:
                self._emit(
                    ID_KEYED,
                    node,
                    qualname,
                    f"container keyed by {name}() -- keys depend on heap layout "
                    "or hash seed, not simulated state",
                )
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None and is_identity_call(key) is not None:
                    self._emit(
                        ID_KEYED,
                        key,
                        qualname,
                        "dict literal keyed by id()/hash() -- keys depend on heap "
                        "layout or hash seed",
                    )
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                value = keyword.value
                if isinstance(value, ast.Name) and value.id in {"id", "hash"}:
                    self._emit(
                        ID_KEYED,
                        value,
                        qualname,
                        f"ordering by key={value.id} -- order depends on heap "
                        "layout or hash seed, not simulated state",
                    )
                elif isinstance(value, ast.Lambda):
                    for sub in ast.walk(value.body):
                        if is_identity_call(sub) is not None:
                            self._emit(
                                ID_KEYED,
                                value,
                                qualname,
                                "sort key calls id()/hash() -- order depends on "
                                "heap layout or hash seed",
                            )
                            break


# ---------------------------------------------------------------------------
# Whole-program driver
# ---------------------------------------------------------------------------


class IsolationAnalyzer:
    """Scans entry-point import closures, caching per-module results."""

    def __init__(self) -> None:
        self.resolver = _OriginResolver()
        self._scans: dict[str, ModuleScan] = {}

    def scan_module(self, module: str) -> ModuleScan | None:
        if module in self._scans:
            return self._scans[module]
        tree = self.resolver.module_ast(module)
        if tree is None:
            return None
        origin = self.resolver.origins.get(module, module)
        scan = _ModuleAnalyzer(
            module, tree, _rel_path(origin), self.resolver
        ).run()
        self._scans[module] = scan
        return scan

    def analyze_entry(
        self,
        name: str,
        module: str,
        function: str,
        model: Optional[str] = None,
    ) -> EntryPointReport:
        if self.resolver.module_ast(module) is None:
            raise IsolationError(f"entry module {module!r} is not importable as source")
        if model is not None:
            own = MODEL_MODULES.get(model, ())
            stop = frozenset(_ALL_MODEL_MODULES - set(own))
            modules = set(import_closure(module, self.resolver, stop=stop))
            for extra in own:
                modules.update(import_closure(extra, self.resolver, stop=stop))
        else:
            modules = set(import_closure(module, self.resolver))
        findings: list[IsolationFinding] = []
        read_only: set[str] = set()
        traced = 0
        scanned = sorted(modules)
        for mod in scanned:
            scan = self.scan_module(mod)
            if scan is None:
                continue
            findings.extend(scan.findings)
            read_only.update(scan.read_only_globals)
            traced += scan.traced_draws
        findings.sort(key=lambda f: (f.path, f.line, f.category, f.detail))
        return EntryPointReport(
            name=name,
            module=module,
            function=function,
            model=model,
            modules=tuple(scanned),
            read_only_globals=tuple(sorted(read_only)),
            traced_draws=traced,
            findings=tuple(findings),
        )


def analyze_entry_points(
    entries: Iterable[tuple[str, str, str, Optional[str]]] = ENTRY_POINTS,
) -> list[EntryPointReport]:
    """Analyze the shipped entry points (or any custom set)."""
    analyzer = IsolationAnalyzer()
    return [
        analyzer.analyze_entry(name, module, function, model)
        for name, module, function, model in entries
    ]


# ---------------------------------------------------------------------------
# Per-file projection (lint rules D011/D012/D013)
# ---------------------------------------------------------------------------


def analyze_module_isolation_ast(tree: ast.Module, path: str) -> list[IsolationFinding]:
    """Single-file isolation findings (the D011/D012/D013 lint backend).

    Resolution is restricted to the one module (base classes in other files
    are invisible), and bare set *expressions* are left to D002 -- here only
    set-typed names/attributes, id()/hash() keys, and pass-1/2 findings
    surface.  The whole-program ``frfc-analyze isolation`` pass is the
    authority; this projection catches sins at edit time.
    """
    module = Path(path).stem
    resolver = SingleModuleResolver(module, tree)
    scan = _ModuleAnalyzer(
        module, tree, path, resolver, include_set_displays=False
    ).run()
    return list(scan.findings)


def analyze_module_isolation_source(source: str, path: str) -> list[IsolationFinding]:
    return analyze_module_isolation_ast(ast.parse(source, filename=path), path)


# ---------------------------------------------------------------------------
# Certificate (frfc-isolation/1) and budget gate
# ---------------------------------------------------------------------------


def build_certificate(reports: Iterable[EntryPointReport]) -> dict[str, Any]:
    """The committable ``frfc-isolation/1`` certificate document."""
    entry_points: dict[str, Any] = {}
    for report in reports:
        entry_points[report.name] = {
            "module": report.module,
            "function": report.function,
            "model": report.model,
            "verdict": report.verdict,
            "modules_scanned": list(report.modules),
            "evidence": {
                "globals_read_only": list(report.read_only_globals),
                "rng_draws_traced": report.traced_draws,
            },
            "findings": [
                {
                    "category": f.category,
                    "path": f.path,
                    "line": f.line,
                    "qualname": f.qualname,
                    "detail": f.detail,
                }
                for f in report.findings
            ],
        }
    return {"schema": CERT_SCHEMA, "entry_points": entry_points}


def check_certificate(
    reports: Iterable[EntryPointReport],
    baseline: Mapping[str, Any],
    fail_on_new: bool = False,
) -> tuple[list[str], list[str]]:
    """Compare fresh reports against a committed certificate.

    Returns ``(violations, notes)``: violations fail CI (a CERTIFIED entry
    degraded, a finding category grew, or -- under ``fail_on_new`` -- any
    finding not present in the baseline); notes record improvements that
    deserve a re-record.
    """
    violations: list[str] = []
    notes: list[str] = []
    if baseline.get("schema") != CERT_SCHEMA:
        violations.append(
            f"baseline schema {baseline.get('schema')!r} != {CERT_SCHEMA!r}; re-record with --write-budget"
        )
        return violations, notes
    entries = baseline.get("entry_points", {})
    for report in reports:
        base = entries.get(report.name)
        if base is None:
            violations.append(
                f"{report.name}: not in the committed certificate -- re-record with --write-budget"
            )
            continue
        if base.get("verdict") == CERTIFIED and report.verdict == VIOLATED:
            for finding in report.findings:
                violations.append(f"{report.name}: {finding.render()}")
            violations.append(
                f"{report.name}: was CERTIFIED, now VIOLATED "
                f"({len(report.findings)} finding(s) above)"
            )
            continue
        base_findings = base.get("findings", [])
        base_keys = {
            (f["category"], f["path"], f["qualname"], f["detail"]) for f in base_findings
        }
        fresh_keys = {f.key() for f in report.findings}
        base_counts: dict[str, int] = {}
        for f in base_findings:
            base_counts[f["category"]] = base_counts.get(f["category"], 0) + 1
        fresh_counts: dict[str, int] = {}
        for f in report.findings:
            fresh_counts[f.category] = fresh_counts.get(f.category, 0) + 1
        for category in sorted(set(base_counts) | set(fresh_counts)):
            have, allowed = fresh_counts.get(category, 0), base_counts.get(category, 0)
            if have > allowed:
                violations.append(
                    f"{report.name}: {category} findings grew {allowed} -> {have}"
                )
        if fail_on_new:
            for key in sorted(fresh_keys - base_keys):
                category, path, qualname, detail = key
                violations.append(
                    f"{report.name}: new finding [{category}] {path} {qualname}: {detail}"
                )
        if base.get("verdict") == VIOLATED and report.verdict == CERTIFIED:
            notes.append(
                f"{report.name}: improved VIOLATED -> CERTIFIED; re-record the baseline"
            )
        elif not violations or violations[-1].split(":")[0] != report.name:
            notes.append(f"{report.name}: {report.verdict}, matches baseline")
    return violations, notes


# ---------------------------------------------------------------------------
# Runtime cross-check (--verify): spawn/serial digest identity
# ---------------------------------------------------------------------------


@dataclass
class IsolationVerifyReport:
    """Digest identity evidence for one model's quick point."""

    label: str
    serial: tuple[str, str]
    spawned: str

    @property
    def identical(self) -> bool:
        return self.serial[0] == self.serial[1] == self.spawned

    def render(self) -> str:
        status = "identical" if self.identical else "DIVERGED"
        return (
            f"{self.label}: serial {self.serial[0][:12]}/{self.serial[1][:12]} "
            f"spawn {self.spawned[:12]} -- {status}"
        )


def _verify_config(label: str) -> Any:
    # Local imports keep module import light; mirrors hotpath's verify setup.
    if label == "FR":
        from repro.core.config import FR6

        return FR6
    if label == "VC":
        from repro.baselines.vc.config import VC8

        return VC8
    if label == "WH":
        from repro.baselines.wormhole.network import WormholeConfig

        return WormholeConfig(buffers_per_input=8)
    raise ValueError(f"unknown model label {label!r}")


def _digest_hex(label: str, offered_load: float, seed: int, cycles: int) -> str:
    """One quick point's run digest.  Top-level so ``spawn`` can pickle it."""
    from repro.analysis.permute import digest_network
    from repro.harness.experiment import build_network
    from repro.sim.kernel import Simulator
    from repro.topology.mesh import Mesh2D

    network = build_network(
        _verify_config(label), offered_load, seed=seed, mesh=Mesh2D(4, 4)
    )
    network.set_measure_window(0, cycles)
    Simulator(network).step(cycles)
    return digest_network(network, cycles, label).hexdigest()


def verify_isolation(
    offered_load: float = 0.3,
    seed: int = 7,
    cycles: int = 400,
    labels: Sequence[str] = ("FR", "VC", "WH"),
) -> list[IsolationVerifyReport]:
    """Replay a quick point per model: twice in-process, once in a fresh
    ``spawn``-ed interpreter.  Identical digests are the dynamic witness
    that no hidden process state feeds the simulation."""
    import multiprocessing

    reports: list[IsolationVerifyReport] = []
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=1) as pool:
        for label in labels:
            first = _digest_hex(label, offered_load, seed, cycles)
            second = _digest_hex(label, offered_load, seed, cycles)
            spawned = pool.apply(_digest_hex, (label, offered_load, seed, cycles))
            reports.append(
                IsolationVerifyReport(label=label, serial=(first, second), spawned=spawned)
            )
    return reports


__all__ = [
    "CERT_SCHEMA",
    "CERTIFIED",
    "VIOLATED",
    "CATEGORIES",
    "ENTRY_POINTS",
    "EntryPointReport",
    "IsolationAnalyzer",
    "IsolationError",
    "IsolationFinding",
    "IsolationVerifyReport",
    "ModuleScan",
    "analyze_entry_points",
    "analyze_module_isolation_ast",
    "analyze_module_isolation_source",
    "build_certificate",
    "check_certificate",
    "import_closure",
    "verify_isolation",
]
