"""Runtime order-permutation differ: the dynamic half of the race proof.

The cycle-phase race detector (:mod:`repro.analysis.phases`) proves
*statically* that the per-phase actor loops in ``step()`` are
order-independent -- except for the hook escapes it deliberately leaves to
runtime: network-level aggregation (latency sample appends, throughput
counters) reached through ``Callable`` attributes.  This module closes the
loop empirically.  Every :class:`~repro.sim.netbase.NetworkModel` carries
an ``eval_order`` list that its phase loops iterate; the differ runs the
same seeded workload several times, shuffling ``eval_order`` into a
different (seeded, reproducible) permutation each run, and demands the
end-of-run statistics be **bit-identical** -- not approximately equal.

Bit-identity is achievable because every aggregated quantity is either an
integer counter or a multiset of integer latencies: the digest compares
latencies in sorted order (the canonical multiset form) and counters
exactly, so any order-dependence anywhere in the model -- a missed shared
write, a non-commutative hook -- shows up as a digest mismatch naming the
first differing field.

The per-actor RNG streams make this a fair test: sources and routers draw
from streams spawned per node at construction, so a shuffled evaluation
order replays the exact same per-node random decisions.  If the model were
instead sharing one stream across actors, every permutation would produce
a different workload and the differ would (correctly) fail.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.harness.experiment import AnyConfig, build_network
from repro.sim.invariants import InvariantChecker
from repro.sim.kernel import Simulator
from repro.sim.netbase import NetworkModel
from repro.sim.rng import DeterministicRng
from repro.topology.mesh import Mesh2D


@dataclass(frozen=True)
class RunDigest:
    """Canonical end-of-run state of one simulation, order-free by design."""

    eval_order_label: str
    cycles: int
    packets_created: int
    packets_delivered: int
    measured_delivered: int
    flits_ejected: int
    packets_ejected: int
    latency_samples: tuple[int, ...]  # sorted: the canonical multiset form
    in_flight_packet_ids: tuple[int, ...]  # sorted
    source_queue_lengths: tuple[int, ...]  # per node, node order
    extras: tuple[tuple[str, str], ...] = ()

    def hexdigest(self) -> str:
        payload = repr(
            (
                self.cycles,
                self.packets_created,
                self.packets_delivered,
                self.measured_delivered,
                self.flits_ejected,
                self.packets_ejected,
                self.latency_samples,
                self.in_flight_packet_ids,
                self.source_queue_lengths,
                self.extras,
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def diff_fields(self, other: "RunDigest") -> list[str]:
        """Names of the fields (identity aside) where the two runs differ."""
        fields = (
            "cycles",
            "packets_created",
            "packets_delivered",
            "measured_delivered",
            "flits_ejected",
            "packets_ejected",
            "latency_samples",
            "in_flight_packet_ids",
            "source_queue_lengths",
            "extras",
        )
        return [
            name
            for name in fields
            if getattr(self, name) != getattr(other, name)
        ]


@dataclass
class PermutationReport:
    """The differ's verdict across all evaluated orders."""

    config_name: str
    cycles: int
    orders: int
    digests: list[RunDigest] = field(default_factory=list)
    mismatches: list[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.mismatches and len(self.digests) == self.orders

    def format(self) -> str:
        lines = [
            f"order-permutation diff: {self.config_name}, "
            f"{self.cycles} cycles, {self.orders} evaluation orders"
        ]
        for digest in self.digests:
            lines.append(
                f"  {digest.eval_order_label:<12} sha256 {digest.hexdigest()[:16]}  "
                f"delivered={digest.packets_delivered} "
                f"samples={len(digest.latency_samples)}"
            )
        if self.identical:
            lines.append(
                "  bit-identical: router evaluation order does not affect results"
            )
        else:
            for mismatch in self.mismatches:
                lines.append(f"  MISMATCH: {mismatch}")
        return "\n".join(lines)


def digest_network(network: NetworkModel, cycles: int, label: str) -> RunDigest:
    """Collapse a finished run into its canonical, order-free digest."""
    extras: list[tuple[str, str]] = []
    if isinstance(network, FRNetwork):
        extras.append(("bypass_fraction", repr(network.bypass_fraction())))
        extras.append(
            (
                "data_flit_latencies",
                repr(tuple(sorted(network.data_flit_latency.samples()))),
            )
        )
    return RunDigest(
        eval_order_label=label,
        cycles=cycles,
        packets_created=len(network.packets_in_flight) + network.packets_delivered,
        packets_delivered=network.packets_delivered,
        measured_delivered=network.measured_delivered,
        flits_ejected=network.throughput.flits_ejected,
        packets_ejected=network.throughput.packets_ejected,
        latency_samples=tuple(sorted(network.latency_stats.samples())),
        in_flight_packet_ids=tuple(sorted(network.packets_in_flight)),
        source_queue_lengths=tuple(
            network.source_queue_length(node) for node in network.mesh.nodes()
        ),
        extras=tuple(extras),
    )


def _run_once(
    config: AnyConfig,
    offered_load: float,
    packet_length: int,
    seed: int,
    cycles: int,
    mesh: Mesh2D,
    eval_order: list[int],
    label: str,
    check_invariants: bool,
) -> RunDigest:
    network = build_network(
        config,
        offered_load,
        packet_length=packet_length,
        seed=seed,
        mesh=mesh,
    )
    if sorted(eval_order) != list(mesh.nodes()):
        raise ValueError(f"evaluation order is not a permutation of the mesh: {label}")
    network.eval_order = list(eval_order)
    network.set_measure_window(0, cycles)
    checker = InvariantChecker() if check_invariants else None
    simulator = Simulator(network, checker=checker)
    simulator.step(cycles)
    return digest_network(network, cycles, label)


def run_permutation_diff(
    config: AnyConfig | None = None,
    offered_load: float = 0.3,
    packet_length: int = 5,
    seed: int = 7,
    cycles: int = 300,
    orders: int = 4,
    mesh: Mesh2D | None = None,
    shuffle_seed: int = 1234,
    check_invariants: bool = False,
) -> PermutationReport:
    """Run one seeded workload under ``orders`` evaluation orders and diff.

    The first order is the natural node order (the shipped default); each
    further order is a seeded shuffle.  Returns a report whose
    ``identical`` property is the verdict; mismatches name the run and the
    exact fields that diverged from the baseline.
    """
    if orders < 2:
        raise ValueError(f"need at least 2 evaluation orders to diff, got {orders}")
    config = config or FRConfig()
    mesh = mesh or Mesh2D(4, 4)
    rng = DeterministicRng(shuffle_seed)
    natural = list(mesh.nodes())
    report = PermutationReport(
        config_name=config.name, cycles=cycles, orders=orders
    )
    baseline: RunDigest | None = None
    for index in range(orders):
        if index == 0:
            order, label = natural, "natural"
        else:
            order = rng.spawn(index).shuffled(natural)
            label = f"shuffle[{index}]"
        digest = _run_once(
            config,
            offered_load,
            packet_length,
            seed,
            cycles,
            mesh,
            order,
            label,
            check_invariants,
        )
        report.digests.append(digest)
        if baseline is None:
            baseline = digest
            continue
        differing = baseline.diff_fields(digest)
        if differing:
            report.mismatches.append(
                f"{digest.eval_order_label} differs from "
                f"{baseline.eval_order_label} in: {', '.join(differing)}"
            )
    return report
