"""Deliberately isolation-breaking fixtures the prover must catch.

Each class below commits exactly one of the sins
:mod:`repro.analysis.isolation` exists to find, in its most tempting form
-- the shape a well-meaning optimisation would take:

* :class:`AmbientTraffic` draws destinations from the ambient ``random``
  module: every draw consumes process-global state, so two sweep points in
  the same process perturb each other and no seed reproduces a run (D001,
  and pass 2's untraceable provenance, D012).
* :class:`MemoizingRouter` memoizes route lookups into a module-level dict
  -- the cache outlives the sweep point that filled it, warming later
  points with earlier points' entries (pass 1, D011).
* :class:`TallyStats` accumulates into a *class-level* dict that every
  instance aliases: counters from different networks (and different sweep
  points) land in one shared container (pass 1, D011).
* :class:`UnorderedDrain` iterates a set attribute and keys a map by
  ``id()``: drain order and key values depend on the hash seed and heap
  layout, so anything they feed -- arbitration, exported artifacts --
  diverges between processes (pass 3, D013).

The line-level ``frfc-lint: disable`` comments keep the repo-wide lint gate
green; the whole-program isolation pass deliberately ignores suppressions,
so pointing ``frfc-analyze isolation`` at this module still yields VIOLATED
-- which is exactly what ``tests/analysis/test_isolation.py`` asserts.

None of these classes may ever be handed to a network model.
"""

from __future__ import annotations

import random  # frfc-lint: disable=D001 -- the ambient-RNG sin under test

from repro.topology.mesh import Mesh2D

#: The memoization sin: a module-level cache written from instance methods.
_ROUTE_CACHE: dict[tuple[int, int], int] = {}


class AmbientTraffic:
    """A traffic pattern drawing destinations from ambient ``random``."""

    __slots__ = ("mesh",)

    def __init__(self, mesh: Mesh2D) -> None:
        self.mesh = mesh

    def destination(self, source: int) -> int:
        """A uniformly random destination -- from process-global state."""
        target = random.randint(0, self.mesh.num_nodes - 2)  # frfc-lint: disable=D001,D012
        return target if target < source else target + 1


class MemoizingRouter:
    """A routing function memoizing into a module-level dict."""

    __slots__ = ("mesh",)

    def __init__(self, mesh: Mesh2D) -> None:
        self.mesh = mesh

    def output_port(self, node: int, destination: int) -> int:
        """Dimension-ordered next hop, cached across *every* instance."""
        key = (node, destination)
        if key not in _ROUTE_CACHE:
            _ROUTE_CACHE[key] = self._compute(node, destination)  # frfc-lint: disable=D011
        return _ROUTE_CACHE[key]

    def _compute(self, node: int, destination: int) -> int:
        node_x, node_y = self.mesh.coordinates(node)
        dest_x, dest_y = self.mesh.coordinates(destination)
        if node_x != dest_x:
            return 1 if dest_x > node_x else 0
        if node_y != dest_y:
            return 3 if dest_y > node_y else 2
        return 4


class TallyStats:
    """Event counters accumulated into class-level (shared) state."""

    #: Shared by every instance -- the aliasing sin under test.
    totals: dict[str, int] = {}

    def record(self, event: str) -> None:
        self.totals[event] = self.totals.get(event, 0) + 1  # frfc-lint: disable=D011

    def count(self, event: str) -> int:
        return self.totals.get(event, 0)


class UnorderedDrain:
    """A drain queue whose order leaks the process hash seed."""

    __slots__ = ("_pending", "_by_identity")

    def __init__(self) -> None:
        self._pending: set[int] = set()
        self._by_identity: dict[int, object] = {}

    def stash(self, item: object, tag: int) -> None:
        self._pending.add(tag)
        self._by_identity[id(item)] = item  # frfc-lint: disable=D013

    def drain(self) -> list[int]:
        """Pop everything -- in hash order, not arrival order."""
        order = [tag for tag in self._pending]  # frfc-lint: disable=D013
        self._pending.clear()
        return order
