"""The flit-reservation router (paper Figure 3).

The router has two halves:

* **Control plane** -- control flits arrive into per-input control virtual
  channels (the control network itself runs ordinary credit-based VC flow
  control).  Each cycle, up to ``control_flits_per_cycle`` control flits per
  input are *processed*: routed (heads compute the output port and store it
  in a table indexed by VCID; bodies look it up), then their data flits are
  scheduled on the selected output's reservation table.  Reservation
  feedback goes to the input scheduler of the port where each data flit will
  arrive, and an advance credit (the departure time) goes to the upstream
  node.  A fully scheduled control flit is forwarded to the next node on the
  following cycle -- the paper's 1-cycle routing-and-scheduling latency --
  subject to control VC allocation, control buffer credits, and the 2-flit
  control link width.  At the destination it is consumed after scheduling
  the ejection of its data flits into the reassembly buffers.

* **Data plane** -- entirely decision-free.  Each cycle the input
  reservation tables direct which buffers drive which outputs and where
  arriving flits are written; a flit whose reserved departure equals its
  arrival cycle bypasses the buffers straight to the output.  The contents
  of data flits are never examined.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.core.config import FRConfig
from repro.core.flits import ControlFlit, DataFlit
from repro.core.input_schedule import InputScheduler
from repro.core.reservation import OutputReservationTable
from repro.sim.link import Link
from repro.sim.rng import DeterministicRng
from repro.topology.mesh import EJECT, INJECT
from repro.topology.routing import DimensionOrderRouting

NUM_PORTS = 5  # north, east, south, west, local


class FRRouter:
    """One mesh router under flit-reservation flow control."""

    __slots__ = (
        "node",
        "config",
        "routing",
        "rng",
        "eject_data",
        "consume_control",
        "ctrl_queues",
        "route_table",
        "ctrl_credits",
        "ctrl_vc_owned",
        "_ctrl_link_slots",
        "_last_ctrl_slot",
        "input_sched",
        "out_tables",
        "ctrl_out_links",
        "ctrl_in_links",
        "ctrl_credit_out",
        "ctrl_credit_in",
        "data_out_links",
        "data_in_links",
        "adv_credit_out",
        "adv_credit_in",
        "connected_outputs",
        "ni_advance_credit",
        "ni_control_credit",
        "on_data_arrival",
        "on_control_arrival",
        "on_reservation_grant",
        "on_reservation_deny",
        "on_credit_return",
        "schedule_stalls",
        "forward_stalls",
        "splits_performed",
    )

    def __init__(
        self,
        node: int,
        config: FRConfig,
        routing: DimensionOrderRouting,
        rng: DeterministicRng,
        eject_data: Callable[[DataFlit, int], None],
        consume_control: Callable[[ControlFlit, int], None],
    ) -> None:
        self.node = node
        self.config = config
        self.routing = routing
        self.rng = rng
        self.eject_data = eject_data
        self.consume_control = consume_control
        v = config.control_vcs
        # Control input side.
        self.ctrl_queues: list[list[deque[ControlFlit]]] = [
            [deque() for _ in range(v)] for _ in range(NUM_PORTS)
        ]
        # route_table[port][vc] = [out_port, out_vc, packet_id] for the
        # packet currently traversing that control VC; out_vc is -1 until a
        # downstream control VC is allocated at forward time.
        self.route_table: list[list[Optional[list[int]]]] = [
            [None] * v for _ in range(NUM_PORTS)
        ]
        # Control output side (upstream view of the downstream control input).
        self.ctrl_credits = [[config.control_buffers_per_vc] * v for _ in range(NUM_PORTS)]
        self.ctrl_vc_owned = [[False] * v for _ in range(NUM_PORTS)]
        # Control-link slot bookings (cycle -> flits committed to forward
        # then) and the last slot each control VC claimed, which keeps
        # per-VC forwarding FIFO.
        self._ctrl_link_slots: list[dict[int, int]] = [{} for _ in range(NUM_PORTS)]
        self._last_ctrl_slot = [[-1] * v for _ in range(NUM_PORTS)]
        # Data side.
        track = config.buffer_allocation == "at_reservation"
        self.input_sched = [
            InputScheduler(config.data_buffers_per_input, track_transfers=track)
            for _ in range(NUM_PORTS)
        ]
        self.out_tables: list[Optional[OutputReservationTable]] = [None] * NUM_PORTS
        self.out_tables[EJECT] = OutputReservationTable(
            config.scheduling_horizon,
            downstream_buffers=1,
            propagation_delay=0,
            infinite_buffers=True,
        )
        # Links, wired by the network.
        self.ctrl_out_links: list[Optional[Link[tuple[int, ControlFlit]]]] = [None] * NUM_PORTS
        self.ctrl_in_links: list[Optional[Link[tuple[int, ControlFlit]]]] = [None] * NUM_PORTS
        self.ctrl_credit_out: list[Optional[Link[int]]] = [None] * NUM_PORTS
        self.ctrl_credit_in: list[Optional[Link[int]]] = [None] * NUM_PORTS
        self.data_out_links: list[Optional[Link[DataFlit]]] = [None] * NUM_PORTS
        self.data_in_links: list[Optional[Link[DataFlit]]] = [None] * NUM_PORTS
        self.adv_credit_out: list[Optional[Link[int]]] = [None] * NUM_PORTS
        self.adv_credit_in: list[Optional[Link[int]]] = [None] * NUM_PORTS
        self.connected_outputs: list[int] = []
        # NI callbacks (on-node wiring, no link delay), set by the network.
        self.ni_advance_credit: Optional[Callable[[int, int], None]] = None
        self.ni_control_credit: Optional[Callable[[int], None]] = None
        # Observability hooks (stats/tracing only; routing never consults
        # them).  Grant: (control flit, data-flit index, out port, departure,
        # cycle); deny: (control flit, out port, cycle); credit return:
        # ("control"|"advance", port, vc-or-free-from-cycle, cycle).
        self.on_data_arrival: Optional[Callable[[DataFlit, int, int], None]] = None
        self.on_control_arrival: Optional[Callable[[ControlFlit, int, int], None]] = None
        self.on_reservation_grant: Optional[Callable[[ControlFlit, int, int, int, int], None]] = None
        self.on_reservation_deny: Optional[Callable[[ControlFlit, int, int], None]] = None
        self.on_credit_return: Optional[Callable[[str, int, int, int], None]] = None
        # Diagnostics.
        self.schedule_stalls = 0
        self.forward_stalls = 0
        self.splits_performed = 0

    # -- wiring ----------------------------------------------------------------

    def connect_output(
        self,
        port: int,
        data_link: Link[DataFlit],
        ctrl_link: Link[tuple[int, ControlFlit]],
        adv_credit_link: Link[int],
        ctrl_credit_link: Link[int],
    ) -> None:
        """Attach output-side links and build the output reservation table."""
        self.data_out_links[port] = data_link
        self.ctrl_out_links[port] = ctrl_link
        self.adv_credit_in[port] = adv_credit_link
        self.ctrl_credit_in[port] = ctrl_credit_link
        self.out_tables[port] = OutputReservationTable(
            self.config.scheduling_horizon,
            downstream_buffers=self.config.data_buffers_per_input,
            propagation_delay=self.config.data_link_delay,
        )
        self.connected_outputs.append(port)

    def connect_input(
        self,
        port: int,
        data_link: Link[DataFlit],
        ctrl_link: Link[tuple[int, ControlFlit]],
        adv_credit_link: Link[int],
        ctrl_credit_link: Link[int],
    ) -> None:
        """Attach input-side links (the reverse-direction credits go out)."""
        self.data_in_links[port] = data_link
        self.ctrl_in_links[port] = ctrl_link
        self.adv_credit_out[port] = adv_credit_link
        self.ctrl_credit_out[port] = ctrl_credit_link

    # -- control plane ----------------------------------------------------------

    def control_phase(self, now: int) -> None:
        """One cycle of the control plane: credits, arrivals, forward, process."""
        for port in self.connected_outputs:
            for vc in self.ctrl_credit_in[port].receive(now):
                self.ctrl_credits[port][vc] += 1
            table = self.out_tables[port]
            for from_cycle in self.adv_credit_in[port].receive(now):
                table.apply_credit(now, from_cycle)
        for port in range(4):
            link = self.ctrl_in_links[port]
            if link is None:
                continue
            for vc, flit in link.receive(now):
                self.accept_control_flit(port, vc, flit, now)
        for port in range(NUM_PORTS):
            self._serve_control_input(port, now)

    def accept_control_flit(self, port: int, vc: int, flit: ControlFlit, now: int) -> None:
        """Insert an arriving control flit into its control VC queue."""
        queue = self.ctrl_queues[port][vc]
        # Uncredited split flits in staging slots do not count against the
        # credited buffer capacity.
        credited_occupancy = 0
        for queued in queue:
            if queued.credited:
                credited_occupancy += 1
        if credited_occupancy >= self.config.control_buffers_per_vc:
            raise RuntimeError(
                f"control buffer overflow at node {self.node} port {port} vc {vc}: "
                "control credit protocol violated"
            )
        flit.credited = True
        queue.append(flit)
        if self.on_control_arrival is not None:
            self.on_control_arrival(flit, self.node, now)

    def _serve_control_input(self, port: int, now: int) -> None:
        queues = self.ctrl_queues[port]
        vcs = [vc for vc in range(self.config.control_vcs) if queues[vc]]
        if not vcs:
            return
        if len(vcs) > 1:
            vcs = self.rng.shuffled(vcs)
        # Forward pass: queue-front flits whose reserved link slot has come
        # move on, freeing their control buffers.
        for vc in vcs:
            self._drain_front(port, vc, now)
        # Processing pass: route + schedule up to control_flits_per_cycle
        # flits.  Two rules keep the control/data dependency graph acyclic
        # (the cross-dependency hazard the paper's Section 5 points out):
        #
        # 1. Scheduling proceeds *past* a front flit that is merely waiting
        #    for its forward slot -- only forwarding is FIFO.  Otherwise a
        #    waiting control flit would trap the unscheduled data flits of
        #    the flits queued behind it in this node's buffer pool.
        # 2. A control flit commits its reservations only when its onward
        #    journey is secured: downstream control VC, control buffer
        #    credit, and a reserved slot on the control output link are all
        #    claimed in the same step (see _process_flit).  A committed
        #    control flit therefore can never stall behind its own data
        #    flits, so every dependency points forward along XY routes and
        #    terminates at an ejection port.
        budget = self.config.control_flits_per_cycle
        for vc in vcs:
            if budget <= 0:
                break
            budget = self._schedule_queue(port, vc, now, budget)

    def _drain_front(self, port: int, vc: int, now: int) -> None:
        """Forward or consume the queue-front flit if its schedule is done."""
        queue = self.ctrl_queues[port][vc]
        while queue:
            flit = queue[0]
            if not flit.fully_scheduled():
                return
            out_port = self.route_table[port][vc][0]
            if out_port == EJECT:
                self._consume(port, vc, flit, now)
                continue  # consumption frees the front; try the next flit
            if now >= flit.forward_at:
                self._forward_front(port, vc, flit, now)
            return  # at most one link forward per VC per cycle

    def _schedule_queue(self, port: int, vc: int, now: int, budget: int) -> int:
        """Schedule flits in queue order until the budget or a blocker."""
        queue = self.ctrl_queues[port][vc]
        index = 0
        while index < len(queue):
            if budget <= 0:
                return 0
            flit = queue[index]
            if flit.fully_scheduled():
                index += 1
                continue
            entry = self.route_table[port][vc]
            if flit.is_head and entry is not None and entry[2] != flit.packet.packet_id:
                # The previous packet still owns this control VC's routing
                # entry; the new packet waits for it to finish forwarding.
                return budget
            budget -= 1
            outcome = self._process_flit(port, vc, flit, now)
            if outcome == "done":
                if self.route_table[port][vc][0] == EJECT and index == 0:
                    self._consume(port, vc, flit, now)
                    continue  # the queue shrank; re-examine the new front
                index += 1
            elif outcome == "split":
                # A split control flit was inserted before the residual; the
                # residual is still unscheduled and blocks FIFO forwarding,
                # so nothing behind it may reserve a link slot this cycle.
                return budget
            else:
                return budget  # later flits share the blocked output
        return budget

    def _process_flit(self, port: int, vc: int, flit: ControlFlit, now: int) -> str:
        """Route, secure forward resources, schedule, and commit -- atomically.

        Returns "done" when the flit is fully scheduled (with its forward
        slot reserved), "split" when a partially scheduled wide control flit
        forwarded its progress as a split flit (see below), and "stall" when
        nothing was committed and the flit retries next cycle.

        Deadlock-avoidance extension for wide control flits (d > 1, per-flit
        policy): the paper lets each successfully scheduled data flit move on
        immediately, but a control flit stalled mid-group would then sit
        behind its own advanced data flits -- they fill the next node's pool
        and can only be scheduled onward by this very control flit, a
        self-cycle the paper's Section 5 leaves open.  Here a stalled
        mid-group flit *splits*: a control flit carrying the scheduled
        arrival times forwards at once (control flits carry "up to N" data
        flits, so a partially filled one is protocol-legal) while the
        residual keeps retrying.  With d=1, the paper's configuration, the
        split path never triggers.
        """
        entry = self.route_table[port][vc]
        if entry is None:
            if not flit.is_head:
                raise RuntimeError(
                    f"control body flit {flit!r} with no routing-table entry at "
                    f"node {self.node}: VCID discipline violated"
                )
            out_port = self.routing.output_port(self.node, flit.destination)
            entry = [out_port, -1, flit.packet.packet_id]
            self.route_table[port][vc] = entry
        out_port = entry[0]
        if out_port == EJECT:
            if not self._schedule_data_flits(port, flit, out_port, now):
                self.schedule_stalls += 1
                if self.on_reservation_deny is not None:
                    self.on_reservation_deny(flit, out_port, now)
                return "stall"
            return "done"
        # Secure the onward journey before committing any reservation.
        out_vc = entry[1]
        if out_vc == -1:
            candidates = [
                v
                for v in range(self.config.control_vcs)
                if not self.ctrl_vc_owned[out_port][v]
                and self.ctrl_credits[out_port][v] > 0
            ]
            if not candidates:
                self.forward_stalls += 1
                return "stall"
            out_vc = candidates[0] if len(candidates) == 1 else self.rng.choice(candidates)
        elif self.ctrl_credits[out_port][out_vc] <= 0:
            self.forward_stalls += 1
            return "stall"
        if not self._schedule_data_flits(port, flit, out_port, now):
            self.schedule_stalls += 1
            if self.on_reservation_deny is not None:
                self.on_reservation_deny(flit, out_port, now)
            if self.config.scheduling_policy == "per_flit" and any(flit.scheduled):
                return self._split_and_forward(port, vc, flit, entry, out_vc, now)
            return "stall"
        # Commit the forward resources claimed above.
        if entry[1] == -1:
            entry[1] = out_vc
            self.ctrl_vc_owned[out_port][out_vc] = True
        self.ctrl_credits[out_port][out_vc] -= 1
        flit.forward_at = self._reserve_link_slot(port, vc, out_port, now)
        return "done"

    def _split_and_forward(
        self,
        port: int,
        vc: int,
        flit: ControlFlit,
        entry: list[int],
        out_vc: int,
        now: int,
    ) -> str:
        """Forward a stalled wide control flit's progress as a split flit."""
        out_port = entry[0]
        split = flit.split_scheduled()
        if entry[1] == -1:
            entry[1] = out_vc
            self.ctrl_vc_owned[out_port][out_vc] = True
        self.ctrl_credits[out_port][out_vc] -= 1
        split.forward_at = self._reserve_link_slot(port, vc, out_port, now)
        split.credited = False  # staging slot; the residual holds the credit
        queue = self.ctrl_queues[port][vc]
        queue.insert(queue.index(flit), split)
        self.splits_performed += 1
        return "split"

    def _schedule_data_flits(
        self, port: int, flit: ControlFlit, out_port: int, now: int
    ) -> bool:
        if self.config.scheduling_policy == "per_flit":
            return self._schedule_per_flit(port, flit, out_port, now)
        return self._schedule_all_or_nothing(port, flit, out_port, now)

    def _reserve_link_slot(self, port: int, vc: int, out_port: int, now: int) -> int:
        """Claim the earliest control-link slot this flit may forward in.

        Slots are strictly increasing per control VC so forwarding stays
        FIFO and every reserved slot is honoured exactly.
        """
        slots = self._ctrl_link_slots[out_port]
        width = self.ctrl_out_links[out_port].width
        cycle = max(now + 1, self._last_ctrl_slot[port][vc] + 1)
        while slots.get(cycle, 0) >= width:
            cycle += 1
        slots[cycle] = slots.get(cycle, 0) + 1
        self._last_ctrl_slot[port][vc] = cycle
        return cycle

    def _schedule_per_flit(
        self, port: int, flit: ControlFlit, out_port: int, now: int
    ) -> bool:
        table = self.out_tables[out_port]
        for i in range(len(flit.data_flits)):
            if flit.scheduled[i]:
                continue
            arrival = flit.arrival_times[i]
            departure = self._find_departure(port, table, now, max(arrival, now + 1))
            if departure is None:
                return False
            table.reserve(now, departure)
            self._commit_reservation(port, flit, i, departure, out_port, now)
        return True

    def _find_departure(
        self, port: int, table: OutputReservationTable, now: int, earliest: int
    ) -> int | None:
        """Earliest departure satisfying the output table *and* this
        input's buffer read ports (paper footnote 7: one "Buffer Out" row
        unless the input buffer is multi-ported)."""
        scheduler = self.input_sched[port]
        limit = self.config.input_read_ports
        while True:
            departure = table.find_departure(now, earliest)
            if departure is None or scheduler.departures_at(departure) < limit:
                return departure
            earliest = departure + 1

    def _schedule_all_or_nothing(
        self, port: int, flit: ControlFlit, out_port: int, now: int
    ) -> bool:
        table = self.out_tables[out_port]
        tentative: list[tuple[int, int]] = []
        for i in range(len(flit.data_flits)):
            arrival = flit.arrival_times[i]
            departure = self._find_departure(port, table, now, max(arrival, now + 1))
            if departure is None:
                for _, earlier in tentative:
                    table.release(earlier)
                return False
            table.reserve(now, departure)
            tentative.append((i, departure))
        for i, departure in tentative:
            self._commit_reservation(port, flit, i, departure, out_port, now)
        return True

    def _commit_reservation(
        self, port: int, flit: ControlFlit, i: int, departure: int, out_port: int, now: int
    ) -> None:
        arrival = flit.arrival_times[i]
        self.input_sched[port].on_reservation(now, arrival, departure, out_port)
        # The buffer frees at the departure; plesiochronous links hold it a
        # margin longer in case the transmit clock slips (Section 5).
        credit_from = departure + self.config.plesiochronous_margin
        if port == INJECT:
            self.ni_advance_credit(now, credit_from)
        else:
            self.adv_credit_out[port].send(credit_from, now)
        if self.on_reservation_grant is not None:
            self.on_reservation_grant(flit, i, out_port, departure, now)
        if self.on_credit_return is not None:
            self.on_credit_return("advance", port, credit_from, now)
        flit.scheduled[i] = True
        if out_port == EJECT:
            flit.arrival_times[i] = departure
        else:
            flit.arrival_times[i] = departure + self.config.data_link_delay

    def _forward_front(self, port: int, vc: int, flit: ControlFlit, now: int) -> None:
        """Send the committed front flit at its reserved link slot."""
        entry = self.route_table[port][vc]
        out_port, out_vc = entry[0], entry[1]
        if now != flit.forward_at:
            raise RuntimeError(
                f"control flit {flit!r} forwarding at cycle {now} but its "
                f"reserved link slot was {flit.forward_at}: FIFO slot "
                "discipline violated"
            )
        self.ctrl_queues[port][vc].popleft()
        flit.vcid = out_vc
        flit.reset_schedule_flags()
        self.ctrl_out_links[out_port].send((out_vc, flit), now)
        slots = self._ctrl_link_slots[out_port]
        slots[now] -= 1
        if not slots[now]:
            del slots[now]
        if flit.is_last:
            self.ctrl_vc_owned[out_port][out_vc] = False
            self.route_table[port][vc] = None
        if flit.credited:
            self._return_control_credit(port, vc, now)

    def _consume(self, port: int, vc: int, flit: ControlFlit, now: int) -> None:
        """Deliver a control flit to the local reassembly machinery."""
        self.ctrl_queues[port][vc].popleft()
        if flit.is_last:
            self.route_table[port][vc] = None
        if flit.credited:
            self._return_control_credit(port, vc, now)
        self.consume_control(flit, now)

    def _return_control_credit(self, port: int, vc: int, now: int) -> None:
        if port == INJECT:
            self.ni_control_credit(vc)
        else:
            self.ctrl_credit_out[port].send(vc, now)
        if self.on_credit_return is not None:
            self.on_credit_return("control", port, vc, now)

    # -- data plane ---------------------------------------------------------------

    def data_departures(self, now: int) -> None:
        """Drive scheduled buffer reads onto output links (or eject)."""
        for port in range(NUM_PORTS):
            for flit, out_port in self.input_sched[port].take_departures(now):
                self._send_data(flit, out_port, now)

    def data_arrivals(self, now: int) -> None:
        """Write arriving flits to their allocated buffers or bypass them."""
        for port in range(4):
            link = self.data_in_links[port]
            if link is None:
                continue
            for flit in link.receive(now):
                self._accept_data(port, flit, now)

    def inject_data(self, flit: DataFlit, now: int) -> None:
        """The NI delivers a data flit to the local input at its reserved cycle."""
        self._accept_data(INJECT, flit, now)

    def _accept_data(self, port: int, flit: DataFlit, now: int) -> None:
        if self.on_data_arrival is not None:
            self.on_data_arrival(flit, self.node, now)
        bypass_port = self.input_sched[port].on_arrival(now, flit)
        if bypass_port is not None:
            self._send_data(flit, bypass_port, now)

    def _send_data(self, flit: DataFlit, out_port: int, now: int) -> None:
        if out_port == EJECT:
            self.eject_data(flit, now)
        else:
            self.data_out_links[out_port].send(flit, now)

    # -- introspection ---------------------------------------------------------------

    def buffered_flits(self, port: int) -> int:
        """Occupied data buffers at one input (Section 4.2 occupancy study)."""
        return self.input_sched[port].occupancy
