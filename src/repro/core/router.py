"""The flit-reservation router (paper Figure 3).

The router has two halves:

* **Control plane** -- control flits arrive into per-input control virtual
  channels (the control network itself runs ordinary credit-based VC flow
  control).  Each cycle, up to ``control_flits_per_cycle`` control flits per
  input are *processed*: routed (heads compute the output port and store it
  in a table indexed by VCID; bodies look it up), then their data flits are
  scheduled on the selected output's reservation table.  Reservation
  feedback goes to the input scheduler of the port where each data flit will
  arrive, and an advance credit (the departure time) goes to the upstream
  node.  A fully scheduled control flit is forwarded to the next node on the
  following cycle -- the paper's 1-cycle routing-and-scheduling latency --
  subject to control VC allocation, control buffer credits, and the 2-flit
  control link width.  At the destination it is consumed after scheduling
  the ejection of its data flits into the reassembly buffers.

* **Data plane** -- entirely decision-free.  Each cycle the input
  reservation tables direct which buffers drive which outputs and where
  arriving flits are written; a flit whose reserved departure equals its
  arrival cycle bypasses the buffers straight to the output.  The contents
  of data flits are never examined.

Kernel architecture notes (see docs/performance.md):

* Each phase method returns whether the router still has work for that
  phase, and the network only steps routers whose activity flag is raised.
  The router raises its *own* flag slot when it gains control work
  (``accept_control_flit``) or departure work (``_commit_reservation``);
  links raise the consumer's flag on ``send``.  A skipped phase is provably
  a no-op that draws no randomness, so active-set stepping is digest-
  identical to dense stepping.
* The observability hooks are exposed as properties whose setters swap
  bound-method dispatch slots (``accept_control_flit``, ``_accept_data``,
  ``_commit_reservation``, ``_return_control_credit``) between a plain and
  an observed variant, so a detached run pays no per-event hook branches.
  The observed variants must stay in lockstep with their plain twins --
  they differ only in the hook invocations, at the exact points the hooks
  historically fired.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.core.config import FRConfig
from repro.core.flits import ControlFlit, DataFlit
from repro.core.input_schedule import InputScheduler
from repro.core.reservation import OutputReservationTable
from repro.sim.link import Link
from repro.sim.rng import DeterministicRng
from repro.topology.mesh import EJECT, INJECT
from repro.topology.routing import DimensionOrderRouting

NUM_PORTS = 5  # north, east, south, west, local


class FRRouter:
    """One mesh router under flit-reservation flow control."""

    __slots__ = (
        "node",
        "config",
        "routing",
        "rng",
        "eject_data",
        "consume_control",
        "ctrl_queues",
        "route_table",
        "ctrl_credits",
        "ctrl_vc_owned",
        "_ctrl_credited",
        "_credit_scan",
        "_ctrl_in_scan",
        "_data_in_scan",
        "_ctrl_link_slots",
        "_last_ctrl_slot",
        "input_sched",
        "out_tables",
        "ctrl_out_links",
        "ctrl_in_links",
        "ctrl_credit_out",
        "ctrl_credit_in",
        "data_out_links",
        "data_in_links",
        "adv_credit_out",
        "adv_credit_in",
        "connected_outputs",
        "ni_advance_credit",
        "ni_control_credit",
        "_num_vcs",
        "_ctrl_budget",
        "_ctrl_bufs_per_vc",
        "_read_limit",
        "_margin",
        "_data_delay",
        "_per_flit",
        "_schedule_data_flits",
        "accept_control_flit",
        "_accept_data",
        "_commit_reservation",
        "_return_control_credit",
        "_on_data_arrival",
        "_on_control_arrival",
        "_on_reservation_grant",
        "_on_credit_return",
        "on_reservation_deny",
        "_ctrl_count",
        "_ctrl_total",
        "_ctrl_flags",
        "_ctrl_wake",
        "_dep_flags",
        "_dep_wake",
        "_vcs_scratch",
        "_cand_scratch",
        "_two_vcs",
        "_vc_both",
        "_vc_zero",
        "_vc_one",
        "schedule_stalls",
        "forward_stalls",
        "splits_performed",
    )

    def __init__(
        self,
        node: int,
        config: FRConfig,
        routing: DimensionOrderRouting,
        rng: DeterministicRng,
        eject_data: Callable[[DataFlit, int], None],
        consume_control: Callable[[ControlFlit, int], None],
    ) -> None:
        self.node = node
        self.config = config
        self.routing = routing
        self.rng = rng
        self.eject_data = eject_data
        self.consume_control = consume_control
        v = config.control_vcs
        # Hot-path copies of config scalars: the per-cycle loops read these
        # thousands of times per simulated cycle, so they live directly on
        # the router instead of behind the two-attribute config chain.
        self._num_vcs = v
        self._ctrl_budget = config.control_flits_per_cycle
        self._ctrl_bufs_per_vc = config.control_buffers_per_vc
        self._read_limit = config.input_read_ports
        self._margin = config.plesiochronous_margin
        self._data_delay = config.data_link_delay
        self._per_flit = config.scheduling_policy == "per_flit"
        # Scheduling-policy dispatch slot: chosen once here, so the hot
        # control loop never re-compares the policy string per flit.
        if self._per_flit:
            self._schedule_data_flits = self._schedule_per_flit
        else:
            self._schedule_data_flits = self._schedule_all_or_nothing
        # Control input side.
        self.ctrl_queues: list[list[deque[ControlFlit]]] = [
            [deque() for _ in range(v)] for _ in range(NUM_PORTS)
        ]
        # route_table[port][vc] = [out_port, out_vc, packet_id] for the
        # packet currently traversing that control VC; out_vc is -1 until a
        # downstream control VC is allocated at forward time.
        self.route_table: list[list[Optional[list[int]]]] = [
            [None] * v for _ in range(NUM_PORTS)
        ]
        # Control output side (upstream view of the downstream control input).
        self.ctrl_credits = [[config.control_buffers_per_vc] * v for _ in range(NUM_PORTS)]
        self.ctrl_vc_owned = [[False] * v for _ in range(NUM_PORTS)]
        # Credited occupancy of each control VC queue: the number of queued
        # flits with ``credited`` set, mirrored so the accept path checks the
        # buffer bound with one indexed read instead of walking the queue.
        self._ctrl_credited = [[0] * v for _ in range(NUM_PORTS)]
        # Per-cycle scan lists, filled by connect_output/connect_input: the
        # control phase iterates these prebuilt tuples instead of re-indexing
        # four parallel port arrays per connected port per cycle.
        self._credit_scan: list[tuple] = []
        self._ctrl_in_scan: list[tuple] = []
        self._data_in_scan: list[tuple] = []
        # Control-link slot bookings (cycle -> flits committed to forward
        # then) and the last slot each control VC claimed, which keeps
        # per-VC forwarding FIFO.
        self._ctrl_link_slots: list[dict[int, int]] = [{} for _ in range(NUM_PORTS)]
        self._last_ctrl_slot = [[-1] * v for _ in range(NUM_PORTS)]
        # Data side.
        track = config.buffer_allocation == "at_reservation"
        self.input_sched = [
            InputScheduler(config.data_buffers_per_input, track_transfers=track)
            for _ in range(NUM_PORTS)
        ]
        self.out_tables: list[Optional[OutputReservationTable]] = [None] * NUM_PORTS
        self.out_tables[EJECT] = OutputReservationTable(
            config.scheduling_horizon,
            downstream_buffers=1,
            propagation_delay=0,
            infinite_buffers=True,
        )
        # Links, wired by the network.
        self.ctrl_out_links: list[Optional[Link[ControlFlit]]] = [None] * NUM_PORTS
        self.ctrl_in_links: list[Optional[Link[ControlFlit]]] = [None] * NUM_PORTS
        self.ctrl_credit_out: list[Optional[Link[int]]] = [None] * NUM_PORTS
        self.ctrl_credit_in: list[Optional[Link[int]]] = [None] * NUM_PORTS
        self.data_out_links: list[Optional[Link[DataFlit]]] = [None] * NUM_PORTS
        self.data_in_links: list[Optional[Link[DataFlit]]] = [None] * NUM_PORTS
        self.adv_credit_out: list[Optional[Link[int]]] = [None] * NUM_PORTS
        self.adv_credit_in: list[Optional[Link[int]]] = [None] * NUM_PORTS
        self.connected_outputs: list[int] = []
        # NI callbacks (on-node wiring, no link delay), set by the network.
        self.ni_advance_credit: Optional[Callable[[int, int], None]] = None
        self.ni_control_credit: Optional[Callable[[int], None]] = None
        # Observability hooks (stats/tracing only; routing never consults
        # them).  Grant: (control flit, data-flit index, out port, departure,
        # cycle); deny: (control flit, out port, cycle); credit return:
        # ("control"|"advance", port, vc-or-free-from-cycle, cycle).  The
        # public names are properties; setting one swaps the corresponding
        # dispatch slot between the plain and observed method variants.
        self._on_data_arrival: Optional[Callable[[DataFlit, int, int], None]] = None
        self._on_control_arrival: Optional[Callable[[ControlFlit, int, int], None]] = None
        self._on_reservation_grant: Optional[Callable[[ControlFlit, int, int, int, int], None]] = None
        self._on_credit_return: Optional[Callable[[str, int, int, int], None]] = None
        self.on_reservation_deny: Optional[Callable[[ControlFlit, int, int], None]] = None
        self.accept_control_flit = self._accept_control_plain
        self._accept_data = self._accept_data_plain
        self._commit_reservation = self._commit_reservation_plain
        self._return_control_credit = self._return_credit_plain
        # Activity tracking: queued control flits per port (and in total) gate
        # the control-serve loop, and the flag slots below are rebound by the
        # network to its shared per-phase worklist arrays (bind_activity).
        self._ctrl_count = [0] * NUM_PORTS
        self._ctrl_total = 0
        self._ctrl_flags = bytearray(1)
        self._ctrl_wake = 0
        self._dep_flags = bytearray(1)
        self._dep_wake = 0
        # Reused scan buffers (never escape a single phase call).
        self._vcs_scratch: list[int] = []
        self._cand_scratch: list[int] = []
        # Serve-order constants for the ubiquitous two-VC configuration:
        # rng.shuffled copies its input, so sharing these is safe, and the
        # shuffle sees the same [0, 1] the generic scratch build produces.
        self._two_vcs = v == 2
        self._vc_both = [0, 1]
        self._vc_zero = [0]
        self._vc_one = [1]
        # Diagnostics.
        self.schedule_stalls = 0
        self.forward_stalls = 0
        self.splits_performed = 0

    # -- wiring ----------------------------------------------------------------

    def connect_output(
        self,
        port: int,
        data_link: Link[DataFlit],
        ctrl_link: Link[ControlFlit],
        adv_credit_link: Link[int],
        ctrl_credit_link: Link[int],
    ) -> None:
        """Attach output-side links and build the output reservation table."""
        self.data_out_links[port] = data_link
        self.ctrl_out_links[port] = ctrl_link
        self.adv_credit_in[port] = adv_credit_link
        self.ctrl_credit_in[port] = ctrl_credit_link
        self.out_tables[port] = OutputReservationTable(
            self.config.scheduling_horizon,
            downstream_buffers=self.config.data_buffers_per_input,
            propagation_delay=self.config.data_link_delay,
        )
        self.connected_outputs.append(port)
        self._credit_scan.append(
            (ctrl_credit_link, self.ctrl_credits[port], adv_credit_link, self.out_tables[port])
        )

    def connect_input(
        self,
        port: int,
        data_link: Link[DataFlit],
        ctrl_link: Link[ControlFlit],
        adv_credit_link: Link[int],
        ctrl_credit_link: Link[int],
    ) -> None:
        """Attach input-side links (the reverse-direction credits go out)."""
        self.data_in_links[port] = data_link
        self.ctrl_in_links[port] = ctrl_link
        self.adv_credit_out[port] = adv_credit_link
        self.ctrl_credit_out[port] = ctrl_credit_link
        # Sorted by port so same-cycle arrival processing (and therefore the
        # observability event order) is independent of wiring order.
        self._ctrl_in_scan.append((port, ctrl_link))
        self._ctrl_in_scan.sort(key=lambda entry: entry[0])
        self._data_in_scan.append((port, data_link))
        self._data_in_scan.sort(key=lambda entry: entry[0])

    def bind_activity(self, ctrl_flags: bytearray, dep_flags: bytearray, index: int) -> None:
        """Point this router's wake slots at the network's worklist arrays."""
        self._ctrl_flags = ctrl_flags
        self._ctrl_wake = index
        self._dep_flags = dep_flags
        self._dep_wake = index

    # -- observability hook properties (dispatch swapping) ----------------------

    @property
    def on_data_arrival(self) -> Optional[Callable[[DataFlit, int, int], None]]:
        return self._on_data_arrival

    @on_data_arrival.setter
    def on_data_arrival(self, hook: Optional[Callable[[DataFlit, int, int], None]]) -> None:
        self._on_data_arrival = hook
        self._accept_data = (
            self._accept_data_plain if hook is None else self._accept_data_observed
        )

    @property
    def on_control_arrival(self) -> Optional[Callable[[ControlFlit, int, int], None]]:
        return self._on_control_arrival

    @on_control_arrival.setter
    def on_control_arrival(
        self, hook: Optional[Callable[[ControlFlit, int, int], None]]
    ) -> None:
        self._on_control_arrival = hook
        self.accept_control_flit = (
            self._accept_control_plain if hook is None else self._accept_control_observed
        )

    @property
    def on_reservation_grant(
        self,
    ) -> Optional[Callable[[ControlFlit, int, int, int, int], None]]:
        return self._on_reservation_grant

    @on_reservation_grant.setter
    def on_reservation_grant(
        self, hook: Optional[Callable[[ControlFlit, int, int, int, int], None]]
    ) -> None:
        self._on_reservation_grant = hook
        self._refresh_commit_dispatch()

    @property
    def on_credit_return(self) -> Optional[Callable[[str, int, int, int], None]]:
        return self._on_credit_return

    @on_credit_return.setter
    def on_credit_return(self, hook: Optional[Callable[[str, int, int, int], None]]) -> None:
        self._on_credit_return = hook
        self._return_control_credit = (
            self._return_credit_plain if hook is None else self._return_credit_observed
        )
        self._refresh_commit_dispatch()

    def _refresh_commit_dispatch(self) -> None:
        observed = (
            self._on_reservation_grant is not None or self._on_credit_return is not None
        )
        self._commit_reservation = (
            self._commit_reservation_observed if observed else self._commit_reservation_plain
        )
        if self._per_flit:
            self._schedule_data_flits = (
                self._schedule_per_flit_observed if observed else self._schedule_per_flit
            )

    # -- control plane ----------------------------------------------------------

    def control_phase(self, now: int) -> bool:
        """One cycle of the control plane: credits, arrivals, forward, process.

        Returns whether the router still has control work (queued flits or
        in-flight control/credit deliveries) and must be stepped next cycle.
        The activity predicate is fused into the receive passes: this
        router's own serve step never touches its in-links (it sends only on
        out-links), so a post-receive ``pending`` reading equals a post-serve
        one, and later-stepped neighbors raise the wake flag on send anyway.
        """
        active = False
        for credit_link, port_credits, adv_link, table in self._credit_scan:
            if credit_link.pending:
                if now >= credit_link.next_arrival:
                    for vc in credit_link.receive(now):
                        port_credits[vc] += 1
                    if credit_link.pending:
                        active = True
                else:
                    active = True
            if adv_link.pending:
                if now >= adv_link.next_arrival:
                    for from_cycle in adv_link.receive(now):
                        table.apply_credit(now, from_cycle)
                    if adv_link.pending:
                        active = True
                else:
                    active = True
        for port, link in self._ctrl_in_scan:
            if link.pending:
                if now >= link.next_arrival:
                    for flit in link.receive(now):
                        self.accept_control_flit(port, flit.vcid, flit, now)
                    if link.pending:
                        active = True
                else:
                    active = True
        if self._ctrl_total:
            counts = self._ctrl_count
            for port in range(NUM_PORTS):
                if counts[port]:
                    self._serve_control_input(port, now)
        return active or self._ctrl_total > 0

    def _accept_control_plain(self, port: int, vc: int, flit: ControlFlit, now: int) -> None:
        """Insert an arriving control flit into its control VC queue."""
        # Uncredited split flits in staging slots do not count against the
        # credited buffer capacity; the mirror counter tracks credited
        # occupancy so no queue walk is needed here.
        credited = self._ctrl_credited[port]
        if credited[vc] >= self._ctrl_bufs_per_vc:
            raise RuntimeError(
                f"control buffer overflow at node {self.node} port {port} vc {vc}: "
                "control credit protocol violated"
            )
        credited[vc] += 1
        flit.credited = True
        self.ctrl_queues[port][vc].append(flit)
        self._ctrl_count[port] += 1
        self._ctrl_total += 1
        self._ctrl_flags[self._ctrl_wake] = 1

    def _accept_control_observed(self, port: int, vc: int, flit: ControlFlit, now: int) -> None:
        self._accept_control_plain(port, vc, flit, now)
        self._on_control_arrival(flit, self.node, now)

    def _serve_control_input(self, port: int, now: int) -> None:
        queues = self.ctrl_queues[port]
        if self._two_vcs:
            if queues[0]:
                vcs = self.rng.shuffled(self._vc_both) if queues[1] else self._vc_zero
            elif queues[1]:
                vcs = self._vc_one
            else:
                return
        else:
            scratch = self._vcs_scratch
            scratch.clear()
            for vc in range(self._num_vcs):
                if queues[vc]:
                    scratch.append(vc)
            if not scratch:
                return
            # rng.shuffled returns a fresh list, so the scratch buffer is
            # safe to reuse next call either way.
            vcs = scratch if len(scratch) == 1 else self.rng.shuffled(scratch)
        # Forward pass: queue-front flits whose reserved link slot has come
        # move on, freeing their control buffers (the send body lives inline
        # here -- this is the single hottest loop in the simulator).
        route_port = self.route_table[port]
        for vc in vcs:
            queue = queues[vc]
            while queue:
                flit = queue[0]
                if flit.unscheduled:
                    break
                entry = route_port[vc]
                out_port = entry[0]
                if out_port == EJECT:
                    self._consume(port, vc, flit, now)
                    continue  # consumption frees the front; try the next flit
                forward_at = flit.forward_at
                if now >= forward_at:
                    if now > forward_at:
                        raise RuntimeError(
                            f"control flit {flit!r} forwarding at cycle {now} "
                            f"but its reserved link slot was {forward_at}: "
                            "FIFO slot discipline violated"
                        )
                    out_vc = entry[1]
                    queue.popleft()
                    self._ctrl_count[port] -= 1
                    self._ctrl_total -= 1
                    flit.vcid = out_vc
                    flit.reset_schedule_flags()
                    # The flit itself is the link payload; the receiver reads
                    # the downstream control VC from ``flit.vcid``.
                    self.ctrl_out_links[out_port].send(flit, now)
                    slots = self._ctrl_link_slots[out_port]
                    slots[now] -= 1
                    if not slots[now]:
                        del slots[now]
                    if flit.is_last:
                        self.ctrl_vc_owned[out_port][out_vc] = False
                        route_port[vc] = None
                    if flit.credited:
                        self._ctrl_credited[port][vc] -= 1
                        self._return_control_credit(port, vc, now)
                break  # at most one link forward per VC per cycle
        # Processing pass: route + schedule up to control_flits_per_cycle
        # flits.  Two rules keep the control/data dependency graph acyclic
        # (the cross-dependency hazard the paper's Section 5 points out):
        #
        # 1. Scheduling proceeds *past* a front flit that is merely waiting
        #    for its forward slot -- only forwarding is FIFO.  Otherwise a
        #    waiting control flit would trap the unscheduled data flits of
        #    the flits queued behind it in this node's buffer pool.
        # 2. A control flit commits its reservations only when its onward
        #    journey is secured: downstream control VC, control buffer
        #    credit, and a reserved slot on the control output link are all
        #    claimed in the same step (see _process_flit).  A committed
        #    control flit therefore can never stall behind its own data
        #    flits, so every dependency points forward along XY routes and
        #    terminates at an ejection port.
        budget = self._ctrl_budget
        for vc in vcs:
            if budget <= 0:
                break
            budget = self._schedule_queue(port, vc, now, budget)

    def _schedule_queue(self, port: int, vc: int, now: int, budget: int) -> int:
        """Schedule flits in queue order until the budget or a blocker."""
        queue = self.ctrl_queues[port][vc]
        route_row = self.route_table[port]
        index = 0
        while index < len(queue):
            if budget <= 0:
                return 0
            flit = queue[index]
            if not flit.unscheduled:
                index += 1
                continue
            entry = route_row[vc]
            if flit.is_head and entry is not None and entry[2] != flit.packet.packet_id:
                # The previous packet still owns this control VC's routing
                # entry; the new packet waits for it to finish forwarding.
                return budget
            budget -= 1
            outcome = self._process_flit(port, vc, flit, now)
            if outcome == "done":
                if route_row[vc][0] == EJECT and index == 0:
                    self._consume(port, vc, flit, now)
                    continue  # the queue shrank; re-examine the new front
                index += 1
            elif outcome == "split":
                # A split control flit was inserted before the residual; the
                # residual is still unscheduled and blocks FIFO forwarding,
                # so nothing behind it may reserve a link slot this cycle.
                return budget
            else:
                return budget  # later flits share the blocked output
        return budget

    def _process_flit(self, port: int, vc: int, flit: ControlFlit, now: int) -> str:
        """Route, secure forward resources, schedule, and commit -- atomically.

        Returns "done" when the flit is fully scheduled (with its forward
        slot reserved), "split" when a partially scheduled wide control flit
        forwarded its progress as a split flit (see below), and "stall" when
        nothing was committed and the flit retries next cycle.

        Deadlock-avoidance extension for wide control flits (d > 1, per-flit
        policy): the paper lets each successfully scheduled data flit move on
        immediately, but a control flit stalled mid-group would then sit
        behind its own advanced data flits -- they fill the next node's pool
        and can only be scheduled onward by this very control flit, a
        self-cycle the paper's Section 5 leaves open.  Here a stalled
        mid-group flit *splits*: a control flit carrying the scheduled
        arrival times forwards at once (control flits carry "up to N" data
        flits, so a partially filled one is protocol-legal) while the
        residual keeps retrying.  With d=1, the paper's configuration, the
        split path never triggers.
        """
        entry = self.route_table[port][vc]
        if entry is None:
            if not flit.is_head:
                raise RuntimeError(
                    f"control body flit {flit!r} with no routing-table entry at "
                    f"node {self.node}: VCID discipline violated"
                )
            out_port = self.routing.output_port(self.node, flit.destination)
            entry = [out_port, -1, flit.packet.packet_id]
            self.route_table[port][vc] = entry
        out_port = entry[0]
        if out_port == EJECT:
            if not self._schedule_data_flits(port, flit, out_port, now):
                self.schedule_stalls += 1
                if self.on_reservation_deny is not None:
                    self.on_reservation_deny(flit, out_port, now)
                return "stall"
            return "done"
        # Secure the onward journey before committing any reservation.
        out_vc = entry[1]
        if out_vc == -1:
            owned = self.ctrl_vc_owned[out_port]
            out_credits = self.ctrl_credits[out_port]
            candidates = self._cand_scratch
            candidates.clear()
            for v in range(self._num_vcs):
                if not owned[v] and out_credits[v] > 0:
                    candidates.append(v)
            if not candidates:
                self.forward_stalls += 1
                return "stall"
            out_vc = candidates[0] if len(candidates) == 1 else self.rng.choice(candidates)
        elif self.ctrl_credits[out_port][out_vc] <= 0:
            self.forward_stalls += 1
            return "stall"
        if not self._schedule_data_flits(port, flit, out_port, now):
            self.schedule_stalls += 1
            if self.on_reservation_deny is not None:
                self.on_reservation_deny(flit, out_port, now)
            if self._per_flit and any(flit.scheduled):
                return self._split_and_forward(port, vc, flit, entry, out_vc, now)
            return "stall"
        # Commit the forward resources claimed above.
        if entry[1] == -1:
            entry[1] = out_vc
            self.ctrl_vc_owned[out_port][out_vc] = True
        self.ctrl_credits[out_port][out_vc] -= 1
        flit.forward_at = self._reserve_link_slot(port, vc, out_port, now)
        return "done"

    def _split_and_forward(
        self,
        port: int,
        vc: int,
        flit: ControlFlit,
        entry: list[int],
        out_vc: int,
        now: int,
    ) -> str:
        """Forward a stalled wide control flit's progress as a split flit."""
        out_port = entry[0]
        split = flit.split_scheduled()
        if entry[1] == -1:
            entry[1] = out_vc
            self.ctrl_vc_owned[out_port][out_vc] = True
        self.ctrl_credits[out_port][out_vc] -= 1
        split.forward_at = self._reserve_link_slot(port, vc, out_port, now)
        split.credited = False  # staging slot; the residual holds the credit
        queue = self.ctrl_queues[port][vc]
        queue.insert(queue.index(flit), split)
        self._ctrl_count[port] += 1
        self._ctrl_total += 1
        self.splits_performed += 1
        return "split"

    def _reserve_link_slot(self, port: int, vc: int, out_port: int, now: int) -> int:
        """Claim the earliest control-link slot this flit may forward in.

        Slots are strictly increasing per control VC so forwarding stays
        FIFO and every reserved slot is honoured exactly.
        """
        slots = self._ctrl_link_slots[out_port]
        width = self.ctrl_out_links[out_port].width
        cycle = max(now + 1, self._last_ctrl_slot[port][vc] + 1)
        while slots.get(cycle, 0) >= width:
            cycle += 1
        slots[cycle] = slots.get(cycle, 0) + 1
        self._last_ctrl_slot[port][vc] = cycle
        return cycle

    def _schedule_per_flit(
        self, port: int, flit: ControlFlit, out_port: int, now: int
    ) -> bool:
        # The fused reserve_earliest commits the earliest slot that clears
        # both the output table and this input's read-port constraint --
        # exactly the retry loop _find_departure runs, without re-scans.
        # The commit body (_commit_reservation_plain) is inlined here; with
        # any grant/credit hook attached the dispatch slot points at
        # _schedule_per_flit_observed instead, which routes each commit
        # through the observed variant.
        arrival_times = flit.arrival_times
        sched = self.input_sched[port]
        table = self.out_tables[out_port]
        if len(arrival_times) == 1:
            # d = 1 (the paper's configuration): exactly one data flit, and
            # it is unscheduled (callers only process flits with unscheduled
            # work), so the general loop collapses to a straight line.
            arrival = arrival_times[0]
            earliest = arrival if arrival > now else now + 1
            departure = table.reserve_earliest(
                now, earliest, sched.port_uses, self._read_limit
            )
            if departure is None:
                return False
            sched.on_reservation(now, arrival, departure, out_port)
            self._dep_flags[self._dep_wake] = 1
            credit_from = departure + self._margin
            if port == INJECT:
                self.ni_advance_credit(now, credit_from)
            else:
                self.adv_credit_out[port].send(credit_from, now)
            flit.scheduled[0] = True
            flit.unscheduled -= 1
            arrival_times[0] = (
                departure if out_port == EJECT else departure + self._data_delay
            )
            return True
        port_uses = sched.port_uses
        limit = self._read_limit
        scheduled = flit.scheduled
        margin = self._margin
        delay = 0 if out_port == EJECT else self._data_delay
        adv_out = None if port == INJECT else self.adv_credit_out[port]
        for i in range(len(arrival_times)):
            if scheduled[i]:
                continue
            arrival = arrival_times[i]
            earliest = arrival if arrival > now else now + 1
            departure = table.reserve_earliest(now, earliest, port_uses, limit)
            if departure is None:
                return False
            sched.on_reservation(now, arrival, departure, out_port)
            self._dep_flags[self._dep_wake] = 1
            # The buffer frees at the departure; plesiochronous links hold
            # it a margin longer in case the transmit clock slips (Sec. 5).
            credit_from = departure + margin
            if adv_out is None:
                self.ni_advance_credit(now, credit_from)
            else:
                adv_out.send(credit_from, now)
            scheduled[i] = True
            flit.unscheduled -= 1
            arrival_times[i] = departure + delay
        return True

    def _schedule_per_flit_observed(
        self, port: int, flit: ControlFlit, out_port: int, now: int
    ) -> bool:
        # Lockstep twin of _schedule_per_flit that commits through the
        # _commit_reservation dispatch slot so the hooks fire.
        table = self.out_tables[out_port]
        port_uses = self.input_sched[port].port_uses
        limit = self._read_limit
        arrival_times = flit.arrival_times
        scheduled = flit.scheduled
        for i in range(len(flit.data_flits)):
            if scheduled[i]:
                continue
            arrival = arrival_times[i]
            earliest = arrival if arrival > now else now + 1
            departure = table.reserve_earliest(now, earliest, port_uses, limit)
            if departure is None:
                return False
            self._commit_reservation(port, flit, i, departure, out_port, now)
        return True

    def _find_departure(
        self, port: int, table: OutputReservationTable, now: int, earliest: int
    ) -> int | None:
        """Earliest departure satisfying the output table *and* this
        input's buffer read ports (paper footnote 7: one "Buffer Out" row
        unless the input buffer is multi-ported)."""
        scheduler = self.input_sched[port]
        limit = self._read_limit
        while True:
            departure = table.find_departure(now, earliest)
            if departure is None or scheduler.departures_at(departure) < limit:
                return departure
            earliest = departure + 1

    def _schedule_all_or_nothing(
        self, port: int, flit: ControlFlit, out_port: int, now: int
    ) -> bool:
        table = self.out_tables[out_port]
        tentative: list[tuple[int, int]] = []
        for i in range(len(flit.data_flits)):
            arrival = flit.arrival_times[i]
            departure = self._find_departure(port, table, now, max(arrival, now + 1))
            if departure is None:
                for _, earlier in tentative:
                    table.release(earlier)
                return False
            table.reserve(now, departure)
            tentative.append((i, departure))
        for i, departure in tentative:
            self._commit_reservation(port, flit, i, departure, out_port, now)
        return True

    def _commit_reservation_plain(
        self, port: int, flit: ControlFlit, i: int, departure: int, out_port: int, now: int
    ) -> None:
        arrival = flit.arrival_times[i]
        self.input_sched[port].on_reservation(now, arrival, departure, out_port)
        self._dep_flags[self._dep_wake] = 1
        # The buffer frees at the departure; plesiochronous links hold it a
        # margin longer in case the transmit clock slips (Section 5).
        credit_from = departure + self._margin
        if port == INJECT:
            self.ni_advance_credit(now, credit_from)
        else:
            self.adv_credit_out[port].send(credit_from, now)
        flit.scheduled[i] = True
        flit.unscheduled -= 1
        if out_port == EJECT:
            flit.arrival_times[i] = departure
        else:
            flit.arrival_times[i] = departure + self._data_delay

    def _commit_reservation_observed(
        self, port: int, flit: ControlFlit, i: int, departure: int, out_port: int, now: int
    ) -> None:
        # Lockstep twin of _commit_reservation_plain; the hooks fire at the
        # exact points they always did (before the schedule-flag/arrival-time
        # rewrite, which observers may read through the flit).
        arrival = flit.arrival_times[i]
        self.input_sched[port].on_reservation(now, arrival, departure, out_port)
        self._dep_flags[self._dep_wake] = 1
        credit_from = departure + self._margin
        if port == INJECT:
            self.ni_advance_credit(now, credit_from)
        else:
            self.adv_credit_out[port].send(credit_from, now)
        if self._on_reservation_grant is not None:
            self._on_reservation_grant(flit, i, out_port, departure, now)
        if self._on_credit_return is not None:
            self._on_credit_return("advance", port, credit_from, now)
        flit.scheduled[i] = True
        flit.unscheduled -= 1
        if out_port == EJECT:
            flit.arrival_times[i] = departure
        else:
            flit.arrival_times[i] = departure + self._data_delay

    def _consume(self, port: int, vc: int, flit: ControlFlit, now: int) -> None:
        """Deliver a control flit to the local reassembly machinery."""
        self.ctrl_queues[port][vc].popleft()
        self._ctrl_count[port] -= 1
        self._ctrl_total -= 1
        if flit.is_last:
            self.route_table[port][vc] = None
        if flit.credited:
            self._ctrl_credited[port][vc] -= 1
            self._return_control_credit(port, vc, now)
        self.consume_control(flit, now)

    def _return_credit_plain(self, port: int, vc: int, now: int) -> None:
        if port == INJECT:
            self.ni_control_credit(vc)
        else:
            self.ctrl_credit_out[port].send(vc, now)

    def _return_credit_observed(self, port: int, vc: int, now: int) -> None:
        self._return_credit_plain(port, vc, now)
        self._on_credit_return("control", port, vc, now)

    # -- data plane ---------------------------------------------------------------

    def data_departures(self, now: int) -> bool:
        """Drive scheduled buffer reads onto output links (or eject).

        Returns whether departures remain scheduled for future cycles.
        """
        active = False
        schedulers = self.input_sched
        eject = self.eject_data
        data_out = self.data_out_links
        for port in range(NUM_PORTS):
            scheduler = schedulers[port]
            # Every scheduled departure has a port_uses entry until the
            # cycle it departs, so an empty dict proves take_departures
            # would be a no-op for this input -- and so would any cycle
            # before the earliest outstanding departure (both pops keyed
            # by cycles that are all still in the future).
            port_uses = scheduler.port_uses
            if port_uses:
                if now >= scheduler.next_departure:
                    departures = scheduler.take_departures(now)
                    if departures:
                        for flit, out_port in departures:
                            if out_port == EJECT:
                                eject(flit, now)
                            else:
                                data_out[out_port].send(flit, now)
                    if port_uses:
                        active = True
                else:
                    active = True
        return active

    def data_arrivals(self, now: int) -> bool:
        """Write arriving flits to their allocated buffers or bypass them.

        Returns whether data flits are still in flight toward this router.
        """
        active = False
        for port, link in self._data_in_scan:
            if link.pending:
                if now >= link.next_arrival:
                    for flit in link.receive(now):
                        self._accept_data(port, flit, now)
                    if link.pending:
                        active = True
                else:
                    active = True
        return active

    def inject_data(self, flit: DataFlit, now: int) -> None:
        """The NI delivers a data flit to the local input at its reserved cycle."""
        self._accept_data(INJECT, flit, now)

    def _accept_data_plain(self, port: int, flit: DataFlit, now: int) -> None:
        bypass_port = self.input_sched[port].on_arrival(now, flit)
        if bypass_port is not None:
            if bypass_port == EJECT:
                self.eject_data(flit, now)
            else:
                self.data_out_links[bypass_port].send(flit, now)

    def _accept_data_observed(self, port: int, flit: DataFlit, now: int) -> None:
        self._on_data_arrival(flit, self.node, now)
        self._accept_data_plain(port, flit, now)

    # -- introspection ---------------------------------------------------------------

    def buffered_flits(self, port: int) -> int:
        """Occupied data buffers at one input (Section 4.2 occupancy study)."""
        return self.input_sched[port].occupancy

    def buffered_total(self) -> int:
        """Occupied data buffers summed over every input of this router."""
        total = 0
        for scheduler in self.input_sched:
            total += scheduler.occupancy
        return total

    def reservation_busy(self, port: int) -> int:
        """Reserved slots in one output port's reservation table (0 if unwired)."""
        table = self.out_tables[port]
        return table.busy_slots() if table is not None else 0

    def reservation_busy_total(self) -> int:
        """Reserved slots summed over every output reservation table."""
        total = 0
        for table in self.out_tables:
            if table is not None:
                total += table.busy_slots()
        return total
