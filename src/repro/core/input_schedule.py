"""The input reservation table and scheduler (paper Figure 4c).

One per input channel.  It orchestrates every data flit movement through the
router at its pre-arranged times:

* ``expected``   -- reservations for flits that have not arrived yet, keyed
  by arrival time (the "Flit Arriving?" / "Departure Time" / "Output
  Channel" rows of Figure 4c);
* ``departures`` -- which buffer drives which output at each cycle (the
  "Buffer Out" / "Output Channel" rows);
* ``schedule list`` -- flits that arrived before their control flit finished
  scheduling here (possible when data flits catch up with control flits, or
  when one control flit leads several data flits), held in the pool and
  linked up when the reservation feedback arrives.

There are no decisions here -- all the work was done ahead of time by the
control flits; each cycle the table simply directs writes, reads and the
bypass.  Credits to the upstream node are generated the moment a departure
is scheduled (advance credits), which is what collapses the buffer
turnaround time to zero.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.buffer_pool import BufferPool, IntervalBookkeeper
from repro.core.flits import DataFlit


class InputScheduleError(Exception):
    """Raised when arrivals and reservations disagree -- a protocol bug."""


# Shared sentinel for "no departures this cycle": the caller only iterates
# the returned sequence, so handing every idle call the same empty tuple
# avoids an allocation on the dominant path.  A tuple (not a list) so no
# caller can mutate it and alias state across every InputScheduler in the
# mesh -- the isolation prover treats a returned module-level list as an
# escaping global.
_NO_DEPARTURES: tuple[tuple[DataFlit, int], ...] = ()

#: ``next_departure`` when nothing is scheduled -- later than any real cycle.
_NEVER = 1 << 60


class InputScheduler:
    """Directs data flit movement through one input port."""

    __slots__ = (
        "pool",
        "expected",
        "departures",
        "schedule_list",
        "port_uses",
        "next_departure",
        "bookkeeper",
        "on_arrival",
        "take_departures",
        "_on_buffer_event",
        "flits_bypassed",
        "flits_buffered",
        "early_arrivals",
    )

    def __init__(self, pool_size: int, track_transfers: bool = False) -> None:
        self.pool = BufferPool(pool_size)
        self.expected: dict[int, tuple[int, int]] = {}  # t_a -> (t_d, out_port)
        self.departures: dict[int, list[tuple[int, int]]] = {}  # t_d -> [(buffer, out)]
        self.schedule_list: dict[int, int] = {}  # t_a -> buffer, for early flits
        # Departures scheduled per cycle from this input, bypasses included:
        # the output schedulers consult this to respect the number of buffer
        # read ports (paper footnote 7).
        self.port_uses: dict[int, int] = {}
        # Earliest outstanding departure cycle (min over port_uses keys, which
        # cover every departures key): lets the router skip take_departures
        # entirely on cycles where both pops would be no-ops.
        self.next_departure = _NEVER
        self.bookkeeper = IntervalBookkeeper(pool_size) if track_transfers else None
        # Observability hook: ("alloc"|"free", cycle, occupied-after).  Pure
        # observer -- the scheduler never consults it.  The public name is a
        # property; setting it swaps the on_arrival/take_departures dispatch
        # slots between plain and observed variants, so a detached scheduler
        # pays no per-event hook branches.
        self._on_buffer_event: Optional[Callable[[str, int, int], None]] = None
        self.on_arrival = self._on_arrival_plain
        self.take_departures = self._take_departures_plain
        # Diagnostics.
        self.flits_bypassed = 0
        self.flits_buffered = 0
        self.early_arrivals = 0

    @property
    def on_buffer_event(self) -> Optional[Callable[[str, int, int], None]]:
        return self._on_buffer_event

    @on_buffer_event.setter
    def on_buffer_event(self, hook: Optional[Callable[[str, int, int], None]]) -> None:
        self._on_buffer_event = hook
        if hook is None:
            self.on_arrival = self._on_arrival_plain
            self.take_departures = self._take_departures_plain
        else:
            self.on_arrival = self._on_arrival_observed
            self.take_departures = self._take_departures_observed

    def on_reservation(self, now: int, arrival: int, departure: int, out_port: int) -> None:
        """Record the output scheduler's feedback for one data flit.

        ``arrival``/``departure`` are the reservation signals t_a and t_d of
        the paper; the caller is responsible for sending the advance credit
        (departure time) to the upstream node.
        """
        if departure <= now:
            raise InputScheduleError(
                f"departure {departure} not in the future (now {now})"
            )
        if self.bookkeeper is not None:
            self.bookkeeper.book(arrival, departure)
        self.port_uses[departure] = self.port_uses.get(departure, 0) + 1
        if departure < self.next_departure:
            self.next_departure = departure
        if arrival >= now:
            if arrival in self.expected:
                raise InputScheduleError(
                    f"two reservations for the same arrival cycle {arrival}"
                )
            if departure < arrival:
                raise InputScheduleError(
                    f"departure {departure} before arrival {arrival}"
                )
            self.expected[arrival] = (departure, out_port)
            return
        # The flit arrived before its control flit finished scheduling here:
        # it is waiting in the pool, tracked by the schedule list.
        try:
            buffer_index = self.schedule_list.pop(arrival)
        except KeyError:
            raise InputScheduleError(
                f"reservation for arrival {arrival} but no such flit in the "
                f"schedule list (now {now})"
            ) from None
        self.departures.setdefault(departure, []).append((buffer_index, out_port))

    def departures_at(self, cycle: int) -> int:
        """Departures already scheduled from this input at ``cycle``."""
        return self.port_uses.get(cycle, 0)

    def _take_departures_plain(self, now: int) -> Sequence[tuple[DataFlit, int]]:
        """Pop this cycle's scheduled (flit, output port) departures.

        Buffers are freed here, *before* arrivals are processed, so a buffer
        vacated at cycle t is usable by a flit arriving at cycle t -- the
        zero-turnaround reuse the reservation accounting promises.
        """
        port_uses = self.port_uses
        if port_uses:
            port_uses.pop(now, None)
            self.next_departure = min(port_uses) if port_uses else _NEVER
        departures = self.departures
        entries = departures.pop(now, None) if departures else None
        if not entries:
            return _NO_DEPARTURES
        release = self.pool.release
        return [(release(buffer_index), out_port) for buffer_index, out_port in entries]

    def _take_departures_observed(self, now: int) -> Sequence[tuple[DataFlit, int]]:
        # Lockstep twin of _take_departures_plain plus the buffer events.
        released = self._take_departures_plain(now)
        if released:
            hook = self._on_buffer_event
            occupied = self.pool.occupied
            for _ in released:
                hook("free", now, occupied)
        return released

    def _on_arrival_plain(self, now: int, flit: DataFlit) -> int | None:
        """Handle a data flit arriving this cycle.

        Returns the output port when the flit *bypasses* -- departs this
        very cycle without touching a buffer -- and None when it was
        buffered (or held in the schedule list awaiting its reservation).
        """
        reservation = self.expected.pop(now, None)
        if reservation is None:
            # Control flit has not finished scheduling here yet.
            buffer_index = self.pool.allocate(flit)
            self.schedule_list[now] = buffer_index
            self.early_arrivals += 1
            self.flits_buffered += 1
            return None
        departure, out_port = reservation
        if departure == now:
            self.flits_bypassed += 1
            return out_port
        buffer_index = self.pool.allocate(flit)
        bucket = self.departures.get(departure)
        if bucket is None:
            self.departures[departure] = bucket = []
        bucket.append((buffer_index, out_port))
        self.flits_buffered += 1
        return None

    def _on_arrival_observed(self, now: int, flit: DataFlit) -> int | None:
        # Lockstep twin of _on_arrival_plain; the alloc event fires exactly
        # when a buffer was taken (every path except the bypass).
        occupied_before = self.pool.occupied
        result = self._on_arrival_plain(now, flit)
        if self.pool.occupied != occupied_before:
            self._on_buffer_event("alloc", now, self.pool.occupied)
        return result

    @property
    def occupancy(self) -> int:
        """Occupied buffers right now (Section 4.2's tracked quantity)."""
        return self.pool.occupied
