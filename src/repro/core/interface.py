"""The flit-reservation node interface (NI).

The source side mirrors a router's control plane in miniature: control flits
wait in a FIFO; each cycle up to ``control_flits_per_cycle`` of them schedule
their data flits' *injection* on the NI's own output reservation table
(tracking the injection channel's busy cycles and the router's local input
buffer pool) and are then injected into the router's local control input --
"control flits are injected only after they have scheduled the injection
times of their data flits" (paper Section 3).  Data flits wait at the NI and
enter the router at exactly their reserved cycle.

In the leading-control regime data flits are additionally deferred
``injection_lead`` cycles behind their control flit, which is the N-cycle
lead of Figures 8 and 9.

The destination side is trivial by design: data flits are ejected into
infinite reassembly buffers at times the control flits scheduled, and the
network model accounts deliveries.
"""

from __future__ import annotations

from collections import deque

from repro.core.config import FRConfig
from repro.core.flits import ControlFlit, DataFlit, FlitPool, packet_to_control_flits
from repro.core.reservation import OutputReservationTable
from repro.core.router import FRRouter
from repro.sim.rng import DeterministicRng
from repro.topology.mesh import INJECT
from repro.traffic.packet import Packet


class FRNodeInterface:
    """Injects packets into one flit-reservation router."""

    __slots__ = (
        "router",
        "config",
        "rng",
        "pool",
        "control_queue",
        "injection_table",
        "_data_ready",
        "_ctrl_credits",
        "_ctrl_vc_owned",
        "_inject_vc",
        "_num_vcs",
        "_ctrl_budget",
        "_per_flit",
        "_lead",
        "_data_flags",
        "_data_wake",
        "packets_pending",
        "data_flits_pending",
    )

    def __init__(
        self,
        router: FRRouter,
        config: FRConfig,
        rng: DeterministicRng,
        pool: FlitPool | None = None,
    ) -> None:
        self.router = router
        self.config = config
        self.rng = rng
        self.pool = pool
        self.control_queue: deque[ControlFlit] = deque()
        self.injection_table = OutputReservationTable(
            config.scheduling_horizon,
            downstream_buffers=config.data_buffers_per_input,
            propagation_delay=0,
        )
        self._data_ready: dict[int, list[DataFlit]] = {}
        self._ctrl_credits = [config.control_buffers_per_vc] * config.control_vcs
        self._ctrl_vc_owned = [False] * config.control_vcs
        self._inject_vc = -1  # control VC of the packet currently injecting
        # Hot-path copies of config scalars (see FRRouter.__init__).
        self._num_vcs = config.control_vcs
        self._ctrl_budget = config.control_flits_per_cycle
        self._per_flit = config.scheduling_policy == "per_flit"
        self._lead = max(config.injection_lead, 1)
        # Wake slot for the data phase, rebound to the network's worklist
        # array by bind_activity; the control phase needs no wake because its
        # activity predicate is simply a non-empty control queue (set at
        # enqueue time by the network).
        self._data_flags = bytearray(1)
        self._data_wake = 0
        self.packets_pending = 0
        self.data_flits_pending = 0
        router.ni_advance_credit = self._advance_credit
        router.ni_control_credit = self._control_credit

    def bind_activity(self, data_flags: bytearray, index: int) -> None:
        """Point this NI's data-phase wake slot at the network's worklist."""
        self._data_flags = data_flags
        self._data_wake = index

    def enqueue(self, packet: Packet) -> None:
        """Expand a new packet into control + data flits and queue them."""
        control_flits, data_flits = packet_to_control_flits(
            packet, self.config.data_flits_per_control, self.pool
        )
        self.control_queue.extend(control_flits)
        self.packets_pending += 1
        self.data_flits_pending += len(data_flits)

    @property
    def queue_length(self) -> int:
        """Packets not yet fully handed to the network (warm-up signal)."""
        return self.packets_pending

    # -- control-side cycle -------------------------------------------------------

    def control_phase(self, now: int) -> bool:
        """Schedule data injections and inject control flits, FIFO order.

        Returns whether control flits remain queued (the activity predicate:
        a stalled NI stays active until its queue drains, so credit returns
        never need to wake it).
        """
        budget = self._ctrl_budget
        queue = self.control_queue
        while budget > 0 and queue:
            flit = queue[0]
            if flit.unscheduled:
                budget -= 1
                if not self._schedule_injections(flit, now):
                    self._maybe_inject_split(flit, now)
                    return True  # head of line stalls: retry next cycle
            if not self._try_inject_control(flit, now):
                return True
        # Injection of later flits continues next cycle; FIFO order preserved.
        return bool(queue)

    def _maybe_inject_split(self, flit: ControlFlit, now: int) -> None:
        """Forward a stalled wide control flit's progress as a split flit.

        Mirror of the router-side deadlock-avoidance extension: a control
        flit that scheduled some of its data flits' injections but cannot
        place the rest (the router's local pool is booked solid) injects a
        split control flit carrying the scheduled arrival times, so those
        data flits can be scheduled onward at the router and free the pool.
        Only reachable with d > 1 under the per-flit policy.
        """
        if not self._per_flit or not any(flit.scheduled):
            return
        split = flit.split_scheduled()
        self.control_queue.appendleft(split)
        if not self._try_inject_control(split, now):
            # Keep the split queued at the front; it injects when control
            # credits return, still ahead of the residual.
            return

    def _schedule_injections(self, flit: ControlFlit, now: int) -> bool:
        earliest = now + self._lead
        if not self._per_flit:
            return self._schedule_all_or_nothing(flit, now, earliest)
        table = self.injection_table
        scheduled = flit.scheduled
        for i in range(len(flit.data_flits)):
            if scheduled[i]:
                continue
            departure = table.reserve_earliest(now, earliest)
            if departure is None:
                return False
            self._commit_injection(flit, i, departure)
        return True

    def _schedule_all_or_nothing(self, flit: ControlFlit, now: int, earliest: int) -> bool:
        tentative: list[tuple[int, int]] = []
        for i in range(len(flit.data_flits)):
            departure = self.injection_table.find_departure(now, earliest)
            if departure is None:
                for _, earlier in tentative:
                    self.injection_table.release(earlier)
                return False
            self.injection_table.reserve(now, departure)
            tentative.append((i, departure))
        for i, departure in tentative:
            self._commit_injection(flit, i, departure)
        return True

    def _commit_injection(self, flit: ControlFlit, i: int, departure: int) -> None:
        # The injection channel is on-node: the flit reaches the router's
        # local input the cycle it leaves the NI (propagation 0), so the
        # arrival time the control flit carries is the departure itself.
        flit.arrival_times[i] = departure
        flit.scheduled[i] = True
        flit.unscheduled -= 1
        bucket = self._data_ready.get(departure)
        if bucket is None:
            self._data_ready[departure] = bucket = []
        bucket.append(flit.data_flits[i])
        self._data_flags[self._data_wake] = 1

    def _try_inject_control(self, flit: ControlFlit, now: int) -> bool:
        if flit.is_head:
            if self._inject_vc == -1:
                free = [
                    vc
                    for vc in range(self._num_vcs)
                    if not self._ctrl_vc_owned[vc]
                ]
                if not free:
                    return False
                self._inject_vc = free[0] if len(free) == 1 else self.rng.choice(free)
                self._ctrl_vc_owned[self._inject_vc] = True
        vc = self._inject_vc
        if vc == -1:
            raise RuntimeError("control body flit injecting with no VC allocated")
        if self._ctrl_credits[vc] <= 0:
            return False
        self.control_queue.popleft()
        flit.vcid = vc
        flit.reset_schedule_flags()
        self._ctrl_credits[vc] -= 1
        self.router.accept_control_flit(INJECT, vc, flit, -1)
        if flit.is_last:
            self._ctrl_vc_owned[vc] = False
            self._inject_vc = -1
            self.packets_pending -= 1
        return True

    # -- data-side cycle ------------------------------------------------------------

    def data_phase(self, now: int) -> bool:
        """Deliver data flits whose reserved injection cycle is now.

        Returns whether reserved injections remain for future cycles.
        """
        ready = self._data_ready
        if not ready:
            return False
        flits = ready.pop(now, None)
        if flits is not None:
            router = self.router
            for flit in flits:
                flit.injection_cycle = now
                self.data_flits_pending -= 1
                router.inject_data(flit, now)
        return bool(ready)

    # -- credits from the router (on-node, no link delay) ------------------------------

    def _advance_credit(self, now: int, from_cycle: int) -> None:
        self.injection_table.apply_credit(now, from_cycle)

    def _control_credit(self, vc: int) -> None:
        self._ctrl_credits[vc] += 1
