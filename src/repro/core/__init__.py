"""Flit-reservation flow control -- the paper's contribution.

Control flits traverse a separate control network ahead of the data flits,
reserving, cycle by cycle, the buffers and channel bandwidth each data flit
will use.  Data flits carry no identity at all: they are payload-only and are
stored, switched and forwarded purely according to the pre-arranged schedule
in each router's input reservation table, identified by their arrival time.

Module map (mirrors the paper's Figure 3 block diagram):

* :mod:`~repro.core.config` -- FRConfig and the FR6/FR13 presets of Table 1;
* :mod:`~repro.core.flits` -- control flits and anonymous data flits;
* :mod:`~repro.core.reservation` -- the output reservation table (channel
  busy bits + next-hop free-buffer counts over the scheduling horizon);
* :mod:`~repro.core.buffer_pool` -- the per-input data buffer pool with
  allocate-at-arrival (default) and allocate-at-reservation policies;
* :mod:`~repro.core.input_schedule` -- the input reservation table, schedule
  list and credit generation;
* :mod:`~repro.core.router` -- the flit-reservation router;
* :mod:`~repro.core.interface` -- the injecting/reassembling node interface;
* :mod:`~repro.core.network` -- the full mesh and its cycle loop.
"""

from repro.core.config import FR6, FR13, FRConfig
from repro.core.flits import ControlFlit, DataFlit
from repro.core.network import FRNetwork
from repro.core.reservation import OutputReservationTable
from repro.core.router import FRRouter

__all__ = [
    "FR6",
    "FR13",
    "FRConfig",
    "ControlFlit",
    "DataFlit",
    "FRNetwork",
    "FRRouter",
    "OutputReservationTable",
]
