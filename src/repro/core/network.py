"""The complete flit-reservation network.

Cycle phase order:

1. packet creation (sources fire; new packets enter the NI control queues);
2. router control planes -- credit delivery, control flit arrival,
   forwarding, and processing (reservations are made here);
3. NI control planes -- injection scheduling and control flit injection
   (after the routers, so an injected control flit is processed by the
   router the *next* cycle: the 1-cycle on-node control hop);
4. data departures -- every input reservation table drives its scheduled
   buffer reads onto the output links (buffers free here);
5. NI data injections and link data arrivals -- writes and bypasses.

As in the VC model, every inter-router link has delay >= 1, so phases of
different routers never interact within a cycle and no event queue is
needed.
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import FRConfig
from repro.core.flits import ControlFlit, DataFlit, FlitPool
from repro.core.interface import FRNodeInterface
from repro.core.router import FRRouter
from repro.sim.link import Link
from repro.sim.netbase import NetworkModel
from repro.stats.collectors import ControlLeadTracker, LatencyStats, OccupancyTracker
from repro.topology.mesh import WEST, Mesh2D, opposite_port


class FRNetwork(NetworkModel):
    """An 8x8 (by default) mesh under flit-reservation flow control."""

    def __init__(
        self,
        config: FRConfig,
        mesh: Mesh2D | None = None,
        packet_length: int = 5,
        injection_rate: float = 0.1,
        seed: int = 1,
        traffic: str = "uniform",
        injection_process: str = "periodic",
        track_occupancy_node: int | None = None,
        track_control_lead: bool = False,
        streaming: bool = False,
    ) -> None:
        mesh = mesh or Mesh2D(8, 8)
        super().__init__(
            mesh,
            packet_length=packet_length,
            injection_rate=injection_rate,
            seed=seed,
            traffic=traffic,
            injection_process=injection_process,
            streaming=streaming,
        )
        self.config = config
        self.flit_pool = FlitPool()
        self.routers = [
            FRRouter(
                node,
                config,
                self.routing,
                self.rng.spawn(20_000 + node),
                self._make_data_eject(node),
                self._on_control_consumed,
            )
            for node in mesh.nodes()
        ]
        self.interfaces = [
            FRNodeInterface(
                self.routers[node], config, self.rng.spawn(30_000 + node), self.flit_pool
            )
            for node in mesh.nodes()
        ]
        # Active-set worklists, one flag per node per phase.  A component is
        # stepped only while its flag is up; it re-raises its own flag when
        # it gains work (see docs/performance.md), links raise the consumer's
        # flag on send (set_wake in _wire_links), and the step loops lower a
        # flag when the phase reports itself drained.  Everything starts
        # active so the first cycle is a full dense sweep.
        n = len(self.routers)
        self._ctrl_active = bytearray(b"\x01" * n)
        self._ni_ctrl_active = bytearray(b"\x01" * n)
        self._dep_active = bytearray(b"\x01" * n)
        self._ni_data_active = bytearray(b"\x01" * n)
        self._arr_active = bytearray(b"\x01" * n)
        for node in mesh.nodes():
            self.routers[node].bind_activity(self._ctrl_active, self._dep_active, node)
            self.interfaces[node].bind_activity(self._ni_data_active, node)
        self._wire_links()
        # Per-data-flit network latency (injection to ejection), the quantity
        # behind the paper's "base data latency of 6 cycles" observation.
        self.data_flit_latency = LatencyStats(streaming=streaming)
        self.occupancy: OccupancyTracker | None = None
        self._occupancy_node = track_occupancy_node
        if track_occupancy_node is not None:
            self.occupancy = OccupancyTracker(config.data_buffers_per_input)
        self.control_lead: ControlLeadTracker | None = None
        if track_control_lead:
            self.control_lead = ControlLeadTracker()
            for router in self.routers:
                router.on_control_arrival = self._on_control_arrival
                router.on_data_arrival = self._on_data_arrival

    @property
    def flow_control_name(self) -> str:
        return self.config.name

    def _wire_links(self) -> None:
        cfg = self.config
        adv_credit_width = cfg.control_flits_per_cycle * cfg.data_flits_per_control
        ctrl_credit_width = cfg.control_vcs + cfg.control_flits_per_cycle
        for node in self.mesh.nodes():
            router = self.routers[node]
            for port in self.mesh.mesh_ports(node):
                neighbor = self.mesh.neighbor(node, port)
                data: Link[DataFlit] = Link(cfg.data_link_delay)
                ctrl: Link[ControlFlit] = Link(
                    cfg.control_link_delay, width=cfg.control_flits_per_cycle
                )
                adv_credit: Link[int] = Link(cfg.credit_link_delay, width=adv_credit_width)
                ctrl_credit: Link[int] = Link(cfg.credit_link_delay, width=ctrl_credit_width)
                router.connect_output(port, data, ctrl, adv_credit, ctrl_credit)
                self.routers[neighbor].connect_input(
                    opposite_port(port), data, ctrl, adv_credit, ctrl_credit
                )
                # Sends wake the consuming side: data flits wake the
                # neighbor's arrival phase, control flits its control phase,
                # and both credit streams wake this router's control phase
                # (credits travel the reverse direction).
                data.set_wake(self._arr_active, neighbor)
                ctrl.set_wake(self._ctrl_active, neighbor)
                adv_credit.set_wake(self._ctrl_active, node)
                ctrl_credit.set_wake(self._ctrl_active, node)

    # -- delivery hooks -------------------------------------------------------------

    def _make_data_eject(self, node: int) -> Callable[[DataFlit, int], None]:
        def eject(flit: DataFlit, cycle: int) -> None:
            if flit.packet.destination != node:
                raise RuntimeError(
                    f"misdelivery: {flit!r} ejected at node {node}, "
                    f"destination {flit.packet.destination}"
                )
            if flit.injection_cycle >= 0 and flit.packet.measured:
                self.data_flit_latency.record(cycle - flit.injection_cycle)
            self._eject_flit(flit.packet, cycle)
            # Single end of life for a data flit: delivered and accounted.
            self.flit_pool.release_data(flit)

        return eject

    def _on_control_consumed(self, flit: ControlFlit, cycle: int) -> None:
        # Reassembly scheduling is complete for this control flit; nothing
        # further to model (reassembly buffers are infinite).  Single end of
        # life for a control flit: recycle it.
        self.flit_pool.release_control(flit)

    def _on_control_arrival(self, flit: ControlFlit, node: int, cycle: int) -> None:
        if flit.is_head and cycle >= 0 and flit.packet.destination == node:
            self.control_lead.record_control_arrival(flit.packet.packet_id, cycle)

    def _on_data_arrival(self, flit: DataFlit, node: int, cycle: int) -> None:
        if flit.packet.destination == node:
            self.control_lead.record_first_data_arrival(flit.packet.packet_id, cycle)

    # -- structure queries ----------------------------------------------------------

    def source_queue_length(self, node: int) -> int:
        return self.interfaces[node].queue_length

    # -- the cycle ----------------------------------------------------------------

    def step(self, cycle: int) -> None:
        # Active-set sweep: each phase visits eval_order in full (so the
        # deterministic iteration order is untouched) but only *steps* nodes
        # whose flag is up, lowering the flag when the phase reports itself
        # drained.  Skipping an inactive node is digest-identical to stepping
        # it: a drained phase performs no state changes and draws no
        # randomness (every rng call is gated on non-empty work).
        for packet in self._create_packets(cycle):
            source = packet.source
            self.interfaces[source].enqueue(packet)
            self._ni_ctrl_active[source] = 1
        for node in self.eval_order:
            if self._ctrl_active[node] and not self.routers[node].control_phase(cycle):
                self._ctrl_active[node] = 0
        for node in self.eval_order:
            if self._ni_ctrl_active[node] and not self.interfaces[node].control_phase(cycle):
                self._ni_ctrl_active[node] = 0
        for node in self.eval_order:
            if self._dep_active[node] and not self.routers[node].data_departures(cycle):
                self._dep_active[node] = 0
        for node in self.eval_order:
            if self._ni_data_active[node] and not self.interfaces[node].data_phase(cycle):
                self._ni_data_active[node] = 0
        for node in self.eval_order:
            if self._arr_active[node] and not self.routers[node].data_arrivals(cycle):
                self._arr_active[node] = 0
        if self.occupancy is not None:
            self._sample_occupancy(cycle)

    def rearm_activity(self) -> None:
        """Mark every component active (next cycle is a full dense sweep).

        Worklist flags are a pure performance device -- raising them all is
        always safe and is how tests force dense stepping for equivalence
        checks.
        """
        n = len(self.routers)
        for flags in (
            self._ctrl_active,
            self._ni_ctrl_active,
            self._dep_active,
            self._ni_data_active,
            self._arr_active,
        ):
            flags[:] = b"\x01" * n

    def _sample_occupancy(self, cycle: int) -> None:
        router = self.routers[self._occupancy_node]
        self.occupancy.record(router.buffered_flits(WEST), cycle)

    def track_occupancy(self, node: int) -> OccupancyTracker:
        """Start tracking ``node``'s west input pool, mid-run safe.

        Sampling begins at the end of the next executed cycle; the
        cycle-stamped :meth:`OccupancyTracker.record` guarantees the attach
        boundary cycle is never counted twice.
        """
        if self.occupancy is None or self._occupancy_node != node:
            self.occupancy = OccupancyTracker(self.config.data_buffers_per_input)
            self._occupancy_node = node
        return self.occupancy

    # -- diagnostics ----------------------------------------------------------------

    def bypass_fraction(self) -> float:
        """Fraction of data flit movements that used the bypass path."""
        bypassed = 0
        buffered = 0
        for router in self.routers:
            for scheduler in router.input_sched:
                bypassed += scheduler.flits_bypassed
                buffered += scheduler.flits_buffered
        total = bypassed + buffered
        return bypassed / total if total else 0.0

    def buffer_transfer_count(self) -> int:
        """Transfers the allocate-at-reservation policy would have required."""
        total = 0
        for router in self.routers:
            for scheduler in router.input_sched:
                if scheduler.bookkeeper is not None:
                    total += scheduler.bookkeeper.transfers
        return total
