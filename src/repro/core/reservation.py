"""The output reservation table (paper Figure 4a/4b).

One table per output channel.  For every cycle within the scheduling horizon
it records whether the channel is reserved ("busy") and how many buffers are
free in the *downstream* input buffer pool at that cycle.  Reserving a
departure at ``t_d`` marks the channel busy during ``t_d`` and decrements the
downstream free-buffer count from the flit's arrival ``t_d + t_p`` through
the horizon; the downstream input scheduler's advance credit later restores
the count from the flit's own departure time onward, so the net accounting
charges a buffer for exactly its true occupancy interval -- the zero
turnaround that gives flit-reservation flow control its throughput edge.

The table is circular over ``horizon`` slots with *lazy* sliding: slots are
re-initialised only when the table is touched, so idle routers cost nothing.
A slot that expires is reborn ``horizon`` cycles later carrying the previous
end slot's free count (the steady-state value), exactly like the carry-over
of the paper's hardware table.  Two boundary cases are deliberately
conservative, never optimistic (a conservative count can only delay a
reservation; an optimistic one would overbook a downstream buffer):

* a decrement whose start lies beyond the window decrements the end slot,
  from which it propagates into newly exposed slots;
* a credit whose start lies beyond the window is parked in ``_pending_credits``
  and applied exactly when its cycle enters the window, and is ignored by
  availability checks until then.
"""

from __future__ import annotations


class ReservationError(Exception):
    """Raised on misuse of the reservation table (a router bug, not traffic)."""


class OutputReservationTable:
    """Channel busy bits and downstream free-buffer counts over a horizon."""

    __slots__ = (
        "horizon",
        "downstream_buffers",
        "propagation_delay",
        "infinite_buffers",
        "_busy",
        "_free",
        "_window_start",
        "_pending_credits",
        "reservations_made",
        "credits_applied",
    )

    def __init__(
        self,
        horizon: int,
        downstream_buffers: int,
        propagation_delay: int,
        infinite_buffers: bool = False,
    ) -> None:
        if horizon < 2:
            raise ValueError(f"scheduling horizon must be >= 2 cycles, got {horizon}")
        if downstream_buffers < 1 and not infinite_buffers:
            raise ValueError("downstream pool must have at least 1 buffer")
        self.horizon = horizon
        self.downstream_buffers = downstream_buffers
        self.propagation_delay = propagation_delay
        self.infinite_buffers = infinite_buffers
        self._busy = bytearray(horizon)
        self._free = [downstream_buffers] * horizon
        self._window_start = 0  # absolute cycle of the earliest valid slot
        self._pending_credits: dict[int, int] = {}
        # Diagnostics.
        self.reservations_made = 0
        self.credits_applied = 0

    # -- window management ----------------------------------------------------

    @property
    def window_end(self) -> int:
        """Absolute cycle of the last valid slot (inclusive)."""
        return self._window_start + self.horizon - 1

    def advance(self, now: int) -> None:
        """Slide the window so it covers [now, now + horizon - 1]."""
        if now <= self._window_start:
            return
        steps = now - self._window_start
        if steps >= self.horizon:
            # The whole window expired: every slot is reborn from steady state.
            self._rebuild_window(now)
            return
        end_value = self._free[self.window_end % self.horizon]
        for expired in range(self._window_start, now):
            new_cycle = expired + self.horizon
            end_value += self._pending_credits.pop(new_cycle, 0)
            slot = expired % self.horizon
            self._busy[slot] = 0
            self._free[slot] = end_value
        self._window_start = now

    def _rebuild_window(self, now: int) -> None:
        end_value = self._free[self.window_end % self.horizon]
        # Credits that start before the new window apply to all of it.
        matured = [cycle for cycle in self._pending_credits if cycle <= now]
        for cycle in matured:
            end_value += self._pending_credits.pop(cycle)
        self._window_start = now
        for slot in range(self.horizon):
            self._busy[slot] = 0
        running = end_value
        for cycle in range(now, now + self.horizon):
            running += self._pending_credits.pop(cycle, 0)
            self._free[cycle % self.horizon] = running

    # -- queries ---------------------------------------------------------------

    def busy_slots(self) -> int:
        """Reserved slots currently in the window (table pressure metric)."""
        return sum(self._busy)

    def is_busy(self, cycle: int) -> bool:
        """Whether the channel is reserved during an in-window cycle."""
        self._check_in_window(cycle)
        return bool(self._busy[cycle % self.horizon])

    def free_buffers_at(self, cycle: int) -> int:
        """Downstream free-buffer count at an in-window cycle."""
        self._check_in_window(cycle)
        if self.infinite_buffers:
            return 1 << 30
        return self._free[cycle % self.horizon]

    # -- the scheduling operation (paper Section 3) ----------------------------

    def find_departure(self, now: int, earliest: int) -> int | None:
        """Earliest reservable departure time ``t_d >= earliest``.

        A slot qualifies when the channel is not busy at ``t_d`` and at least
        one downstream buffer is free at every in-window cycle from the
        flit's arrival ``t_d + t_p`` onward (the paper's hold-to-horizon
        condition; the downstream node's own departure credit later trims
        the hold to the true occupancy).  Returns None when no slot inside
        the horizon qualifies -- the control flit must retry next cycle.
        """
        self.advance(now)
        start = max(earliest, now + 1)
        end = self.window_end
        if start > end:
            return None
        if self.infinite_buffers:
            for t in range(start, end + 1):
                if not self._busy[t % self.horizon]:
                    return t
            return None
        # Suffix minima of the free counts over [start + t_p, window_end];
        # positions beyond the window use the end slot's value, which is the
        # steady state every future slot inherits.
        suffix_min = self._suffix_minima(start)
        for t in range(start, end + 1):
            if self._busy[t % self.horizon]:
                continue
            arrival = t + self.propagation_delay
            minimum = suffix_min[arrival - start] if arrival <= end else suffix_min[-1]
            if minimum >= 1:
                return t
        return None

    def _suffix_minima(self, start: int) -> list[float]:
        """suffix_min[i] = min free count over cycles [start + i, window_end],
        with one trailing entry for "beyond the window" (the end value)."""
        end = self.window_end
        end_value = self._free[end % self.horizon]
        minima = [0.0] * (end - start + 2)
        minima[-1] = end_value
        running = end_value
        for t in range(end, start - 1, -1):
            value = self._free[t % self.horizon]
            if value < running:
                running = value
            minima[t - start] = running
        return minima

    def reserve(self, now: int, departure: int) -> None:
        """Commit a reservation: mark busy and charge the downstream buffer."""
        self.advance(now)
        self._check_in_window(departure)
        slot = departure % self.horizon
        if self._busy[slot]:
            raise ReservationError(
                f"double booking: channel already reserved at cycle {departure}"
            )
        self._busy[slot] = 1
        self.reservations_made += 1
        if self.infinite_buffers:
            return
        arrival = departure + self.propagation_delay
        start = min(arrival, self.window_end)  # beyond-window: charge the end slot
        for t in range(start, self.window_end + 1):
            self._free[t % self.horizon] -= 1
            if self._free[t % self.horizon] < 0:
                raise ReservationError(
                    f"free-buffer count went negative at cycle {t}: "
                    "availability check violated"
                )

    def release(self, departure: int) -> None:
        """Undo a reservation made this cycle (all-or-nothing rollback)."""
        self._check_in_window(departure)
        slot = departure % self.horizon
        if not self._busy[slot]:
            raise ReservationError(f"cannot release unreserved cycle {departure}")
        self._busy[slot] = 0
        self.reservations_made -= 1
        if self.infinite_buffers:
            return
        arrival = departure + self.propagation_delay
        start = min(arrival, self.window_end)
        for t in range(start, self.window_end + 1):
            self._free[t % self.horizon] += 1

    def apply_credit(self, now: int, from_cycle: int) -> None:
        """Advance credit: the downstream buffer frees from ``from_cycle`` on.

        Sent by the downstream input scheduler the moment it learns the
        flit's departure time -- typically well before the flit even arrives,
        which is what lets flit-reservation flow control recycle buffers with
        zero turnaround.
        """
        self.advance(now)
        if self.infinite_buffers:
            return
        self.credits_applied += 1
        start = max(from_cycle, self._window_start)
        if start > self.window_end:
            self._pending_credits[start] = self._pending_credits.get(start, 0) + 1
            return
        self._apply_credit_within(start, 1)

    def _apply_credit_within(self, start: int, amount: int) -> None:
        for t in range(start, self.window_end + 1):
            self._free[t % self.horizon] += amount
            if self._free[t % self.horizon] > self.downstream_buffers:
                raise ReservationError(
                    f"free-buffer count exceeded pool size at cycle {t}: "
                    "credit protocol violated"
                )

    def _check_in_window(self, cycle: int) -> None:
        if not self._window_start <= cycle <= self.window_end:
            raise ReservationError(
                f"cycle {cycle} outside reservation window "
                f"[{self._window_start}, {self.window_end}]"
            )
