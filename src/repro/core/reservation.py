"""The output reservation table (paper Figure 4a/4b).

One table per output channel.  For every cycle within the scheduling horizon
it records whether the channel is reserved ("busy") and how many buffers are
free in the *downstream* input buffer pool at that cycle.  Reserving a
departure at ``t_d`` marks the channel busy during ``t_d`` and decrements the
downstream free-buffer count from the flit's arrival ``t_d + t_p`` through
the horizon; the downstream input scheduler's advance credit later restores
the count from the flit's own departure time onward, so the net accounting
charges a buffer for exactly its true occupancy interval -- the zero
turnaround that gives flit-reservation flow control its throughput edge.

The table is circular over ``horizon`` slots with *lazy* sliding: slots are
re-initialised only when the table is touched, so idle routers cost nothing.
A slot that expires is reborn ``horizon`` cycles later carrying the previous
end slot's free count (the steady-state value), exactly like the carry-over
of the paper's hardware table.  Two boundary cases are deliberately
conservative, never optimistic (a conservative count can only delay a
reservation; an optimistic one would overbook a downstream buffer):

* a decrement whose start lies beyond the window decrements the end slot,
  from which it propagates into newly exposed slots;
* a credit whose start lies beyond the window is parked in ``_pending_credits``
  and applied exactly when its cycle enters the window, and is ignored by
  availability checks until then.

Representation: suffix-difference array
---------------------------------------

Every mutation the protocol performs on the free counts is a *suffix*
update ending at the window's last slot: a reservation charges
``[arrival, end]``, a credit restores ``[from, end]``.  The table therefore
stores free counts as a difference array ``_dfree`` over the circular
window -- ``free(u)`` is the prefix sum of ``_dfree`` from the window start
through ``u`` -- which turns both the charge and the credit into O(1) point
updates instead of O(horizon) loops.  Sliding stays O(1) per expired cycle:
the expired head's difference folds into the next slot (values are
unchanged, the prefix just starts later) and the reborn end slot's
difference is exactly its matured pending credit.

Two scalars are maintained incrementally on top of the differences:

``_end_free``
    the exact free count at the window's end slot (the steady state).  Every
    suffix update touches the end slot, so it is a running total; the credit
    ledger and the overflow guard read it in O(1).

``_min_free``
    a *conservative lower bound* on the minimum free count across the whole
    window.  A reservation lowers the true minimum by at most one (decrement
    it); credits, releases, and sliding can only raise the true minimum
    (leave it -- a lower bound survives).  While ``_min_free >= 1`` the
    scheduling scan below needs no buffer pass at all; when it decays to
    zero, one O(horizon) prefix scan recomputes it exactly.  Under the
    paper's sub-saturation loads the bound stays positive for many
    consecutive reservations, so the common case is scan-free.

Scheduling-scan algorithm
-------------------------

``find_departure`` needs, for each candidate departure ``t``, the minimum
free count over the suffix ``[t + t_p, window_end]`` (hold-to-horizon).
The criterion "suffix minimum >= 1" is equivalent to "no cycle ``u`` in the
suffix has ``free(u) <= 0``".  When ``_min_free >= 1`` no such ``u`` exists
anywhere in the window and every candidate passes the buffer test outright.
Otherwise one forward prefix pass recomputes the exact minimum (refreshing
``_min_free``) and locates the *last* exhausted cycle ``u_bad``: if the end
slot itself is exhausted no departure can qualify (every suffix and the
beyond-window steady state include it), and every ``t`` with
``t + t_p > u_bad`` passes, so the candidate scan simply starts at
``max(earliest, u_bad - t_p + 1)`` and picks the first non-busy slot.
``reserve_earliest`` fuses this scan with the commit (and the caller's
per-cycle read-port constraint), skipping the per-slot underflow checks
that the scan criterion already proves cannot fire.
"""

from __future__ import annotations


class ReservationError(Exception):
    """Raised on misuse of the reservation table (a router bug, not traffic)."""


class OutputReservationTable:
    """Channel busy bits and downstream free-buffer counts over a horizon."""

    __slots__ = (
        "horizon",
        "downstream_buffers",
        "propagation_delay",
        "infinite_buffers",
        "window_end",
        "_busy",
        "_dfree",
        "_end_free",
        "_min_free",
        "_window_start",
        "_pending_credits",
        "reservations_made",
        "credits_applied",
    )

    def __init__(
        self,
        horizon: int,
        downstream_buffers: int,
        propagation_delay: int,
        infinite_buffers: bool = False,
    ) -> None:
        if horizon < 2:
            raise ValueError(f"scheduling horizon must be >= 2 cycles, got {horizon}")
        if downstream_buffers < 1 and not infinite_buffers:
            raise ValueError("downstream pool must have at least 1 buffer")
        self.horizon = horizon
        self.downstream_buffers = downstream_buffers
        self.propagation_delay = propagation_delay
        self.infinite_buffers = infinite_buffers
        self._busy = bytearray(horizon)
        # free(u) == sum of _dfree from the window-start slot through u's.
        self._dfree = [0] * horizon
        self._dfree[0] = downstream_buffers
        self._end_free = downstream_buffers
        self._min_free = downstream_buffers
        self._window_start = 0  # absolute cycle of the earliest valid slot
        self.window_end = horizon - 1  # absolute cycle of the last valid slot
        self._pending_credits: dict[int, int] = {}
        # Diagnostics.
        self.reservations_made = 0
        self.credits_applied = 0

    # -- window management ----------------------------------------------------

    def advance(self, now: int) -> None:
        """Slide the window so it covers [now, now + horizon - 1]."""
        start = self._window_start
        if now <= start:
            return
        horizon = self.horizon
        if now == start + 1:
            # Single-cycle slide, the per-cycle common case: one expired
            # slot, handled without the general loop machinery.
            slot = start % horizon
            nxt = slot + 1
            if nxt == horizon:
                nxt = 0
            dfree = self._dfree
            dfree[nxt] += dfree[slot]
            self._busy[slot] = 0
            pending = self._pending_credits
            if pending:
                credit = pending.pop(start + horizon, 0)
                dfree[slot] = credit
                self._end_free += credit
            else:
                dfree[slot] = 0
            self._window_start = now
            self.window_end = now + horizon - 1
            return
        if now - self._window_start >= horizon:
            # The whole window expired: every slot is reborn from steady state.
            self._rebuild_window(now)
            return
        busy = self._busy
        dfree = self._dfree
        pending = self._pending_credits
        end_free = self._end_free
        if pending:
            for expired in range(self._window_start, now):
                slot = expired % horizon
                nxt = slot + 1
                if nxt == horizon:
                    nxt = 0
                # Values are unchanged; the prefix now starts one slot later.
                dfree[nxt] += dfree[slot]
                busy[slot] = 0
                credit = pending.pop(expired + horizon, 0)
                dfree[slot] = credit
                end_free += credit
            self._end_free = end_free
        else:
            for expired in range(self._window_start, now):
                slot = expired % horizon
                nxt = slot + 1
                if nxt == horizon:
                    nxt = 0
                dfree[nxt] += dfree[slot]
                busy[slot] = 0
                dfree[slot] = 0
        self._window_start = now
        self.window_end = now + horizon - 1
        # _min_free stays a valid lower bound: expired slots leave (the true
        # minimum can only rise) and reborn slots carry the end value plus
        # credits (>= the old minimum).

    def _rebuild_window(self, now: int) -> None:
        end_value = self._end_free
        pending = self._pending_credits
        if pending:
            # Credits that start before the new window apply to all of it.
            matured = [cycle for cycle in pending if cycle <= now]
            for cycle in matured:
                end_value += pending.pop(cycle)
        horizon = self.horizon
        busy = self._busy
        dfree = self._dfree
        for slot in range(horizon):
            busy[slot] = 0
            dfree[slot] = 0
        self._window_start = now
        self.window_end = now + horizon - 1
        dfree[now % horizon] = end_value
        running = end_value
        if pending:
            for cycle in range(now + 1, now + horizon):
                credit = pending.pop(cycle, 0)
                if credit:
                    dfree[cycle % horizon] = credit
                    running += credit
        # Values rise monotonically from the steady state, so the window
        # minimum is exactly the first value.
        self._min_free = end_value
        self._end_free = running

    # -- queries ---------------------------------------------------------------

    def busy_slots(self) -> int:
        """Reserved slots currently in the window (table pressure metric)."""
        return sum(self._busy)

    def is_busy(self, cycle: int) -> bool:
        """Whether the channel is reserved during an in-window cycle."""
        self._check_in_window(cycle)
        return bool(self._busy[cycle % self.horizon])

    def free_buffers_at(self, cycle: int) -> int:
        """Downstream free-buffer count at an in-window cycle."""
        self._check_in_window(cycle)
        if self.infinite_buffers:
            return 1 << 30
        horizon = self.horizon
        dfree = self._dfree
        running = 0
        slot = self._window_start % horizon
        for _ in range(self._window_start, cycle + 1):
            running += dfree[slot]
            slot += 1
            if slot == horizon:
                slot = 0
        return running

    def free_values(self) -> list[int]:
        """Free counts for every window cycle; index 0 is the window start.

        O(horizon) reconstruction from the difference array -- for
        invariant checking and introspection, not the scheduling hot path.
        """
        horizon = self.horizon
        dfree = self._dfree
        values: list[int] = []
        running = 0
        slot = self._window_start % horizon
        for _ in range(horizon):
            running += dfree[slot]
            values.append(running)
            slot += 1
            if slot == horizon:
                slot = 0
        return values

    # -- the scheduling operation (paper Section 3) ----------------------------

    def find_departure(self, now: int, earliest: int) -> int | None:
        """Earliest reservable departure time ``t_d >= earliest``.

        A slot qualifies when the channel is not busy at ``t_d`` and at least
        one downstream buffer is free at every in-window cycle from the
        flit's arrival ``t_d + t_p`` onward (the paper's hold-to-horizon
        condition; the downstream node's own departure credit later trims
        the hold to the true occupancy).  Returns None when no slot inside
        the horizon qualifies -- the control flit must retry next cycle.
        """
        if now > self._window_start:  # inline advance guard (hot path)
            self.advance(now)
        start = now + 1 if earliest <= now else earliest
        end = self.window_end
        if start > end:
            return None
        horizon = self.horizon
        busy = self._busy
        if self.infinite_buffers:
            for t in range(start, end + 1):
                if not busy[t % horizon]:
                    return t
            return None
        if self._min_free >= 1:
            first_ok = start
        else:
            first_ok = self._rescan_first_ok(start, end)
            if first_ok is None:
                return None
        slot = first_ok % horizon
        for t in range(first_ok, end + 1):
            if not busy[slot]:
                return t
            slot += 1
            if slot == horizon:
                slot = 0
        return None

    def _rescan_first_ok(self, start: int, end: int) -> int | None:
        """One exact prefix pass: refresh ``_min_free``, bound the scan start.

        Returns the earliest departure that clears every exhausted cycle's
        hold interval, or None when the end slot itself is exhausted (then
        no suffix can qualify).
        """
        horizon = self.horizon
        dfree = self._dfree
        running = 0
        min_free = 1 << 30
        last_bad = -1
        slot = self._window_start % horizon
        for u in range(self._window_start, end + 1):
            running += dfree[slot]
            if running < min_free:
                min_free = running
                if running <= 0:
                    last_bad = u
            elif running <= 0:
                last_bad = u
            slot += 1
            if slot == horizon:
                slot = 0
        self._min_free = min_free
        if running <= 0:
            # Every suffix and the beyond-window steady state include the
            # exhausted end slot: nothing qualifies.
            return None
        if last_bad >= start:
            candidate = last_bad - self.propagation_delay + 1
            if candidate > start:
                return candidate
        return start

    def reserve_earliest(
        self,
        now: int,
        earliest: int,
        port_uses: dict[int, int] | None = None,
        port_limit: int = 0,
    ) -> int | None:
        """Fused find + commit: reserve the earliest qualifying departure.

        Behaves exactly like ``find_departure`` followed by ``reserve``,
        except that candidates with ``port_uses[t] >= port_limit`` are
        skipped (the caller's downstream read-port constraint -- equivalent
        to the retry-at-``t + 1`` loop the routers used to run, because
        between retries the table is untouched so the scan resumes from the
        rejected slot).  Returns the committed departure, or None when no
        in-window slot qualifies.  Skips the per-slot underflow checks of
        ``reserve``: the scan criterion guarantees every charged count
        is >= 1.
        """
        if now > self._window_start:  # inline advance guard (hot path)
            self.advance(now)
        start = now + 1 if earliest <= now else earliest
        end = self.window_end
        if start > end:
            return None
        horizon = self.horizon
        busy = self._busy
        if self.infinite_buffers:
            if port_uses is None:
                for t in range(start, end + 1):
                    if not busy[t % horizon]:
                        busy[t % horizon] = 1
                        self.reservations_made += 1
                        return t
            else:
                for t in range(start, end + 1):
                    if not busy[t % horizon] and port_uses.get(t, 0) < port_limit:
                        busy[t % horizon] = 1
                        self.reservations_made += 1
                        return t
            return None
        if self._min_free >= 1:
            first_ok = start
        else:
            maybe = self._rescan_first_ok(start, end)
            if maybe is None:
                return None
            first_ok = maybe
        slot = first_ok % horizon
        if port_uses is None:
            for t in range(first_ok, end + 1):
                if not busy[slot]:
                    break
                slot += 1
                if slot == horizon:
                    slot = 0
            else:
                return None
        else:
            uses_at = port_uses.get
            for t in range(first_ok, end + 1):
                if not busy[slot] and uses_at(t, 0) < port_limit:
                    break
                slot += 1
                if slot == horizon:
                    slot = 0
            else:
                return None
        busy[slot] = 1
        self.reservations_made += 1
        arrival = t + self.propagation_delay
        charge = arrival if arrival < end else end
        self._dfree[charge % horizon] -= 1
        self._end_free -= 1
        self._min_free -= 1
        return t

    def reserve(self, now: int, departure: int) -> None:
        """Commit a reservation: mark busy and charge the downstream buffer."""
        self.advance(now)
        self._check_in_window(departure)
        horizon = self.horizon
        slot = departure % horizon
        if self._busy[slot]:
            raise ReservationError(
                f"double booking: channel already reserved at cycle {departure}"
            )
        self._busy[slot] = 1
        self.reservations_made += 1
        if self.infinite_buffers:
            return
        arrival = departure + self.propagation_delay
        start = min(arrival, self.window_end)  # beyond-window: charge the end slot
        # Validate the whole hold interval before charging (this unfused
        # path is the all-or-nothing policy's and the tests' safety net).
        dfree = self._dfree
        running = 0
        scan = self._window_start % horizon
        for u in range(self._window_start, self.window_end + 1):
            running += dfree[scan]
            if u >= start and running <= 0:
                raise ReservationError(
                    f"free-buffer count went negative at cycle {u}: "
                    "availability check violated"
                )
            scan += 1
            if scan == horizon:
                scan = 0
        dfree[start % horizon] -= 1
        self._end_free -= 1
        self._min_free -= 1

    def release(self, departure: int) -> None:
        """Undo a reservation made this cycle (all-or-nothing rollback)."""
        self._check_in_window(departure)
        slot = departure % self.horizon
        if not self._busy[slot]:
            raise ReservationError(f"cannot release unreserved cycle {departure}")
        self._busy[slot] = 0
        self.reservations_made -= 1
        if self.infinite_buffers:
            return
        arrival = departure + self.propagation_delay
        start = min(arrival, self.window_end)
        self._dfree[start % self.horizon] += 1
        self._end_free += 1
        # _min_free is left alone: the true minimum can only rise, so the
        # bound stays valid (raising it here could overshoot the minimum).

    def apply_credit(self, now: int, from_cycle: int) -> None:
        """Advance credit: the downstream buffer frees from ``from_cycle`` on.

        Sent by the downstream input scheduler the moment it learns the
        flit's departure time -- typically well before the flit even arrives,
        which is what lets flit-reservation flow control recycle buffers with
        zero turnaround.
        """
        if now > self._window_start:  # inline advance guard (hot path)
            self.advance(now)
        if self.infinite_buffers:
            return
        self.credits_applied += 1
        window_start = self._window_start
        start = from_cycle if from_cycle > window_start else window_start
        if start > self.window_end:
            self._pending_credits[start] = self._pending_credits.get(start, 0) + 1
            return
        # The credit raises the whole suffix through the end slot, so an
        # already-full end slot proves the pool-size overflow immediately.
        if self._end_free >= self.downstream_buffers:
            raise ReservationError(
                f"free-buffer count exceeded pool size at cycle "
                f"{self.window_end}: credit protocol violated"
            )
        self._dfree[start % self.horizon] += 1
        self._end_free += 1

    def _check_in_window(self, cycle: int) -> None:
        if not self._window_start <= cycle <= self.window_end:
            raise ReservationError(
                f"cycle {cycle} outside reservation window "
                f"[{self._window_start}, {self.window_end}]"
            )
