"""Configuration for the flit-reservation network.

The paper's two experimental configurations (Table 1) are chosen to match
the storage overhead of VC8 and VC16:

* **FR6**  -- 6 data buffers per input, 2 control VCs x 3 control buffers;
* **FR13** -- 13 data buffers per input, 4 control VCs x 3 control buffers.

Both use a 32-cycle scheduling horizon, one data flit per control flit
(d = 1), and inject/process two control flits per cycle (footnote 12).

The physical regime is set by the link delays plus ``injection_lead``:

* *fast control* (Figures 5-7): ``data_link_delay=4``, control and credit
  wires 1 cycle, ``injection_lead=0`` -- control wires are 4x faster;
* *leading control* (Figures 8-9): every wire 1 cycle and data flits
  deferred ``injection_lead=N`` cycles behind their control flits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FRConfig:
    """Parameters of a flit-reservation flow control network."""

    data_buffers_per_input: int = 6
    control_vcs: int = 2
    control_buffers_per_vc: int = 3
    data_flits_per_control: int = 1
    scheduling_horizon: int = 32
    data_link_delay: int = 4
    control_link_delay: int = 1
    credit_link_delay: int = 1
    control_flits_per_cycle: int = 2
    injection_lead: int = 0
    scheduling_policy: str = "per_flit"  # "per_flit" | "all_or_nothing"
    buffer_allocation: str = "at_arrival"  # "at_arrival" | "at_reservation"
    # Buffer-read ports per input (paper footnote 7): 1 models the baseline
    # single "Buffer Out" row; more rows let one input drive several outputs
    # in the same cycle.
    input_read_ports: int = 1
    # Extra cycles a buffer is held before its advance credit takes effect,
    # for plesiochronous links whose transmit clock may slip a cycle
    # (paper Section 5, "Synchronization issues").
    plesiochronous_margin: int = 0

    def __post_init__(self) -> None:
        if self.data_buffers_per_input < 1:
            raise ValueError("need at least 1 data buffer per input")
        if self.control_vcs < 1:
            raise ValueError("need at least 1 control virtual channel")
        if self.control_buffers_per_vc < 1:
            raise ValueError("need at least 1 buffer per control VC")
        if self.data_flits_per_control < 1:
            raise ValueError("a control flit must lead at least 1 data flit")
        if self.scheduling_horizon < self.data_link_delay + 2:
            raise ValueError(
                f"scheduling horizon {self.scheduling_horizon} too short to cover "
                f"a link traversal of {self.data_link_delay} cycles"
            )
        if self.injection_lead < 0:
            raise ValueError("injection lead cannot be negative")
        if self.scheduling_policy not in ("per_flit", "all_or_nothing"):
            raise ValueError(f"unknown scheduling_policy {self.scheduling_policy!r}")
        if self.buffer_allocation not in ("at_arrival", "at_reservation"):
            raise ValueError(f"unknown buffer_allocation {self.buffer_allocation!r}")
        if self.input_read_ports < 1:
            raise ValueError("need at least one buffer read port per input")
        if self.plesiochronous_margin < 0:
            raise ValueError("plesiochronous margin cannot be negative")

    @property
    def control_buffers_per_input(self) -> int:
        """Total control flit buffers per control input (the paper's b_c)."""
        return self.control_vcs * self.control_buffers_per_vc

    @property
    def name(self) -> str:
        return f"FR{self.data_buffers_per_input}"

    def with_leading_control(self, lead: int = 1) -> "FRConfig":
        """The leading-control variant: 1-cycle wires, data deferred ``lead``
        cycles behind control (Figures 8 and 9)."""
        return replace(
            self,
            data_link_delay=1,
            control_link_delay=1,
            credit_link_delay=1,
            injection_lead=lead,
        )

    def with_horizon(self, horizon: int) -> "FRConfig":
        """Same configuration with a different scheduling horizon (Figure 7)."""
        return replace(self, scheduling_horizon=horizon)


#: The paper's Table 1 flit-reservation configurations (fast-control regime).
FR6 = FRConfig(data_buffers_per_input=6, control_vcs=2)
FR13 = FRConfig(data_buffers_per_input=13, control_vcs=4)
