"""The per-input data buffer pool.

Flit-reservation flow control keeps one *pool* of buffers per input channel
rather than per-VC queues: data flits carry no tags, so there is nothing to
differentiate them on the data network (paper Section 5).

Two allocation policies are modelled, after the paper's Figure 10 analysis:

* ``at_arrival`` (the paper's choice and our default) -- a reservation only
  guarantees *some* buffer; the specific buffer is chosen when the flit
  arrives, by which time every conflicting departure is known, so a flit
  never has to move between buffers during its residency.
* ``at_reservation`` -- the specific buffer is chosen when the reservation is
  made, with no knowledge of future reservations; when a later reservation
  books the same buffer for an overlapping interval the earlier flit must be
  *transferred* mid-residency.  The :class:`IntervalBookkeeper` reproduces
  that policy's bookkeeping and counts the transfers the paper argues this
  policy would require (the data movements themselves are unaffected, so the
  two policies deliver identical schedules -- the ablation benchmark reports
  the transfer count as the cost).
"""

from __future__ import annotations

from repro.core.flits import DataFlit


class BufferPoolError(Exception):
    """Raised when the pool is misused -- always a protocol violation,
    because the reservation tables are supposed to guarantee availability."""


class BufferPool:
    """A pool of flit buffers with O(1) allocate/release."""

    __slots__ = ("size", "_free", "_contents", "peak_occupancy")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"buffer pool needs at least 1 buffer, got {size}")
        self.size = size
        self._free = list(range(size - 1, -1, -1))  # stack: pop() yields buffer 0 first
        self._contents: list[DataFlit | None] = [None] * size
        self.peak_occupancy = 0

    @property
    def occupied(self) -> int:
        return self.size - len(self._free)

    @property
    def is_full(self) -> bool:
        return not self._free

    def allocate(self, flit: DataFlit) -> int:
        """Place a flit in a free buffer, returning the buffer index."""
        if not self._free:
            raise BufferPoolError(
                "buffer pool full on allocation: the output reservation table "
                "of the upstream node overbooked this pool"
            )
        index = self._free.pop()
        self._contents[index] = flit
        if self.occupied > self.peak_occupancy:
            self.peak_occupancy = self.occupied
        return index

    def release(self, index: int) -> DataFlit:
        """Remove and return the flit occupying ``index``."""
        flit = self._contents[index]
        if flit is None:
            raise BufferPoolError(f"buffer {index} released while empty")
        self._contents[index] = None
        self._free.append(index)
        return flit

    def peek(self, index: int) -> DataFlit | None:
        return self._contents[index]


class IntervalBookkeeper:
    """Counts the buffer transfers the allocate-at-reservation policy needs.

    Buffers are booked for residency intervals ``[arrival, departure)`` in
    reservation order.  A booking takes the lowest-numbered buffer free at
    its start; whenever the chosen buffer has a later conflicting booking,
    the flit is re-booked from the conflict point on another buffer -- one
    *transfer* per re-booking, exactly the situation of Figure 10(a).
    """

    __slots__ = ("size", "_bookings", "transfers", "bookings_made")

    def __init__(self, size: int) -> None:
        self.size = size
        self._bookings: list[list[tuple[int, int]]] = [[] for _ in range(size)]
        self.transfers = 0
        self.bookings_made = 0

    def book(self, arrival: int, departure: int) -> None:
        """Book a residency interval, counting any forced transfers."""
        if departure <= arrival:
            return  # bypass: the flit never occupies a buffer
        self.bookings_made += 1
        start = arrival
        guard = 0
        while start < departure:
            index = self._buffer_free_at(start)
            conflict = self._next_conflict(index, start, departure)
            self._bookings[index].append((start, conflict))
            if conflict < departure:
                self.transfers += 1
                start = conflict
            else:
                start = departure
            guard += 1
            if guard > self.size * 4:
                raise BufferPoolError(
                    "interval bookkeeping failed to converge: aggregate "
                    "availability was violated by the reservation tables"
                )

    def _buffer_free_at(self, cycle: int) -> int:
        for index in range(self.size):
            for s, e in self._bookings[index]:
                if s <= cycle < e:
                    break
            else:
                return index
        raise BufferPoolError(
            f"no buffer free at cycle {cycle}: the reservation tables "
            "overbooked this pool"
        )

    def _next_conflict(self, index: int, start: int, end: int) -> int:
        """First cycle in (start, end) at which another booking claims
        ``index``, or ``end`` when the interval fits."""
        conflict = end
        for s, _ in self._bookings[index]:
            if start < s < conflict:
                conflict = s
        return conflict

    def prune(self, now: int) -> None:
        """Forget bookings that ended in the past (keeps memory bounded)."""
        for index in range(self.size):
            bookings = self._bookings[index]
            if bookings:
                self._bookings[index] = [(s, e) for s, e in bookings if e > now]
