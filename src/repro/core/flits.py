"""Flit types for flit-reservation flow control.

A packet of L data flits is led through the network by ``ceil(L / d)``
control flits (paper Figure 2): the *control head flit* carries the packet
destination and the arrival time of the first data flit; each subsequent
control flit carries the arrival times of up to ``d`` more data flits.  All
control flits carry the virtual-channel identifier that ties a packet's
control flits together; the VCID is per-hop state, assigned by control VC
allocation exactly as in virtual-channel flow control.

Data flits contain only payload.  The routers never examine them -- they are
identified solely by arrival time.  The ``packet``/``index`` fields exist so
the node interfaces can account deliveries and so tests can verify that the
time-based schedule delivered the right payloads; a correctness test asserts
the routers themselves never touch them.
"""

from __future__ import annotations

from repro.traffic.packet import Packet


class DataFlit:
    """An anonymous payload flit, identified in the network by arrival time."""

    __slots__ = ("packet", "index", "injection_cycle")

    def __init__(self, packet: Packet, index: int) -> None:
        self.packet = packet
        self.index = index
        # Stamped by the source NI when the flit enters the injection channel;
        # used for the per-flit network latency statistic of Section 4.4.
        self.injection_cycle = -1

    def __repr__(self) -> str:
        return f"DataFlit(pkt={self.packet.packet_id}, #{self.index})"


class ControlFlit:
    """A reservation-making control flit.

    ``arrival_times[i]`` is the (absolute) cycle at which led data flit ``i``
    arrives at the *next* node the control flit visits; the output scheduler
    of each router rewrites it with ``t_d + t_p`` as it makes reservations.
    ``scheduled[i]`` tracks which led flits this router has already reserved,
    so a control flit stalled mid-schedule (per-flit policy) does not reserve
    twice.  ``unscheduled`` mirrors the number of False entries so the hot
    serve loops test completeness with one attribute read; every writer of
    ``scheduled`` keeps it in sync.
    """

    __slots__ = (
        "packet",
        "is_head",
        "is_last",
        "data_flits",
        "arrival_times",
        "scheduled",
        "unscheduled",
        "vcid",
        "forward_at",
        "credited",
    )

    def __init__(
        self,
        packet: Packet,
        is_head: bool,
        is_last: bool,
        data_flits: list[DataFlit],
    ) -> None:
        self.packet = packet
        self.is_head = is_head
        self.is_last = is_last
        self.data_flits = data_flits
        self.arrival_times = [-1] * len(data_flits)
        self.scheduled = [False] * len(data_flits)
        self.unscheduled = len(data_flits)
        self.vcid = -1
        # The control-link slot reserved for this flit's forwarding, fixed
        # when its scheduling at the current hop commits (always at least one
        # cycle after the commit -- the paper's 1-cycle routing and
        # scheduling latency).  -1 while unscheduled or bound for ejection.
        self.forward_at = -1
        # Whether the flit occupies a credited control buffer at its current
        # node.  A freshly created split flit sits in an uncredited staging
        # slot (the original flit holds the credited buffer) until it is
        # accepted at the next hop.
        self.credited = True

    @property
    def destination(self) -> int:
        return self.packet.destination

    def reset_schedule_flags(self) -> None:
        """Clear per-hop scheduling progress before the next router."""
        scheduled = self.scheduled
        for i in range(len(scheduled)):
            scheduled[i] = False
        self.unscheduled = len(scheduled)
        self.forward_at = -1

    def fully_scheduled(self) -> bool:
        return not self.unscheduled

    def split_scheduled(self) -> "ControlFlit":
        """Split off a control flit carrying the already-scheduled flits.

        Used by the deadlock-avoidance extension for wide control flits
        (d > 1): a control flit stalled mid-group may forward its scheduled
        arrival times immediately -- so the data flits that already moved
        ahead can be scheduled onward and release buffers -- while this
        flit keeps the unscheduled remainder and retries.  The split takes
        over head-ness (it travels first); ``is_last`` stays behind with
        the remainder so control VC release still tracks the true tail.
        """
        done = [i for i, flag in enumerate(self.scheduled) if flag]
        if not done or len(done) == len(self.data_flits):
            raise ValueError("can only split a partially scheduled control flit")
        split = ControlFlit(
            self.packet,
            is_head=self.is_head,
            is_last=False,
            data_flits=[self.data_flits[i] for i in done],
        )
        split.arrival_times = [self.arrival_times[i] for i in done]
        split.scheduled = [True] * len(done)
        split.unscheduled = 0
        keep = [i for i, flag in enumerate(self.scheduled) if not flag]
        self.data_flits = [self.data_flits[i] for i in keep]
        self.arrival_times = [self.arrival_times[i] for i in keep]
        self.scheduled = [False] * len(keep)
        self.unscheduled = len(keep)
        self.is_head = False
        return split

    def __repr__(self) -> str:
        role = "head" if self.is_head else "body"
        if self.is_last:
            role += "+last"
        return (
            f"ControlFlit(pkt={self.packet.packet_id}, {role}, "
            f"leads={len(self.data_flits)}, t_a={self.arrival_times})"
        )


class FlitPool:
    """Free-list recycling for data and control flits.

    A network run churns through one ``DataFlit`` per payload flit and one
    ``ControlFlit`` per group, but only a bounded number are ever in flight
    at once.  The network owns one pool and releases flits at their single
    well-defined end of life: a data flit when it ejects at its destination
    (after its latency is recorded), a control flit when the destination
    router consumes it.  ``acquire_*`` reinitialises every field in place --
    including clearing and refilling a recycled control flit's per-group
    lists -- so a recycled flit is indistinguishable from a fresh one, and
    nothing downstream retains flit objects (observers copy scalar fields,
    digests key on packet ids).  Packets are NOT pooled: their identity is
    the unit of accounting everywhere.
    """

    __slots__ = ("_data_free", "_control_free", "data_recycled", "control_recycled")

    def __init__(self) -> None:
        self._data_free: list[DataFlit] = []
        self._control_free: list[ControlFlit] = []
        # Diagnostics: how many acquisitions were served from the free lists.
        self.data_recycled = 0
        self.control_recycled = 0

    def acquire_data(self, packet: Packet, index: int) -> DataFlit:
        if self._data_free:
            flit = self._data_free.pop()
            self.data_recycled += 1
            flit.packet = packet
            flit.index = index
            flit.injection_cycle = -1
            return flit
        return DataFlit(packet, index)

    def release_data(self, flit: DataFlit) -> None:
        self._data_free.append(flit)

    def acquire_control(self, packet: Packet, is_head: bool, is_last: bool) -> ControlFlit:
        """Return a control flit with empty per-group lists, ready to fill."""
        if self._control_free:
            flit = self._control_free.pop()
            self.control_recycled += 1
            flit.packet = packet
            flit.is_head = is_head
            flit.is_last = is_last
            flit.data_flits.clear()
            flit.arrival_times.clear()
            flit.scheduled.clear()
            flit.unscheduled = 0
            flit.vcid = -1
            flit.forward_at = -1
            flit.credited = True
            return flit
        flit = ControlFlit(packet, is_head=is_head, is_last=is_last, data_flits=[])
        return flit

    def release_control(self, flit: ControlFlit) -> None:
        self._control_free.append(flit)


#: Fallback for pool-less expansion (tests, ad-hoc construction).  Nothing
#: ever releases into it, so its free lists stay empty and every acquire
#: constructs a fresh flit -- exactly the un-pooled behavior, single-path.
_FRESH = FlitPool()


def packet_to_control_flits(
    packet: Packet, data_flits_per_control: int, pool: FlitPool | None = None
) -> tuple[list[ControlFlit], list[DataFlit]]:
    """Expand a packet into its control flit sequence and data flits.

    With a ``pool``, flit objects come from its free lists and the group
    lists of recycled control flits are refilled in place.
    """
    d = data_flits_per_control
    if pool is None:
        pool = _FRESH
    length = packet.length
    data_flits = [pool.acquire_data(packet, i) for i in range(length)]
    control_flits = []
    n_groups = (length + d - 1) // d
    for group_index in range(n_groups):
        flit = pool.acquire_control(
            packet,
            is_head=group_index == 0,
            is_last=group_index == n_groups - 1,
        )
        group = flit.data_flits
        arrival_times = flit.arrival_times
        scheduled = flit.scheduled
        stop = (group_index + 1) * d
        if stop > length:
            stop = length
        for i in range(group_index * d, stop):
            group.append(data_flits[i])
            arrival_times.append(-1)
            scheduled.append(False)
        flit.unscheduled = len(group)
        control_flits.append(flit)
    return control_flits, data_flits
