"""Flit types for flit-reservation flow control.

A packet of L data flits is led through the network by ``ceil(L / d)``
control flits (paper Figure 2): the *control head flit* carries the packet
destination and the arrival time of the first data flit; each subsequent
control flit carries the arrival times of up to ``d`` more data flits.  All
control flits carry the virtual-channel identifier that ties a packet's
control flits together; the VCID is per-hop state, assigned by control VC
allocation exactly as in virtual-channel flow control.

Data flits contain only payload.  The routers never examine them -- they are
identified solely by arrival time.  The ``packet``/``index`` fields exist so
the node interfaces can account deliveries and so tests can verify that the
time-based schedule delivered the right payloads; a correctness test asserts
the routers themselves never touch them.
"""

from __future__ import annotations

from repro.traffic.packet import Packet


class DataFlit:
    """An anonymous payload flit, identified in the network by arrival time."""

    __slots__ = ("packet", "index", "injection_cycle")

    def __init__(self, packet: Packet, index: int) -> None:
        self.packet = packet
        self.index = index
        # Stamped by the source NI when the flit enters the injection channel;
        # used for the per-flit network latency statistic of Section 4.4.
        self.injection_cycle = -1

    def __repr__(self) -> str:
        return f"DataFlit(pkt={self.packet.packet_id}, #{self.index})"


class ControlFlit:
    """A reservation-making control flit.

    ``arrival_times[i]`` is the (absolute) cycle at which led data flit ``i``
    arrives at the *next* node the control flit visits; the output scheduler
    of each router rewrites it with ``t_d + t_p`` as it makes reservations.
    ``scheduled[i]`` tracks which led flits this router has already reserved,
    so a control flit stalled mid-schedule (per-flit policy) does not reserve
    twice.
    """

    __slots__ = (
        "packet",
        "is_head",
        "is_last",
        "data_flits",
        "arrival_times",
        "scheduled",
        "vcid",
        "forward_at",
        "credited",
    )

    def __init__(
        self,
        packet: Packet,
        is_head: bool,
        is_last: bool,
        data_flits: list[DataFlit],
    ) -> None:
        self.packet = packet
        self.is_head = is_head
        self.is_last = is_last
        self.data_flits = data_flits
        self.arrival_times = [-1] * len(data_flits)
        self.scheduled = [False] * len(data_flits)
        self.vcid = -1
        # The control-link slot reserved for this flit's forwarding, fixed
        # when its scheduling at the current hop commits (always at least one
        # cycle after the commit -- the paper's 1-cycle routing and
        # scheduling latency).  -1 while unscheduled or bound for ejection.
        self.forward_at = -1
        # Whether the flit occupies a credited control buffer at its current
        # node.  A freshly created split flit sits in an uncredited staging
        # slot (the original flit holds the credited buffer) until it is
        # accepted at the next hop.
        self.credited = True

    @property
    def destination(self) -> int:
        return self.packet.destination

    def reset_schedule_flags(self) -> None:
        """Clear per-hop scheduling progress before the next router."""
        for i in range(len(self.scheduled)):
            self.scheduled[i] = False
        self.forward_at = -1

    def fully_scheduled(self) -> bool:
        return all(self.scheduled)

    def split_scheduled(self) -> "ControlFlit":
        """Split off a control flit carrying the already-scheduled flits.

        Used by the deadlock-avoidance extension for wide control flits
        (d > 1): a control flit stalled mid-group may forward its scheduled
        arrival times immediately -- so the data flits that already moved
        ahead can be scheduled onward and release buffers -- while this
        flit keeps the unscheduled remainder and retries.  The split takes
        over head-ness (it travels first); ``is_last`` stays behind with
        the remainder so control VC release still tracks the true tail.
        """
        done = [i for i, flag in enumerate(self.scheduled) if flag]
        if not done or len(done) == len(self.data_flits):
            raise ValueError("can only split a partially scheduled control flit")
        split = ControlFlit(
            self.packet,
            is_head=self.is_head,
            is_last=False,
            data_flits=[self.data_flits[i] for i in done],
        )
        split.arrival_times = [self.arrival_times[i] for i in done]
        split.scheduled = [True] * len(done)
        keep = [i for i, flag in enumerate(self.scheduled) if not flag]
        self.data_flits = [self.data_flits[i] for i in keep]
        self.arrival_times = [self.arrival_times[i] for i in keep]
        self.scheduled = [False] * len(keep)
        self.is_head = False
        return split

    def __repr__(self) -> str:
        role = "head" if self.is_head else "body"
        if self.is_last:
            role += "+last"
        return (
            f"ControlFlit(pkt={self.packet.packet_id}, {role}, "
            f"leads={len(self.data_flits)}, t_a={self.arrival_times})"
        )


def packet_to_control_flits(
    packet: Packet, data_flits_per_control: int
) -> tuple[list[ControlFlit], list[DataFlit]]:
    """Expand a packet into its control flit sequence and data flits."""
    data_flits = [DataFlit(packet, i) for i in range(packet.length)]
    control_flits: list[ControlFlit] = []
    d = data_flits_per_control
    groups = [data_flits[i : i + d] for i in range(0, len(data_flits), d)]
    for group_index, group in enumerate(groups):
        control_flits.append(
            ControlFlit(
                packet,
                is_head=group_index == 0,
                is_last=group_index == len(groups) - 1,
                data_flits=group,
            )
        )
    return control_flits, data_flits
