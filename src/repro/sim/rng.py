"""Deterministic random-number generation for simulations.

All stochastic choices in the simulator -- traffic destinations, injection
processes, and the "random arbitration" the paper specifies for both routers
-- draw from a :class:`DeterministicRng`.  Centralising randomness behind one
seeded object makes every experiment exactly reproducible, which the test
suite and the benchmark harness both rely on.
"""

from __future__ import annotations

import random  # frfc-lint: disable=D001 -- the one sanctioned wrapper around stdlib random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with the handful of draws the simulator needs.

    The class wraps :class:`random.Random` rather than subclassing it so the
    public surface stays small and intentional: every method here corresponds
    to a specific stochastic decision in the modelled hardware or workload.
    """

    __slots__ = ("_seed", "_random")

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def spawn(self, salt: int) -> "DeterministicRng":
        """Derive an independent child generator.

        Giving each node or subsystem its own child stream keeps results
        stable when one component changes how many draws it makes.
        """
        return DeterministicRng((self._seed * 1_000_003 + salt) & 0x7FFFFFFF)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def chance(self, probability: float) -> bool:
        """Bernoulli trial: ``True`` with the given probability."""
        return self._random.random() < probability

    def choice(self, options: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence.

        This is the primitive behind the paper's "random arbitration".
        """
        return self._random.choice(options)

    def shuffled(self, options: Sequence[T]) -> list[T]:
        """Return a new uniformly shuffled list of the options."""
        shuffled = list(options)
        self._random.shuffle(shuffled)
        return shuffled

    def __repr__(self) -> str:
        return f"DeterministicRng(seed={self._seed})"
