"""Shared scaffolding for complete network models.

Every flow-control scheme in the repository (virtual-channel, wormhole,
flit-reservation) is packaged as a *network model*: an 8x8-mesh-shaped object
with per-node packet sources, a per-cycle ``step``, and the measurement hooks
the experiment harness drives.  This module holds the common plumbing --
source construction, packet bookkeeping, measurement windows, ejection
accounting -- so each router model only implements its own cycle semantics.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.rng import DeterministicRng
from repro.stats.collectors import LatencyStats, ThroughputCounter
from repro.topology.mesh import Mesh2D
from repro.topology.routing import DimensionOrderRouting
from repro.traffic.injection import make_injection_process
from repro.traffic.packet import Packet
from repro.traffic.patterns import TrafficPattern, make_traffic_pattern
from repro.traffic.source import PacketSource


class NetworkModel:
    """Base class for a complete simulated network.

    Subclasses implement :meth:`step` (one clock cycle) and call
    :meth:`_eject_flit` whenever a flit leaves the network at its
    destination.  The base class owns packet creation, the measurement
    window, and the latency/throughput collectors.
    """

    def __init__(
        self,
        mesh: Mesh2D,
        packet_length: int,
        injection_rate: float,
        seed: int = 1,
        traffic: str | TrafficPattern = "uniform",
        injection_process: str = "periodic",
        streaming: bool = False,
    ) -> None:
        if injection_rate <= 0.0:
            raise ValueError(f"injection rate must be positive, got {injection_rate}")
        self.mesh = mesh
        self.routing = DimensionOrderRouting(mesh)
        self.packet_length = packet_length
        self.injection_rate = injection_rate
        self.rng = DeterministicRng(seed)
        if isinstance(traffic, TrafficPattern):
            self.pattern = traffic
        else:
            self.pattern = make_traffic_pattern(traffic, mesh)
        self._packet_counter = 0
        self.sources = [
            PacketSource(
                node=node,
                pattern=self.pattern,
                process=make_injection_process(
                    injection_process, injection_rate, self.rng.spawn(node)
                ),
                packet_length=packet_length,
                rng=self.rng.spawn(10_000 + node),
                next_packet_id=self._next_packet_id,
            )
            for node in self.mesh.nodes()
        ]
        # The order step() visits routers/interfaces within each phase.  The
        # phase analysis (repro.analysis.phases) proves the phases are
        # order-independent, and the order-permutation differ
        # (repro.analysis.permute) shuffles this list to verify it at
        # runtime; it must remain a permutation of the mesh nodes.
        self.eval_order = list(self.mesh.nodes())
        self.latency_stats = LatencyStats(streaming=streaming)
        self.throughput = ThroughputCounter(mesh.num_nodes)
        self.packets_in_flight: dict[int, Packet] = {}
        self.measured_outstanding = 0
        self.measured_delivered = 0
        self.packets_delivered = 0
        # Observability hooks (pure observers), called with (packet, cycle)
        # at creation and at last-flit ejection.
        self.on_packet_created: Optional[Callable[[Packet, int], None]] = None
        self.on_packet_delivered: Optional[Callable[[Packet, int], None]] = None

    # -- identity ----------------------------------------------------------

    @property
    def flow_control_name(self) -> str:
        """Human-readable flow control scheme name, e.g. 'VC8'."""
        raise NotImplementedError("network models must name their flow control scheme")

    def _next_packet_id(self) -> int:
        self._packet_counter += 1
        return self._packet_counter

    # -- measurement control ------------------------------------------------

    def set_measure_window(self, start: int, end: int) -> None:
        """Tag packets created in [start, end) as the measured sample."""
        for source in self.sources:
            source.measure_window = (start, end)
        self.throughput.set_window(start, end)

    def stop_injection(self) -> None:
        """Disable all sources (used while draining the measured sample)."""
        for source in self.sources:
            source.enabled = False

    def mean_source_queue_length(self) -> float:
        """Network-wide mean source queue length, the warm-up signal."""
        total = sum(self.source_queue_length(node) for node in self.mesh.nodes())
        return total / self.mesh.num_nodes

    def source_queue_length(self, node: int) -> int:
        """Packets waiting (or partially injected) at one node's interface."""
        raise NotImplementedError("network models must report per-node source queue lengths")

    # -- per-cycle hook -----------------------------------------------------

    def step(self, cycle: int) -> None:
        """Advance the whole network by one clock cycle."""
        raise NotImplementedError("network models must implement the per-cycle step")

    # -- shared bookkeeping -------------------------------------------------

    def _create_packets(self, cycle: int) -> list[Packet]:
        """Poll every source; register and return this cycle's new packets."""
        created: list[Packet] = []
        for source in self.sources:
            packet = source.maybe_create(cycle)
            if packet is None:
                continue
            self.packets_in_flight[packet.packet_id] = packet
            if packet.measured:
                self.measured_outstanding += 1
            if self.on_packet_created is not None:
                self.on_packet_created(packet, cycle)
            created.append(packet)
        return created

    def _eject_flit(self, packet: Packet, cycle: int) -> None:
        """Account one flit leaving the network at its destination."""
        self.throughput.record_flit(cycle)
        if packet.record_flit_delivery(cycle):
            self.packets_delivered += 1
            self.throughput.record_packet(cycle)
            del self.packets_in_flight[packet.packet_id]
            if packet.measured:
                self.measured_outstanding -= 1
                self.measured_delivered += 1
                self.latency_stats.record(packet.latency)
            if self.on_packet_delivered is not None:
                self.on_packet_delivered(packet, cycle)
