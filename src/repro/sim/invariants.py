"""Cycle-level invariant checking for live networks.

The flit-reservation model's correctness rests on exact conservation laws:
buffers are neither created nor destroyed, an output channel carries at most
one data flit per cycle, and the advance-credit accounting in the output
reservation tables mirrors the true occupancy of the downstream buffer pools
(paper Figure 4).  Those laws are easy to corrupt silently -- an off-by-one
in the credit window shows up only as a subtly wrong latency curve.

:class:`InvariantChecker` is an opt-in per-cycle hook the
:class:`~repro.sim.kernel.Simulator` calls after every ``step``.  It walks
the live network and verifies:

* **pool sanity** -- every buffer pool's free list and contents agree, and
  occupancy stays within ``[0, size]``;
* **reservation-table sanity** -- free-buffer counts stay within
  ``[0, downstream_buffers]`` over the whole scheduling window, and parked
  credits all lie beyond it;
* **no double booking** -- across all five input schedulers of a router, at
  most one data flit movement claims any (output channel, cycle) slot, each
  claim is backed by a busy bit in the output reservation table, and no busy
  bit is orphaned;
* **advance-credit conservation** -- for every link, the upstream table's
  belief about downstream free space never exceeds the downstream pool's
  true free space (an optimistic table overbooks buffers), and each table's
  credit ledger balances exactly: the steady-state buffer deficit equals
  its uncredited reservations plus parked credits;
* **flit conservation** -- every cycle, flits injected equal flits delivered
  plus flits in flight on links plus flits queued in NIs and buffer pools.

Violations raise :class:`InvariantViolation` naming the router, port, and
cycle.  The checker understands both flit-reservation and virtual-channel
(including wormhole) networks; for VC networks the conservation law checked
is the per-VC credit loop instead of advance credits.

Checking is O(routers x ports x horizon) per cycle -- far too slow for
production sweeps, which is why it is opt-in (``--check-invariants`` on the
CLI, ``checker=`` on the simulator).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:
    from repro.baselines.vc.network import VCNetwork
    from repro.core.network import FRNetwork
    from repro.core.reservation import OutputReservationTable
    from repro.sim.netbase import NetworkModel


class InvariantViolation(Exception):
    """A conservation law failed on the live network.

    Carries the offending node, port, and cycle as attributes so tests and
    tooling can assert on them precisely.
    """

    def __init__(
        self,
        message: str,
        node: int | None = None,
        port: int | None = None,
        cycle: int | None = None,
    ) -> None:
        super().__init__(message)
        self.node = node
        self.port = port
        self.cycle = cycle


class CycleChecker(Protocol):
    """What the simulator kernel requires of an invariant hook."""

    def check(self, network: "NetworkModel", cycle: int) -> None:
        """Inspect the network after ``cycle`` has fully executed."""


class InvariantChecker:
    """Walks a live network after each cycle and enforces conservation laws.

    ``every`` trades coverage for speed: the full sweep runs on cycles
    divisible by it (default 1, i.e. every cycle, which is what guarantees a
    violation is caught within one cycle of its introduction).
    """

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"check interval must be >= 1 cycle, got {every}")
        self.every = every
        self.checks_run = 0

    # -- dispatch ----------------------------------------------------------

    def check(self, network: "NetworkModel", cycle: int) -> None:
        """Verify every invariant that applies to this network type."""
        if cycle % self.every:
            return
        from repro.baselines.vc.network import VCNetwork
        from repro.core.network import FRNetwork

        if isinstance(network, FRNetwork):
            self._check_fr(network, cycle)
        elif isinstance(network, VCNetwork):
            self._check_vc(network, cycle)
        self.checks_run += 1

    # -- flit-reservation networks -----------------------------------------

    def _check_fr(self, network: "FRNetwork", now: int) -> None:
        from repro.topology.mesh import EJECT, INJECT, opposite_port

        for router in network.routers:
            node = router.node
            for port in range(len(router.input_sched)):
                self._check_pool(router.input_sched[port].pool, node, port, now)
            self._check_fr_claims(network, router, now)
            for port in router.connected_outputs:
                table = router.out_tables[port]
                assert table is not None
                self._check_table(table, node, port, now)
                neighbor = network.mesh.neighbor(node, port)
                assert neighbor is not None
                downstream = network.routers[neighbor].input_sched[opposite_port(port)]
                self._check_credit_conservation(
                    table, downstream.pool.size - downstream.pool.occupied,
                    node, port, now,
                )
            eject_table = router.out_tables[EJECT]
            assert eject_table is not None
            self._check_table(eject_table, node, EJECT, now)
        for node, interface in enumerate(network.interfaces):
            table = interface.injection_table
            self._check_table(table, node, INJECT, now)
            pool = network.routers[node].input_sched[INJECT].pool
            self._check_credit_conservation(
                table, pool.size - pool.occupied, node, INJECT, now
            )
        self._check_fr_flit_conservation(network, now)

    def _check_pool(self, pool: object, node: int, port: int, now: int) -> None:
        from repro.core.buffer_pool import BufferPool

        assert isinstance(pool, BufferPool)
        free = pool._free
        occupied = pool.occupied
        if not 0 <= occupied <= pool.size:
            raise InvariantViolation(
                f"buffer pool at {self._where(node, port, now)} has occupancy "
                f"{occupied} outside [0, {pool.size}]",
                node=node, port=port, cycle=now,
            )
        if len(set(free)) != len(free) or any(not 0 <= i < pool.size for i in free):
            raise InvariantViolation(
                f"buffer pool free list corrupted at {self._where(node, port, now)}: {free!r}",
                node=node, port=port, cycle=now,
            )
        filled = sum(1 for slot in pool._contents if slot is not None)
        if filled != occupied:
            raise InvariantViolation(
                f"buffer pool at {self._where(node, port, now)} reports {occupied} "
                f"occupied but holds {filled} flits",
                node=node, port=port, cycle=now,
            )
        for index in free:
            if pool._contents[index] is not None:
                raise InvariantViolation(
                    f"buffer {index} at {self._where(node, port, now)} is on the "
                    "free list but still holds a flit",
                    node=node, port=port, cycle=now,
                )

    def _check_table(
        self, table: "OutputReservationTable", node: int, port: int, now: int
    ) -> None:
        table.advance(now)
        if table.infinite_buffers:
            return
        values = table.free_values()
        for offset, count in enumerate(values):
            cycle = table._window_start + offset
            if not 0 <= count <= table.downstream_buffers:
                raise InvariantViolation(
                    f"reservation table at {self._where(node, port, now)} has "
                    f"free count {count} at cycle {cycle}, outside "
                    f"[0, {table.downstream_buffers}]",
                    node=node, port=port, cycle=now,
                )
        # The table's incremental scalars must agree with the reconstructed
        # profile: _end_free exactly, _min_free as a valid lower bound.
        if table._end_free != values[-1]:
            raise InvariantViolation(
                f"reservation table at {self._where(node, port, now)} tracks "
                f"end-slot free count {table._end_free} but the difference "
                f"array reconstructs {values[-1]}",
                node=node, port=port, cycle=now,
            )
        if table._min_free > min(values):
            raise InvariantViolation(
                f"reservation table at {self._where(node, port, now)} claims "
                f"window minimum >= {table._min_free} but the difference "
                f"array reconstructs {min(values)}",
                node=node, port=port, cycle=now,
            )
        for parked in table._pending_credits:
            if parked <= table.window_end:
                raise InvariantViolation(
                    f"reservation table at {self._where(node, port, now)} parked "
                    f"a credit for cycle {parked} inside the window "
                    f"(ends {table.window_end})",
                    node=node, port=port, cycle=now,
                )
        # The credit ledger: at the steady-state end slot, every committed
        # reservation has been charged and every received credit applied (or
        # parked), so the end-slot deficit must equal the uncredited
        # reservations plus the parked credits -- exactly.
        end_free = table._end_free
        deficit = table.downstream_buffers - end_free
        uncredited = table.reservations_made - table.credits_applied
        parked_credits = sum(table._pending_credits.values())
        if deficit != uncredited + parked_credits:
            raise InvariantViolation(
                f"credit ledger unbalanced at {self._where(node, port, now)}: "
                f"end-slot deficit {deficit} but {uncredited} uncredited "
                f"reservations + {parked_credits} parked credits",
                node=node, port=port, cycle=now,
            )

    def _check_fr_claims(self, network: "FRNetwork", router: object, now: int) -> None:
        """At most one scheduled movement per (output, cycle); busy bits agree."""
        from repro.core.router import FRRouter
        from repro.topology.mesh import EJECT

        assert isinstance(router, FRRouter)
        node = router.node
        claims: dict[tuple[int, int], int] = {}
        for scheduler in router.input_sched:
            for departure, entries in scheduler.departures.items():
                for _, out_port in entries:
                    claims[(out_port, departure)] = claims.get((out_port, departure), 0) + 1
            for departure, out_port in scheduler.expected.values():
                claims[(out_port, departure)] = claims.get((out_port, departure), 0) + 1
        for (out_port, departure), count in claims.items():
            if count > 1:
                raise InvariantViolation(
                    f"output channel double-booked at "
                    f"{self._where(node, out_port, now)}: {count} data flit "
                    f"movements scheduled for departure cycle {departure}",
                    node=node, port=out_port, cycle=now,
                )
        for out_port in list(router.connected_outputs) + [EJECT]:
            table = router.out_tables[out_port]
            if table is None:
                continue
            table.advance(now)
            for cycle in range(now + 1, table.window_end + 1):
                busy = bool(table._busy[cycle % table.horizon])
                claimed = claims.get((out_port, cycle), 0) > 0
                if claimed and not busy:
                    raise InvariantViolation(
                        f"data flit movement scheduled at "
                        f"{self._where(node, out_port, now)} for cycle {cycle} "
                        "but the reservation table slot is not busy",
                        node=node, port=out_port, cycle=now,
                    )
                if busy and not claimed:
                    raise InvariantViolation(
                        f"orphan reservation at {self._where(node, out_port, now)}: "
                        f"table busy at cycle {cycle} with no scheduled movement",
                        node=node, port=out_port, cycle=now,
                    )

    def _check_credit_conservation(
        self,
        table: "OutputReservationTable",
        downstream_free: int,
        node: int,
        port: int,
        now: int,
    ) -> None:
        """The zero-turnaround law, conservative direction (paper Section 3).

        The table's belief about downstream free space must never exceed the
        pool's true free space -- an optimistic table overbooks buffers,
        which is the failure mode that crashes a pool allocation.  (The
        table may legitimately run *conservative*: an arrival beyond the
        scheduling window charges the end slot early, and a plesiochronous
        margin delays credits on purpose, so the exact balance is enforced
        per table by the credit-ledger check instead.)
        """
        table.advance(now)
        if table.infinite_buffers:
            return
        table_free = table.free_buffers_at(now)
        if table_free > downstream_free:
            raise InvariantViolation(
                f"advance-credit accounting optimistic at "
                f"{self._where(node, port, now)}: table believes "
                f"{table_free} downstream buffers free but only "
                f"{downstream_free} are",
                node=node, port=port, cycle=now,
            )

    def _check_fr_flit_conservation(self, network: "FRNetwork", now: int) -> None:
        outstanding = sum(
            packet.length - packet.flits_delivered
            for packet in network.packets_in_flight.values()
        )
        pending = sum(interface.data_flits_pending for interface in network.interfaces)
        on_links = 0
        for router in network.routers:
            for link in router.data_out_links:
                if link is not None:
                    on_links += link.in_flight()
        buffered = sum(
            scheduler.pool.occupied
            for router in network.routers
            for scheduler in router.input_sched
        )
        located = pending + on_links + buffered
        if outstanding != located:
            raise InvariantViolation(
                f"flit conservation violated at cycle {now}: "
                f"{outstanding} data flits outstanding but {located} located "
                f"({pending} at NIs, {on_links} on links, {buffered} buffered)",
                cycle=now,
            )

    # -- virtual-channel networks ------------------------------------------

    def _check_vc(self, network: "VCNetwork", now: int) -> None:
        from repro.topology.mesh import opposite_port

        config = network.config
        for router in network.routers:
            node = router.node
            for port in range(len(router.in_queues)):
                occupancy = sum(len(queue) for queue in router.in_queues[port])
                if occupancy != router.pool_occupancy[port]:
                    raise InvariantViolation(
                        f"pool occupancy counter drifted at "
                        f"{self._where(node, port, now)}: counter says "
                        f"{router.pool_occupancy[port]}, queues hold {occupancy}",
                        node=node, port=port, cycle=now,
                    )
                if occupancy > config.buffers_per_input:
                    raise InvariantViolation(
                        f"buffer pool overflow at {self._where(node, port, now)}: "
                        f"{occupancy} flits in {config.buffers_per_input} buffers",
                        node=node, port=port, cycle=now,
                    )
            for port in router.connected_outputs:
                neighbor = network.mesh.neighbor(node, port)
                assert neighbor is not None
                downstream = network.routers[neighbor]
                in_port = opposite_port(port)
                data_link = router.out_data_links[port]
                credit_link = downstream.out_credit_links[in_port]
                assert data_link is not None and credit_link is not None
                for vc in range(config.num_vcs):
                    credits = router.out_credits[port][vc]
                    if not 0 <= credits <= config.buffers_per_vc:
                        raise InvariantViolation(
                            f"credit counter at {self._where(node, port, now)} "
                            f"vc {vc} is {credits}, outside "
                            f"[0, {config.buffers_per_vc}]",
                            node=node, port=port, cycle=now,
                        )
                    # The conservation audit must see in-flight items without
                    # draining them, which the Link API cannot offer (receive
                    # is destructive) -- the one sanctioned pipeline peek.
                    flits_on_wire = sum(
                        1
                        # frfc-lint: disable-next-line=D006
                        for slot in data_link._slots
                        for sent_vc, _ in slot
                        if sent_vc == vc
                    )
                    credits_on_wire = sum(
                        1
                        # frfc-lint: disable-next-line=D006
                        for slot in credit_link._slots
                        for sent_vc in slot
                        if sent_vc == vc
                    )
                    queued = len(downstream.in_queues[in_port][vc])
                    total = credits + flits_on_wire + credits_on_wire + queued
                    if total != config.buffers_per_vc:
                        raise InvariantViolation(
                            f"credit loop broken at {self._where(node, port, now)} "
                            f"vc {vc}: {credits} credits held + {flits_on_wire} "
                            f"flits on wire + {credits_on_wire} credits on wire "
                            f"+ {queued} queued = {total}, expected "
                            f"{config.buffers_per_vc}",
                            node=node, port=port, cycle=now,
                        )
        self._check_vc_flit_conservation(network, now)

    def _check_vc_flit_conservation(self, network: "VCNetwork", now: int) -> None:
        outstanding = sum(
            packet.length - packet.flits_delivered
            for packet in network.packets_in_flight.values()
        )
        at_interfaces = sum(
            sum(packet.length for packet in interface.packet_queue)
            + len(interface._pending)
            for interface in network.interfaces
        )
        on_links = 0
        for router in network.routers:
            for link in router.out_data_links:
                if link is not None:
                    on_links += link.in_flight()
        queued = sum(
            len(queue)
            for router in network.routers
            for port_queues in router.in_queues
            for queue in port_queues
        )
        located = at_interfaces + on_links + queued
        if outstanding != located:
            raise InvariantViolation(
                f"flit conservation violated at cycle {now}: "
                f"{outstanding} flits outstanding but {located} located "
                f"({at_interfaces} at NIs, {on_links} on links, {queued} queued)",
                cycle=now,
            )

    # -- formatting --------------------------------------------------------

    @staticmethod
    def _where(node: int, port: int, cycle: int) -> str:
        from repro.topology.mesh import PORT_NAMES

        port_name = PORT_NAMES.get(port, str(port))
        return f"router {node} port {port_name} (cycle {cycle})"
