"""Pipelined point-to-point links.

A link models a wire (or a bundle of wires) between two routers.  It is fully
pipelined: one *batch* of up to ``width`` items can be launched every cycle,
and each batch arrives exactly ``delay`` cycles later.  The paper's two
physical regimes map onto two parameterisations:

* **fast control** -- data links with ``delay=4`` and control/credit links
  with ``delay=1`` (control wires are four times faster), and
* **leading control** -- every link with ``delay=1``.

The control network additionally injects and forwards *two* control flits per
cycle (paper footnote 12), which is the ``width=2`` case.
"""

from __future__ import annotations

from typing import Generic, TypeVar

T = TypeVar("T")


class LinkOverflowError(Exception):
    """Raised when more than ``width`` items are launched in one cycle.

    Flow control is supposed to make this impossible; hitting it indicates a
    router bug, so it is an error rather than silent back-pressure.
    """


class Link(Generic[T]):
    """A fixed-delay, fixed-width pipelined channel.

    Items sent during cycle ``c`` are delivered by :meth:`receive` at cycle
    ``c + delay``.  Internally the in-flight items live in a circular buffer
    of ``delay + 1`` slots indexed by absolute cycle, so both operations are
    O(1) and no per-cycle sliding work is needed for idle links.
    """

    __slots__ = (
        "delay",
        "width",
        "total_sent",
        "_slots",
        "_sent_this_cycle",
        "_last_send_cycle",
    )

    def __init__(self, delay: int, width: int = 1) -> None:
        if delay < 1:
            raise ValueError(f"link delay must be >= 1 cycle, got {delay}")
        if width < 1:
            raise ValueError(f"link width must be >= 1 flit/cycle, got {width}")
        self.delay = delay
        self.width = width
        self.total_sent = 0  # lifetime launches, for utilization statistics
        self._slots: list[list[T]] = [[] for _ in range(delay + 1)]
        self._sent_this_cycle = 0
        self._last_send_cycle = -1

    def send(self, item: T, cycle: int) -> None:
        """Launch ``item`` onto the wire during ``cycle``."""
        if cycle != self._last_send_cycle:
            self._last_send_cycle = cycle
            self._sent_this_cycle = 0
        if self._sent_this_cycle >= self.width:
            raise LinkOverflowError(
                f"link of width {self.width} asked to carry more than "
                f"{self.width} items in cycle {cycle}"
            )
        self._sent_this_cycle += 1
        self.total_sent += 1
        self._slots[(cycle + self.delay) % (self.delay + 1)].append(item)

    def capacity_remaining(self, cycle: int) -> int:
        """How many more items can still be launched during ``cycle``."""
        if cycle != self._last_send_cycle:
            return self.width
        return self.width - self._sent_this_cycle

    def receive(self, cycle: int) -> list[T]:
        """Drain and return the items arriving at ``cycle``.

        Must be called at most once per cycle per link (arrivals are consumed).
        """
        index = cycle % (self.delay + 1)
        arrivals = self._slots[index]
        if not arrivals:
            return arrivals
        self._slots[index] = []
        return arrivals

    def in_flight(self) -> int:
        """Number of items currently on the wire (for occupancy statistics)."""
        return sum(len(slot) for slot in self._slots)

    def __repr__(self) -> str:
        return f"Link(delay={self.delay}, width={self.width})"
