"""Pipelined point-to-point links.

A link models a wire (or a bundle of wires) between two routers.  It is fully
pipelined: one *batch* of up to ``width`` items can be launched every cycle,
and each batch arrives exactly ``delay`` cycles later.  The paper's two
physical regimes map onto two parameterisations:

* **fast control** -- data links with ``delay=4`` and control/credit links
  with ``delay=1`` (control wires are four times faster), and
* **leading control** -- every link with ``delay=1``.

The control network additionally injects and forwards *two* control flits per
cycle (paper footnote 12), which is the ``width=2`` case.

Activity tracking
-----------------

The link keeps an O(1) ``pending`` count of items on the wire (``in_flight``
returns it), and optionally raises a *wake flag* on every ``send``: the
network hands each link a shared flag array and the consumer's index via
:meth:`set_wake`, and the active-set step loops use those flags to skip
routers with nothing to do.  The wake write is a commutative, idempotent
``flags[i] = 1`` performed inside the pipeline API, so it preserves the
delay >= 1 order-independence argument the phase-race analyzer relies on:
whether the consumer observes the flag during the send cycle or one cycle
later, the item is only *deliverable* at ``cycle + delay``, and a consumer
stays awake while any of its in-links has ``pending`` items.
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar

T = TypeVar("T")

#: ``next_arrival`` when the wire is empty -- later than any real cycle.
_NEVER = 1 << 60


class LinkOverflowError(Exception):
    """Raised when more than ``width`` items are launched in one cycle.

    Flow control is supposed to make this impossible; hitting it indicates a
    router bug, so it is an error rather than silent back-pressure.
    """


class Link(Generic[T]):
    """A fixed-delay, fixed-width pipelined channel.

    Items sent during cycle ``c`` are delivered by :meth:`receive` at cycle
    ``c + delay``.  Internally the in-flight items live in a circular buffer
    of ``delay + 1`` slots indexed by absolute cycle, so both operations are
    O(1) and no per-cycle sliding work is needed for idle links.
    """

    __slots__ = (
        "delay",
        "width",
        "total_sent",
        "pending",
        "next_arrival",
        "_slots",
        "_mod",
        "_sent_this_cycle",
        "_last_send_cycle",
        "_wake_flags",
        "_wake_index",
    )

    def __init__(self, delay: int, width: int = 1) -> None:
        if delay < 1:
            raise ValueError(f"link delay must be >= 1 cycle, got {delay}")
        if width < 1:
            raise ValueError(f"link width must be >= 1 flit/cycle, got {width}")
        self.delay = delay
        self.width = width
        self.total_sent = 0  # lifetime launches, for utilization statistics
        self.pending = 0  # items currently on the wire (== in_flight())
        # Earliest cycle any in-flight item is deliverable: consumers with
        # pending items skip the receive call entirely until it comes up.
        self.next_arrival = _NEVER
        self._slots: list[list[T]] = [[] for _ in range(delay + 1)]
        self._mod = delay + 1  # circular-buffer modulus, hoisted off the hot path
        self._sent_this_cycle = 0
        self._last_send_cycle = -1
        self._wake_flags: Optional[bytearray] = None
        self._wake_index = 0

    def set_wake(self, flags: bytearray, index: int) -> None:
        """Raise ``flags[index]`` on every send (network wiring, init-time)."""
        self._wake_flags = flags
        self._wake_index = index

    def send(self, item: T, cycle: int) -> None:
        """Launch ``item`` onto the wire during ``cycle``."""
        if cycle != self._last_send_cycle:
            # First launch of the cycle can never overflow (width >= 1).
            self._last_send_cycle = cycle
            self._sent_this_cycle = 1
        else:
            count = self._sent_this_cycle + 1
            if count > self.width:
                raise LinkOverflowError(
                    f"link of width {self.width} asked to carry more than "
                    f"{self.width} items in cycle {cycle}"
                )
            self._sent_this_cycle = count
        self.total_sent += 1
        self.pending += 1
        arrival = cycle + self.delay
        if arrival < self.next_arrival:
            self.next_arrival = arrival
        self._slots[arrival % self._mod].append(item)
        wake = self._wake_flags
        if wake is not None:
            wake[self._wake_index] = 1

    def capacity_remaining(self, cycle: int) -> int:
        """How many more items can still be launched during ``cycle``."""
        if cycle != self._last_send_cycle:
            return self.width
        return self.width - self._sent_this_cycle

    def receive(self, cycle: int) -> list[T]:
        """Drain and return the items arriving at ``cycle``.

        Must be called at most once per cycle per link (arrivals are consumed).
        """
        index = cycle % self._mod
        slots = self._slots
        arrivals = slots[index]
        if not arrivals:
            return arrivals
        slots[index] = []
        self.pending -= len(arrivals)
        if self.pending:
            # Remaining items land within (cycle, cycle + delay]; find the
            # earliest occupied slot (delay is tiny, so this scan is O(1)).
            mod = self._mod
            for k in range(1, self.delay + 1):
                if slots[(cycle + k) % mod]:
                    self.next_arrival = cycle + k
                    break
        else:
            self.next_arrival = _NEVER
        return arrivals

    def in_flight(self) -> int:
        """Number of items currently on the wire (for occupancy statistics)."""
        return self.pending

    def __repr__(self) -> str:
        return f"Link(delay={self.delay}, width={self.width})"
