"""Cycle-driven simulation substrate.

This subpackage provides the three primitives every router model in the
repository is built on:

* :class:`~repro.sim.kernel.Simulator` -- a synchronous, cycle-stepped
  simulation kernel with named phases and stop conditions,
* :class:`~repro.sim.link.Link` -- a pipelined point-to-point channel with a
  fixed propagation delay and a per-cycle width (flits per cycle), and
* :class:`~repro.sim.rng.DeterministicRng` -- the single source of randomness
  (arbitration, traffic, injection) so that every experiment is reproducible
  from one integer seed.
"""

from repro.sim.invariants import InvariantChecker, InvariantViolation
from repro.sim.kernel import CycleHook, SimulationError, Simulator
from repro.sim.link import Link, LinkOverflowError
from repro.sim.rng import DeterministicRng
from repro.sim.tracelog import TraceEvent, TraceLog

__all__ = [
    "CycleHook",
    "DeterministicRng",
    "InvariantChecker",
    "InvariantViolation",
    "Link",
    "LinkOverflowError",
    "SimulationError",
    "Simulator",
    "TraceEvent",
    "TraceLog",
]
