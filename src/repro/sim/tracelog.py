"""Backwards-compatible home of the packet trace log.

The trace log now lives in :mod:`repro.obs.trace`, built on the unified
event bus so it works for virtual-channel and wormhole networks as well as
flit-reservation ones.  This module re-exports it under the historical
``repro.sim.tracelog`` names; the FR output format is unchanged
byte-for-byte (see ``tests/obs/test_trace_golden.py``).
"""

from __future__ import annotations

from repro.obs.trace import TraceEvent, TraceLog

__all__ = ["TraceEvent", "TraceLog"]
