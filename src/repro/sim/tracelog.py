"""Event tracing for flit-reservation networks.

A :class:`TraceLog` attaches to an :class:`~repro.core.network.FRNetwork`
through its observability hooks and records a bounded log of network events
-- control flit arrivals, data flit arrivals, ejections -- without touching
the routers themselves (zero overhead when not attached).  It exists for
debugging and for teaching: `format_packet` prints the life of one packet as
a timeline, the programmatic equivalent of the paper's Figure 4(d).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:
    from repro.core.flits import ControlFlit, DataFlit
    from repro.core.network import FRNetwork

    ControlHook = Optional[Callable[["ControlFlit", int, int], None]]
    DataHook = Optional[Callable[["DataFlit", int, int], None]]
    EjectHook = Callable[["DataFlit", int], None]


@dataclass(frozen=True)
class TraceEvent:
    """One observed event in the life of a packet."""

    cycle: int
    kind: str  # "control_arrival" | "data_arrival" | "data_eject"
    node: int
    packet_id: int
    detail: str = ""

    def format(self) -> str:
        text = f"cycle {self.cycle:>6}  {self.kind:<16} node {self.node:>3}"
        if self.detail:
            text += f"  {self.detail}"
        return text


class TraceLog:
    """A bounded in-memory log of FR network events.

    ``capacity`` bounds memory for long runs (old events are dropped
    first).  Attach before stepping the simulator; detach to restore the
    network's previous hooks.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self._network: "FRNetwork | None" = None
        self._saved_hooks: list[tuple[object, ...]] = []

    # -- lifecycle ---------------------------------------------------------------

    def attach(self, network: "FRNetwork") -> "TraceLog":
        """Start recording events from ``network`` (chainable)."""
        if self._network is not None:
            raise RuntimeError("trace log already attached")
        self._network = network
        for router in network.routers:
            self._saved_hooks.append(
                (router, router.on_control_arrival, router.on_data_arrival,
                 router.eject_data)
            )
            router.on_control_arrival = self._wrap_control(router.on_control_arrival)
            router.on_data_arrival = self._wrap_data(router.on_data_arrival)
            router.eject_data = self._wrap_eject(router.eject_data, router.node)
        return self

    def detach(self) -> None:
        """Stop recording and restore the network's previous hooks."""
        for router, control_hook, data_hook, eject_hook in self._saved_hooks:
            router.on_control_arrival = control_hook
            router.on_data_arrival = data_hook
            router.eject_data = eject_hook
        self._saved_hooks.clear()
        self._network = None

    # -- hook wrappers ------------------------------------------------------------

    def _wrap_control(self, inner: "ControlHook") -> "Callable[[ControlFlit, int, int], None]":
        def hook(flit: "ControlFlit", node: int, cycle: int) -> None:
            if cycle >= 0:
                role = "head" if flit.is_head else "body"
                self.events.append(
                    TraceEvent(
                        cycle,
                        "control_arrival",
                        node,
                        flit.packet.packet_id,
                        detail=f"{role}, leads {len(flit.data_flits)}",
                    )
                )
            if inner is not None:
                inner(flit, node, cycle)

        return hook

    def _wrap_data(self, inner: "DataHook") -> "Callable[[DataFlit, int, int], None]":
        def hook(flit: "DataFlit", node: int, cycle: int) -> None:
            self.events.append(
                TraceEvent(
                    cycle,
                    "data_arrival",
                    node,
                    flit.packet.packet_id,
                    detail=f"flit #{flit.index}",
                )
            )
            if inner is not None:
                inner(flit, node, cycle)

        return hook

    def _wrap_eject(self, inner: "EjectHook", node: int) -> "EjectHook":
        def hook(flit: "DataFlit", cycle: int) -> None:
            self.events.append(
                TraceEvent(
                    cycle,
                    "data_eject",
                    node,
                    flit.packet.packet_id,
                    detail=f"flit #{flit.index}",
                )
            )
            inner(flit, cycle)

        return hook

    # -- queries -------------------------------------------------------------------

    def packet_events(self, packet_id: int) -> list[TraceEvent]:
        """All recorded events of one packet, in time order."""
        return sorted(
            (event for event in self.events if event.packet_id == packet_id),
            key=lambda event: event.cycle,
        )

    def format_packet(self, packet_id: int) -> str:
        """A printable timeline of one packet (cf. the paper's Figure 4d)."""
        events = self.packet_events(packet_id)
        if not events:
            return f"no events recorded for packet {packet_id}"
        lines = [f"packet {packet_id} timeline:"]
        lines.extend(event.format() for event in events)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
