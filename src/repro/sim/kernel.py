"""The synchronous simulation kernel.

Every network model in this repository is *cycle-stepped*: a single global
clock advances one cycle at a time, and on each cycle the network performs its
internal phases (control processing, switch traversal, link delivery...) in a
fixed order.  The kernel owns the clock and the stop conditions; the network
owns the semantics of a cycle.

The kernel is deliberately tiny.  Flit-level simulations of an 8x8 mesh spend
all their time inside the routers, so the kernel avoids any per-component
dispatch overhead: it calls exactly one ``step(cycle)`` callable per cycle.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Sequence


class SimulationError(Exception):
    """Raised when a run cannot make progress (e.g. a drain never finishes)."""


class SteppableNetwork(Protocol):
    """What the kernel requires of a network model."""

    def step(self, cycle: int) -> None:
        """Advance the network by one clock cycle."""


class CycleHook(Protocol):
    """An after-cycle observer, e.g. an invariant checker.

    ``check`` runs after the network has fully executed ``cycle``; raising
    from it aborts the run at the first corrupted cycle (see
    :mod:`repro.sim.invariants`).
    """

    def check(self, network: SteppableNetwork, cycle: int) -> None:
        """Inspect the network state after ``cycle`` completed."""


class StepProfiler(Protocol):
    """Wall-time accounting around batches of cycles.

    The kernel never reads the clock itself (rule D001): a profiler -- in
    practice :class:`repro.obs.profile.SimProfiler` -- is bracketed around
    each ``step`` batch and told how many cycles it covered.
    """

    def begin(self) -> None:
        """A batch of cycles is about to run."""

    def end(self, cycles: int) -> None:
        """The batch finished after ``cycles`` cycles (even on error)."""


class Simulator:
    """Drives a :class:`SteppableNetwork` through time.

    The simulator exposes the current cycle, single-step and run-until
    control, and guards every run with a hard cycle ceiling so a deadlocked
    or misconfigured network fails loudly instead of spinning forever.

    ``checker`` is an optional after-cycle hook (typically a
    :class:`repro.sim.invariants.InvariantChecker`): it is called with the
    network and the cycle just executed, on every cycle of every run, so a
    corrupted conservation law is reported within one cycle of appearing.
    ``observers`` are further after-cycle hooks (metrics samplers and the
    like) that run after the checker; ``profiler`` receives begin/end
    brackets around every step batch for wall-time accounting.
    """

    def __init__(
        self,
        network: SteppableNetwork,
        max_cycles: int = 10_000_000,
        checker: Optional[CycleHook] = None,
        observers: Sequence[CycleHook] = (),
        profiler: Optional[StepProfiler] = None,
    ) -> None:
        self.network = network
        self.cycle = 0
        self.max_cycles = max_cycles
        self.checker = checker
        self.observers = tuple(observers)
        self.profiler = profiler

    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles`` cycles."""
        if self.profiler is None:
            self._run(cycles)
            return
        start = self.cycle
        self.profiler.begin()
        try:
            self._run(cycles)
        finally:
            self.profiler.end(self.cycle - start)

    def _run(self, cycles: int) -> None:
        # Bound everything the loop reads to locals; only ``self.cycle`` is
        # live state (written back each iteration so an exception anywhere
        # leaves it on the cycle that failed, exactly as before).
        network = self.network
        step = network.step
        checker = self.checker
        observers = self.observers
        max_cycles = self.max_cycles
        for _ in range(cycles):
            cycle = self.cycle
            step(cycle)
            if checker is not None:
                checker.check(network, cycle)
            for observer in observers:
                observer.check(network, cycle)
            self.cycle = cycle + 1
            if cycle + 1 > max_cycles:
                raise SimulationError(
                    f"simulation exceeded the hard ceiling of "
                    f"{max_cycles} cycles"
                )

    def run_until(
        self,
        done: Callable[[], bool],
        deadline: Optional[int] = None,
        check_every: int = 1,
    ) -> int:
        """Step until ``done()`` is true; return the cycle it became true.

        ``deadline`` is an absolute cycle number past which the run is
        considered stuck and a :class:`SimulationError` is raised.
        ``check_every`` trades stop-condition precision for speed when the
        condition is expensive to evaluate.
        """
        limit = self.max_cycles if deadline is None else min(deadline, self.max_cycles)
        while not done():
            if self.cycle >= limit:
                raise SimulationError(
                    f"stop condition not reached by cycle {limit}; the network "
                    "is deadlocked, starved, or the deadline is too tight"
                )
            self.step(check_every)
        return self.cycle

    def __repr__(self) -> str:
        return f"Simulator(cycle={self.cycle})"
