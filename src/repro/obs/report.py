"""Aggregate attribution reports: tables, side-by-side comparison, JSON.

A :class:`LatencyAttributor` produces one
:class:`~repro.obs.attribution.PacketAttribution` per delivered packet;
this module rolls those up into an :class:`AttributionSummary` per
(config, load) point -- mean, median, p95, and share per component -- and
renders one or several summaries (FR next to VC is the interesting case)
as a fixed-width table or as a ``frfc-attribution/1`` JSON artifact.

The per-packet conservation invariant survives aggregation: the component
means of a summary sum to its mean latency exactly (in floating point, to
the precision of the division), which `validate_attribution` checks when
an artifact is loaded back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.attribution import COMPONENTS, LatencyAttributor, PacketAttribution
from repro.obs.exporters import atomic_write_json

#: Schema tag carried by every attribution JSON artifact.
ATTRIBUTION_SCHEMA = "frfc-attribution/1"


def _percentile(ordered: Sequence[int], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted samples (q in [0,100])."""
    position = (len(ordered) - 1) * q / 100.0
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(ordered[low])
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class ComponentStats:
    """One latency component's distribution over a set of packets."""

    mean: float
    p50: float
    p95: float
    maximum: int
    share: float  # fraction of total mean latency, in [0, 1]

    def as_dict(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.maximum,
            "share": self.share,
        }


@dataclass(frozen=True)
class AttributionSummary:
    """One (config, load) point's attribution rollup."""

    label: str
    model: str  # "fr" | "vc" | "mixed"
    packets: int
    unattributed: int
    mean_latency: float
    mean_hops: float
    denies: int
    components: dict[str, ComponentStats]

    @classmethod
    def from_records(
        cls,
        records: Sequence[PacketAttribution],
        label: str = "",
        unattributed: int = 0,
    ) -> "AttributionSummary":
        if not records:
            raise ValueError(f"no attribution records to summarize for {label!r}")
        count = len(records)
        mean_latency = sum(record.latency for record in records) / count
        models = {record.model for record in records}
        components: dict[str, ComponentStats] = {}
        for name in COMPONENTS:
            ordered = sorted(record.components[name] for record in records)
            mean = sum(ordered) / count
            components[name] = ComponentStats(
                mean=mean,
                p50=_percentile(ordered, 50.0),
                p95=_percentile(ordered, 95.0),
                maximum=ordered[-1],
                share=mean / mean_latency if mean_latency else 0.0,
            )
        return cls(
            label=label,
            model=models.pop() if len(models) == 1 else "mixed",
            packets=count,
            unattributed=unattributed,
            mean_latency=mean_latency,
            mean_hops=sum(record.hops for record in records) / count,
            denies=sum(record.denies for record in records),
            components=components,
        )

    @classmethod
    def from_attributor(
        cls,
        attributor: LatencyAttributor,
        label: str = "",
        measured_only: bool = True,
    ) -> "AttributionSummary":
        records = (
            attributor.measured_records() if measured_only else attributor.records
        )
        if not records:  # attach happened after the window (or no traffic)
            records = attributor.records
        return cls.from_records(
            records, label=label, unattributed=attributor.unattributed
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AttributionSummary":
        """Rebuild a summary from its ``as_dict`` form (ledger replay, diff)."""
        components = {
            name: ComponentStats(
                mean=stats["mean"],
                p50=stats["p50"],
                p95=stats["p95"],
                maximum=stats["max"],
                share=stats["share"],
            )
            for name, stats in payload["components"].items()
        }
        return cls(
            label=payload["label"],
            model=payload["model"],
            packets=payload["packets"],
            unattributed=payload["unattributed"],
            mean_latency=payload["mean_latency"],
            mean_hops=payload["mean_hops"],
            denies=payload["denies"],
            components=components,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "model": self.model,
            "packets": self.packets,
            "unattributed": self.unattributed,
            "mean_latency": self.mean_latency,
            "mean_hops": self.mean_hops,
            "denies": self.denies,
            "components": {
                name: stats.as_dict() for name, stats in self.components.items()
            },
        }


def format_attribution_table(summaries: Sequence[AttributionSummary]) -> str:
    """Render one or several summaries as a fixed-width component table.

    One column block per summary (FR and VC side by side is the intended
    comparison); one row per component plus a total row that restates the
    conservation invariant.
    """
    if not summaries:
        raise ValueError("no attribution summaries to format")
    name_width = max(len(name) for name in COMPONENTS + ("component", "total"))
    headers = [summary.label or summary.model or "run" for summary in summaries]
    columns: list[list[str]] = []
    for summary in summaries:
        cells = [
            f"{summary.components[name].mean:8.2f} "
            f"({summary.components[name].share:5.1%}) "
            f"p95={summary.components[name].p95:6.1f}"
            for name in COMPONENTS
        ]
        cells.append(f"{summary.mean_latency:8.2f} (n={summary.packets})")
        columns.append(cells)
    widths = [
        max(len(header), *(len(cell) for cell in cells))
        for header, cells in zip(headers, columns)
    ]
    row_names = list(COMPONENTS) + ["total"]
    lines = [
        "  ".join(
            ["component".ljust(name_width)]
            + [header.rjust(width) for header, width in zip(headers, widths)]
        ),
        "  ".join(["-" * name_width] + ["-" * width for width in widths]),
    ]
    for row, name in enumerate(row_names):
        lines.append(
            "  ".join(
                [name.ljust(name_width)]
                + [
                    columns[col][row].rjust(widths[col])
                    for col in range(len(summaries))
                ]
            )
        )
    return "\n".join(lines)


def build_attribution_report(
    summaries: Sequence[AttributionSummary],
    context: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the ``frfc-attribution/1`` payload."""
    report: dict[str, Any] = {
        "schema": ATTRIBUTION_SCHEMA,
        "component_order": list(COMPONENTS),
        "summaries": [summary.as_dict() for summary in summaries],
    }
    if context:
        report["context"] = dict(context)
    return report


def write_attribution_json(
    summaries: Sequence[AttributionSummary],
    path: str | Path,
    context: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Write the JSON artifact; returns the payload that was written."""
    report = build_attribution_report(summaries, context)
    atomic_write_json(path, report)
    return report


def validate_attribution(payload: Mapping[str, Any]) -> None:
    """Check an attribution artifact's schema and conservation invariant.

    Raises ``ValueError`` with a specific message on the first violation;
    used by tests and the CI artifact gate.
    """
    if payload.get("schema") != ATTRIBUTION_SCHEMA:
        raise ValueError(f"unexpected schema {payload.get('schema')!r}")
    if payload.get("component_order") != list(COMPONENTS):
        raise ValueError("component_order does not match the taxonomy")
    summaries = payload.get("summaries")
    if not isinstance(summaries, list) or not summaries:
        raise ValueError("artifact has no summaries")
    for summary in summaries:
        label = summary.get("label", "?")
        missing = [name for name in COMPONENTS if name not in summary["components"]]
        if missing:
            raise ValueError(f"summary {label!r} is missing components {missing}")
        total = sum(
            summary["components"][name]["mean"] for name in COMPONENTS
        )
        if not math.isclose(total, summary["mean_latency"], abs_tol=1e-6):
            raise ValueError(
                f"summary {label!r}: component means sum to {total}, "
                f"mean latency is {summary['mean_latency']}"
            )
        if summary["packets"] < 1:
            raise ValueError(f"summary {label!r} covers no packets")


def iter_waterfall_records(
    records: Iterable[PacketAttribution],
) -> Iterable[dict[str, Any]]:
    """Chrome-trace async sub-spans nesting components inside packet spans.

    Each segment becomes a ``b``/``e`` pair with the *same* category and id
    as the packet's existing span, so Perfetto stacks the component bars
    directly under the packet bar -- a per-packet latency waterfall.
    """
    for record in records:
        for segment in record.segments:
            common = {
                "cat": "packet",
                "id": record.packet_id,
                "name": segment.component,
                "pid": 0,
                "tid": record.source,
            }
            yield {
                **common,
                "ph": "b",
                "ts": max(segment.start, 0),
                "args": {"node": segment.node, "cycles": segment.cycles},
            }
            yield {**common, "ph": "e", "ts": max(segment.end, 0), "args": {}}
