"""One observed run, end to end: the object the harness drives.

An :class:`ObsSession` bundles the bus, collector, metrics registry, and
profiler that one instrumented run needs, derived from which outputs the
caller asked for:

* ``events_out``      -> JSONL event log (every kind);
* ``trace_out``       -> Chrome trace-event JSON (Perfetto-loadable);
* ``metrics_out``     -> CSV timeseries from the metrics registry;
* ``spatial_out``     -> long-format CSV of the per-coordinate timeseries
  sampled by a :class:`~repro.obs.spatial.SpatialMetricsRegistry`;
* ``heatmap_out``     -> ``frfc-heatmap/1`` JSON aggregating the spatial
  rows inside the measurement window (requesting either spatial output
  attaches the spatial registry);
* ``profile``         -> ``BENCH_obs.json`` with cycles/sec per phase;
* ``attribution_out`` -> per-component latency attribution JSON
  (``frfc-attribution/1``); when a trace is also requested, the trace
  gains per-packet component waterfalls;
* a manifest is always written alongside whichever artifacts exist
  (set ``manifest_out=""`` to suppress it).

Usage::

    session = ObsSession(trace_out="t.json", metrics_out="m.csv", profile=True)
    session.attach(network)
    simulator = Simulator(network, observers=session.observers,
                          profiler=session.profiler)
    ... run ...
    session.detach()
    artifacts = session.finalize(config=config, seed=seed, preset="quick")
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.obs.attribution import LatencyAttributor
from repro.obs.events import EventBus, EventCollector
from repro.obs.exporters import write_chrome_trace, write_events_jsonl, write_metrics_csv
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import NetworkProbe
from repro.obs.profile import SimProfiler
from repro.obs.report import AttributionSummary, write_attribution_json
from repro.obs.spatial import SpatialMetricsRegistry, write_spatial_csv

if TYPE_CHECKING:
    from repro.obs.progress import ProgressReporter
    from repro.sim.kernel import CycleHook
    from repro.sim.netbase import NetworkModel


class ObsSession:
    """Configures and finalizes the observability of one run."""

    def __init__(
        self,
        events_out: str | None = None,
        trace_out: str | None = None,
        metrics_out: str | None = None,
        spatial_out: str | None = None,
        heatmap_out: str | None = None,
        profile: bool = False,
        attribution_out: str | None = None,
        manifest_out: str = "obs_manifest.json",
        bench_out: str = "BENCH_obs.json",
        sample_every: int = 100,
        capacity: int = 1_000_000,
        progress: "ProgressReporter | None" = None,
    ) -> None:
        self.events_out = events_out
        self.trace_out = trace_out
        self.metrics_out = metrics_out
        self.spatial_out = spatial_out
        self.heatmap_out = heatmap_out
        self.attribution_out = attribution_out
        self.manifest_out = manifest_out
        self.bench_out = bench_out
        self.bus = EventBus()
        self.collector: EventCollector | None = None
        if events_out or trace_out:
            self.collector = EventCollector(capacity)
            self.bus.subscribe_all(self.collector)
        self.attributor: LatencyAttributor | None = None
        if attribution_out is not None:
            self.attributor = LatencyAttributor(self.bus, capacity=capacity)
        self.registry: MetricsRegistry | None = None
        if metrics_out:
            self.registry = MetricsRegistry(sample_every)
        self.spatial: SpatialMetricsRegistry | None = None
        if spatial_out is not None or heatmap_out is not None:
            # Like attribution_out, an empty string means "sample but write
            # nothing" -- sweeps aggregate the in-memory rows themselves.
            self.spatial = SpatialMetricsRegistry(sample_every)
        self.profiler: SimProfiler | None = SimProfiler() if profile else None
        self.progress = progress
        self.window: tuple[int, int] | None = None
        self._probe: NetworkProbe | None = None
        self._network: "NetworkModel | None" = None

    @property
    def observers(self) -> tuple["CycleHook", ...]:
        """After-cycle hooks to hand the simulator (metrics, progress)."""
        hooks: list["CycleHook"] = []
        if self.registry is not None:
            hooks.append(self.registry)
        if self.spatial is not None:
            hooks.append(self.spatial)
        if self.progress is not None:
            hooks.append(self.progress)
        return tuple(hooks)

    @property
    def events_dropped(self) -> int:
        """Events lost to capacity bounds so far (collector + attributor)."""
        dropped = self.collector.dropped if self.collector is not None else 0
        if self.attributor is not None:
            dropped += self.attributor.records_dropped
        return dropped

    def enter_phase(self, name: str) -> None:
        """Label the following cycles for the profiler and progress stream."""
        if self.profiler is not None:
            self.profiler.enter_phase(name)
        if self.progress is not None:
            self.progress.enter_phase(name)

    def note_window(self, start: int, end: int) -> None:
        """Record the measurement window (attribution separates warmup,
        the heatmap aggregates only measured spatial rows)."""
        self.window = (start, end)
        if self.attributor is not None:
            self.attributor.note_window(start, end)

    # -- lifecycle ----------------------------------------------------------

    def attach(self, network: "NetworkModel") -> "ObsSession":
        """Probe the network (when any event output is wanted; chainable)."""
        if self._network is not None:
            raise RuntimeError("observability session already attached")
        self._network = network
        if self.attributor is not None:
            self.attributor.configure_for(network)
        if self.collector is not None or self.attributor is not None:
            self._probe = NetworkProbe(self.bus).attach(network)
        if self.registry is not None:
            self.registry.install_standard_instruments(network)
        if self.spatial is not None:
            self.spatial.install_standard_instruments(network)
        return self

    def detach(self) -> None:
        """Restore the network's hooks (idempotent)."""
        if self._probe is not None:
            self._probe.detach()
            self._probe = None

    # -- artifact writing ---------------------------------------------------

    def finalize(
        self,
        config: Any,
        seed: int,
        preset: str = "",
        offered_load: float | None = None,
        packet_length: int | None = None,
        command: str = "",
        extra: Mapping[str, Any] | None = None,
    ) -> dict[str, str]:
        """Write every requested artifact; returns {artifact kind: path}."""
        self.detach()
        artifacts: dict[str, str] = {}
        run_name = "frfc"
        network = self._network
        if network is not None:
            run_name = f"frfc {network.flow_control_name}"
        if self.events_out and self.collector is not None:
            write_events_jsonl(self.collector, self.events_out)
            artifacts["events"] = self.events_out
        if self.trace_out and self.collector is not None:
            waterfall = self.attributor.records if self.attributor else None
            write_chrome_trace(
                self.collector, self.trace_out, run_name=run_name, attribution=waterfall
            )
            artifacts["trace"] = self.trace_out
        if self.metrics_out and self.registry is not None:
            write_metrics_csv(self.registry.timeseries, self.metrics_out)
            artifacts["metrics"] = self.metrics_out
        if self.spatial_out and self.spatial is not None and network is not None:
            write_spatial_csv(self.spatial, network, self.spatial_out)
            artifacts["spatial"] = self.spatial_out
        if self.heatmap_out and self.spatial is not None and network is not None:
            if self.spatial.samples:
                from repro.obs.heatmap import build_heatmap, write_heatmap_json

                # Aggregate the measured window when it holds sampled rows;
                # a run too short for the cadence falls back to every row.
                window = self.window
                if window is not None and not self.spatial.rows_in_window(*window):
                    window = None
                payload = build_heatmap(
                    self.spatial,
                    network.mesh,
                    label=self._summary_label(config, offered_load),
                    window=window,
                    context={
                        "seed": seed,
                        "preset": preset,
                        "offered_load": offered_load,
                        "packet_length": packet_length,
                    },
                )
                write_heatmap_json(payload, self.heatmap_out)
                artifacts["heatmap"] = self.heatmap_out
        if self.attribution_out and self.attributor is not None:
            summary = self.attribution_summary(
                label=self._summary_label(config, offered_load)
            )
            if summary is not None:
                write_attribution_json(
                    [summary],
                    self.attribution_out,
                    context={
                        "seed": seed,
                        "preset": preset,
                        "offered_load": offered_load,
                        "packet_length": packet_length,
                    },
                )
                artifacts["attribution"] = self.attribution_out
        if self.profiler is not None:
            bench = self.profiler.report()
            if extra:
                bench = {**bench, **dict(extra)}
            write_manifest(bench, self.bench_out)
            artifacts["bench"] = self.bench_out
        if self.manifest_out:
            mesh = ""
            if network is not None:
                mesh = f"{network.mesh.width}x{network.mesh.height}"
            manifest = build_manifest(
                config=config,
                seed=seed,
                preset=preset,
                offered_load=offered_load,
                packet_length=packet_length,
                mesh=mesh,
                command=command,
                artifacts=artifacts,
                metrics_summary=self.registry.summary() if self.registry else None,
                spatial_summary=self.spatial.summary() if self.spatial else None,
                events_emitted=self.bus.events_emitted if self.collector else None,
                events_dropped=self.collector.dropped if self.collector else None,
            )
            write_manifest(manifest, self.manifest_out)
            artifacts["manifest"] = self.manifest_out
        return artifacts

    def declared_artifacts(self) -> dict[str, str]:
        """The artifact paths this session was asked to produce.

        Keyed like :meth:`finalize`'s return value; used by the harness to
        record artifact provenance in the run ledger before/without calling
        ``finalize`` itself.
        """
        declared: dict[str, str] = {}
        for kind, path in (
            ("events", self.events_out),
            ("trace", self.trace_out),
            ("metrics", self.metrics_out),
            ("spatial", self.spatial_out),
            ("heatmap", self.heatmap_out),
            ("attribution", self.attribution_out),
            ("manifest", self.manifest_out),
        ):
            if path:
                declared[kind] = path
        return declared

    def attribution_summary(self, label: str = "") -> AttributionSummary | None:
        """Roll the attributor's records up (None when nothing was recorded)."""
        if self.attributor is None or not self.attributor.records:
            return None
        return AttributionSummary.from_attributor(self.attributor, label=label)

    @staticmethod
    def _summary_label(config: Any, offered_load: float | None) -> str:
        name = getattr(config, "name", None) or type(config).__name__
        if offered_load is None:
            return str(name)
        return f"{name} load={offered_load:.2f}"
