"""Live progress telemetry for multi-point harness runs.

A :class:`ProgressReporter` is a :class:`~repro.sim.kernel.CycleHook`: the
simulator calls ``check`` after every cycle, and every ``heartbeat_cycles``
cycles the reporter emits one human line to stderr and one machine-readable
JSON object to ``progress.jsonl`` -- phase, point i/N, simulated cycles,
cycles/sec, and an ETA extrapolated from completed points.  The sweep
harness brackets each point with ``begin_point``/``end_point`` (recording
whether the point was a ledger cache hit or freshly simulated).

This module is the *only* place besides :mod:`repro.obs.profile` that reads
the wall clock (line-scoped D001 suppressions below), and nothing it
measures flows back into simulated state or any digest: the reporter never
touches the network object its hook receives, which is how the attached/
detached digest property tests can demand bit-identical results with and
without it.  The JSONL stream is append-only (interrupted sweeps resume by
appending), and wall-clock values appear only in this stream -- never in a
ledger identity or result digest.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Optional, TextIO

from repro.sim.kernel import SteppableNetwork

#: Schema tag carried by every progress.jsonl line.
PROGRESS_SCHEMA = "frfc-progress/1"


def _now() -> float:
    return time.perf_counter()  # frfc-lint: disable=D001


class ProgressReporter:
    """Heartbeat telemetry: stderr lines plus an append-only JSONL stream."""

    def __init__(
        self,
        jsonl_out: str = "",
        stream: Optional[TextIO] = None,
        heartbeat_cycles: int = 2000,
        label: str = "",
    ) -> None:
        self.jsonl_out = jsonl_out
        self.stream = stream if stream is not None else sys.stderr
        self.heartbeat_cycles = max(1, heartbeat_cycles)
        self.label = label
        self.phase = ""
        self.point_index = 0
        self.point_total = 0
        self.point_label = ""
        self.points_simulated = 0
        self.points_hit = 0
        self._point_cycles = 0
        self._since_heartbeat = 0
        self._point_start = 0.0
        self._completed_walls: list[float] = []

    # -- CycleHook protocol --------------------------------------------------

    def check(self, network: SteppableNetwork, cycle: int) -> None:
        """After-cycle hook; pure observer -- never touches ``network``."""
        self._point_cycles += 1
        self._since_heartbeat += 1
        if self._since_heartbeat >= self.heartbeat_cycles:
            self._since_heartbeat = 0
            self._emit("heartbeat", cycle=cycle)

    # -- harness bracketing --------------------------------------------------

    def enter_phase(self, name: str) -> None:
        """Label the following cycles ("warmup", "sample", "drain")."""
        self.phase = name

    def begin_point(self, index: int, total: int, label: str) -> None:
        """A sweep point is starting (1-based ``index`` of ``total``)."""
        self.point_index = index
        self.point_total = total
        self.point_label = label
        self.phase = ""
        self._point_cycles = 0
        self._since_heartbeat = 0
        self._point_start = _now()
        self._emit("begin_point")

    def end_point(self, cache_hit: bool, summary: str = "") -> None:
        """The current point finished (replayed from the ledger or simulated)."""
        elapsed = _now() - self._point_start
        if cache_hit:
            self.points_hit += 1
        else:
            self.points_simulated += 1
            self._completed_walls.append(elapsed)
        self._emit(
            "end_point",
            cache_hit=cache_hit,
            wall_seconds=round(elapsed, 3),
            summary=summary,
        )

    def close(self, summary: str = "") -> None:
        """Emit the final run summary line."""
        self._emit("done", summary=summary)

    # -- emission ------------------------------------------------------------

    def _eta_seconds(self) -> Optional[float]:
        """Mean wall time of completed simulated points x points remaining."""
        if not self._completed_walls or not self.point_total:
            return None
        remaining = self.point_total - self.point_index
        if remaining < 0:
            remaining = 0
        mean_wall = sum(self._completed_walls) / len(self._completed_walls)
        current = _now() - self._point_start
        this_point = mean_wall - current
        if this_point < 0.0:
            this_point = 0.0
        return remaining * mean_wall + this_point

    def _emit(self, event: str, **fields: Any) -> None:
        elapsed = _now() - self._point_start
        payload: dict[str, Any] = {
            "schema": PROGRESS_SCHEMA,
            "event": event,
            "label": self.label,
            "point": self.point_index,
            "total": self.point_total,
            "point_label": self.point_label,
            "phase": self.phase,
            "point_cycles": self._point_cycles,
            "points_simulated": self.points_simulated,
            "points_hit": self.points_hit,
        }
        if event == "heartbeat":
            rate = self._point_cycles / elapsed if elapsed > 0 else 0.0
            payload["cycles_per_second"] = round(rate, 1)
            eta = self._eta_seconds()
            if eta is not None:
                payload["eta_seconds"] = round(eta, 1)
        payload.update(fields)
        self._write_line(payload)

    def _render(self, payload: dict[str, Any]) -> str:
        bits = ["[frfc]"]
        if self.label:
            bits.append(self.label)
        if self.point_total:
            bits.append(f"point {self.point_index}/{self.point_total}")
        if self.point_label:
            bits.append(self.point_label)
        event = payload["event"]
        if event == "heartbeat":
            if self.phase:
                bits.append(f"phase={self.phase}")
            bits.append(f"cycle={self._point_cycles}")
            rate = payload.get("cycles_per_second")
            if rate:
                bits.append(f"{rate:.0f} c/s")
            eta = payload.get("eta_seconds")
            if eta is not None:
                bits.append(f"eta={eta:.0f}s")
        elif event == "begin_point":
            bits.append("start")
        elif event == "end_point":
            bits.append("cache-hit" if payload["cache_hit"] else "simulated")
            bits.append(f"({payload['wall_seconds']:.2f}s)")
            if payload.get("summary"):
                bits.append(str(payload["summary"]))
        elif event == "done":
            bits.append("done")
            if payload.get("summary"):
                bits.append(str(payload["summary"]))
        return " ".join(bits)

    def _write_line(self, payload: dict[str, Any]) -> None:
        self.stream.write(self._render(payload) + "\n")
        self.stream.flush()
        if self.jsonl_out:
            # Append-only on purpose: a resumed sweep extends the stream, and
            # D014 reserves truncating writes for the atomic writers.
            with open(self.jsonl_out, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, sort_keys=True) + "\n")
