"""Simulator self-profiling: cycles/sec and per-phase wall time.

This is the one module in ``src/repro`` allowed to read the wall clock
(line-scoped frfc-lint D001 suppressions below): the profiler measures the
*simulator*, never the simulated network, and none of its numbers feed back
into any model decision -- ``BENCH_obs.json`` is explicitly a profiling
artifact, excluded from the byte-identical-exports guarantee the other
exporters make.

The :class:`~repro.sim.kernel.Simulator` calls ``begin()`` before and
``end(cycles)`` after each ``step`` batch, so the kernel itself contains no
clock reads; the harness brackets its stages with ``enter_phase`` to split
the total into warmup/sample/drain.
"""

from __future__ import annotations

import time
from typing import Any


class SimProfiler:
    """Accumulates wall time per harness phase and total cycles simulated."""

    def __init__(self) -> None:
        self.phase = "run"
        self.phase_wall: dict[str, float] = {}
        self.phase_cycles: dict[str, int] = {}
        self.total_cycles = 0
        self.total_wall = 0.0
        self._batch_start: float | None = None

    def enter_phase(self, name: str) -> None:
        """Attribute subsequent step batches to ``name`` (e.g. "warmup")."""
        self.phase = name

    def begin(self) -> None:
        """Called by the simulator just before a batch of cycles runs."""
        self._batch_start = time.perf_counter()  # frfc-lint: disable=D001

    def end(self, cycles: int) -> None:
        """Called by the simulator after ``cycles`` cycles completed."""
        if self._batch_start is None:
            return
        elapsed = time.perf_counter() - self._batch_start  # frfc-lint: disable=D001
        self._batch_start = None
        self.total_wall += elapsed
        self.total_cycles += cycles
        self.phase_wall[self.phase] = self.phase_wall.get(self.phase, 0.0) + elapsed
        self.phase_cycles[self.phase] = self.phase_cycles.get(self.phase, 0) + cycles

    @property
    def cycles_per_second(self) -> float:
        if self.total_wall <= 0.0:
            return 0.0
        return self.total_cycles / self.total_wall

    def report(self) -> dict[str, Any]:
        """The ``BENCH_obs.json`` payload."""
        phases = {
            name: {
                "cycles": self.phase_cycles.get(name, 0),
                "wall_seconds": round(self.phase_wall[name], 6),
                "cycles_per_second": round(
                    self.phase_cycles.get(name, 0) / self.phase_wall[name], 1
                )
                if self.phase_wall[name] > 0
                else 0.0,
            }
            for name in self.phase_wall
        }
        return {
            "schema": "frfc-obs-bench/1",
            "cycles": self.total_cycles,
            "wall_seconds": round(self.total_wall, 6),
            "cycles_per_second": round(self.cycles_per_second, 1),
            "phases": phases,
        }
