"""Per-packet critical-path latency attribution over the event bus.

The paper's central claim is about *where* latency goes: flit-reservation
flow control removes buffer turnaround (propagation + credit delay) and
routing/arbitration from the data path, which is why its latency curves sit
below virtual-channel flow control's.  A :class:`LatencyAttributor`
demonstrates that mechanism instead of only its endpoint: it subscribes to
the typed event bus, reconstructs each packet's lifecycle from the events
the probe already emits, and decomposes the packet's end-to-end latency
into named components that **sum exactly** to the measured latency.

The decomposition follows the packet's *critical flit* -- the flit whose
ejection completes the packet -- through a chain of milestones: creation,
arrival at the source router, per-hop dwells, per-hop link traversals, and
the final ejection.  Components are differences of consecutive milestones,
so conservation is exact by telescoping; any reconstruction that cannot
produce non-negative components from a complete milestone chain is counted
in ``unattributed`` rather than silently fudged.

Component taxonomy (shared across models; a component a model's data path
cannot produce is structurally zero for it, which *is* the paper's point):

``source_queueing``
    Creation to the critical flit's arrival at the source router.  Covers
    NI queueing, serialization behind earlier flits, VC allocation (VC/
    wormhole) or control processing + injection-slot reservation and the
    configured injection lead (FR).
``routing_arbitration``
    The mandatory one-cycle routing/arbitration pipeline per intermediate
    router hop (VC/wormhole).  Zero for FR: data flits are pre-scheduled
    and never arbitrate.
``turnaround_stall``
    Time beyond that pipeline cycle spent waiting in an input buffer for a
    credit to return or an arbitration to be won (VC/wormhole) -- the
    buffer-turnaround inefficiency of the paper's Figure 1.  Zero for FR.
``reservation_wait``
    Time a data flit waits in (or bypasses) an input buffer for its
    reserved departure slot (FR).  Zero for VC/wormhole.
``channel_traversal``
    Cycles spent on inter-router data links: the physical lower bound.
``ejection``
    Dwell at the destination router from the critical flit's arrival to
    its ejection (an eject-port arbitration in VC/wormhole, a reserved --
    usually bypassed -- ejection slot in FR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.obs import events as ev
from repro.obs.events import EventBus, NetworkEvent

if TYPE_CHECKING:
    from repro.sim.netbase import NetworkModel

#: Every latency component, in waterfall (milestone) order.
COMPONENTS: tuple[str, ...] = (
    "source_queueing",
    "routing_arbitration",
    "turnaround_stall",
    "reservation_wait",
    "channel_traversal",
    "ejection",
)

#: The event kinds the attributor consumes (probes gate hook installation
#: on these via ``bus.wants``, so attaching an attributor never pays for
#: buffer or credit events).
SUBSCRIBED_KINDS: tuple[str, ...] = (
    ev.PACKET_CREATED,
    ev.DATA_ARRIVAL,
    ev.FLIT_FORWARD,
    ev.DATA_EJECT,
    ev.RESERVATION_DENY,
    ev.PACKET_DELIVERED,
)

# Per-flit timeline entry tags (compact ints, hot path).
_ARRIVAL = 0
_FORWARD = 1
_EJECT = 2


class AttributionError(ValueError):
    """A lifecycle that should be attributable failed its invariants."""


@dataclass(frozen=True)
class Segment:
    """One contiguous span of a packet's life assigned to one component."""

    component: str
    start: int
    end: int
    node: int

    @property
    def cycles(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class PacketAttribution:
    """One packet's end-to-end latency, decomposed.

    ``components`` maps every name in :data:`COMPONENTS` to its cycle
    count; the values sum exactly to ``latency`` (enforced at
    construction).  ``segments`` is the same decomposition as absolute
    intervals in milestone order, ready for a waterfall rendering;
    zero-length spans are omitted.
    """

    packet_id: int
    source: int
    destination: int
    created_cycle: int
    delivered_cycle: int
    model: str  # "fr" | "vc"
    critical_flit: int
    hops: int  # inter-router links traversed by the critical flit
    denies: int  # reservation_deny events seen for this packet (FR)
    measured: bool
    components: dict[str, int]
    segments: tuple[Segment, ...]

    @property
    def latency(self) -> int:
        return self.delivered_cycle - self.created_cycle

    def __post_init__(self) -> None:
        total = sum(self.components.values())
        if total != self.latency:
            raise AttributionError(
                f"packet {self.packet_id}: components sum to {total} but "
                f"measured latency is {self.latency}"
            )
        negative = {k: v for k, v in self.components.items() if v < 0}
        if negative:
            raise AttributionError(
                f"packet {self.packet_id}: negative components {negative}"
            )


class _OpenPacket:
    """Event accumulator for a packet between creation and delivery."""

    __slots__ = ("created", "source", "flits", "denies", "has_forwards")

    def __init__(self, created: int, source: int) -> None:
        self.created = created
        self.source = source
        # flit index -> [(cycle, tag, node), ...] in emission (= time) order.
        self.flits: dict[int, list[tuple[int, int, int]]] = {}
        self.denies = 0
        self.has_forwards = False


class LatencyAttributor:
    """Reconstructs packet lifecycles from bus events and attributes them.

    Subscribe it to a bus *before* a probe attaches (``subscribe`` sets the
    kinds ``bus.wants``), or construct it with the bus directly::

        bus = EventBus()
        attributor = LatencyAttributor(bus)
        probe = NetworkProbe(bus).attach(network)
        attributor.configure_for(network)
        ... run ...
        records = attributor.records

    ``data_link_delay`` is needed for flit-reservation streams (the data
    plane emits no departure event; a hop's departure is recovered as the
    next hop's arrival minus the link delay).  ``configure_for`` reads it
    from a network's configuration.

    The attributor is a pure observer: it holds per-packet state only
    between creation and delivery, and completed records are bounded by
    ``capacity`` (discards are counted in ``records_dropped``, never
    silent).  Packets whose lifecycle was not fully observed -- created
    before attach, events missing, or an inconsistent milestone chain --
    are counted in ``unattributed``; ``last_failure`` keeps the most recent
    reason for debugging.
    """

    def __init__(
        self,
        bus: EventBus | None = None,
        data_link_delay: int = 1,
        capacity: int = 1_000_000,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"attribution capacity must be positive, got {capacity}")
        self.data_link_delay = data_link_delay
        self.capacity = capacity
        self.records: list[PacketAttribution] = []
        self.records_dropped = 0
        self.unattributed = 0
        self.last_failure = ""
        self.window: tuple[int, int] | None = None
        self._open: dict[int, _OpenPacket] = {}
        if bus is not None:
            self.subscribe(bus)

    # -- wiring --------------------------------------------------------------

    def subscribe(self, bus: EventBus) -> "LatencyAttributor":
        """Subscribe to exactly the kinds the reconstruction needs."""
        bus.subscribe(ev.PACKET_CREATED, self._on_created)
        bus.subscribe(ev.PACKET_DELIVERED, self._on_delivered)
        bus.subscribe(ev.DATA_ARRIVAL, self._on_flit_event(_ARRIVAL))
        bus.subscribe(ev.FLIT_FORWARD, self._on_forward)
        bus.subscribe(ev.DATA_EJECT, self._on_flit_event(_EJECT))
        bus.subscribe(ev.RESERVATION_DENY, self._on_deny)
        return self

    def configure_for(self, network: "NetworkModel") -> "LatencyAttributor":
        """Read model parameters (the data link delay) off a network."""
        config = getattr(network, "config", None)
        delay = getattr(config, "data_link_delay", None)
        if delay is not None:
            self.data_link_delay = int(delay)
        return self

    def note_window(self, start: int, end: int) -> None:
        """Mark packets created in ``[start, end)`` as the measured sample."""
        self.window = (start, end)

    # -- event handlers ------------------------------------------------------

    def _on_created(self, event: NetworkEvent) -> None:
        self._open[event.packet_id] = _OpenPacket(event.cycle, event.node)

    def _on_flit_event(self, tag: int) -> "_FlitHandler":
        return _FlitHandler(self, tag)

    def _on_forward(self, event: NetworkEvent) -> None:
        state = self._open.get(event.packet_id)
        if state is None:
            return
        state.has_forwards = True
        state.flits.setdefault(event.flit_index, []).append(
            (event.cycle, _FORWARD, event.node)
        )

    def _on_deny(self, event: NetworkEvent) -> None:
        state = self._open.get(event.packet_id)
        if state is not None:
            state.denies += 1

    def _on_delivered(self, event: NetworkEvent) -> None:
        state = self._open.pop(event.packet_id, None)
        if state is None:
            self.unattributed += 1  # created before the attributor attached
            return
        try:
            record = self._reconstruct(event.packet_id, state, event)
        except AttributionError as failure:
            self.unattributed += 1
            self.last_failure = str(failure)
            return
        if len(self.records) >= self.capacity:
            self.records_dropped += 1
            return
        self.records.append(record)

    # -- reconstruction ------------------------------------------------------

    def _reconstruct(
        self, packet_id: int, state: _OpenPacket, delivered: NetworkEvent
    ) -> PacketAttribution:
        delivered_cycle = delivered.cycle
        critical = self._critical_flit(packet_id, state, delivered_cycle)
        timeline = state.flits[critical]
        measured = False
        if self.window is not None:
            measured = self.window[0] <= state.created < self.window[1]
        if state.has_forwards:
            model, components, segments, hops = "vc", *self._decompose_vc(
                packet_id, state, timeline
            )
        else:
            model, components, segments, hops = "fr", *self._decompose_fr(
                packet_id, state, timeline
            )
        return PacketAttribution(
            packet_id=packet_id,
            source=state.source,
            destination=delivered.node,
            created_cycle=state.created,
            delivered_cycle=delivered_cycle,
            model=model,
            critical_flit=critical,
            hops=hops,
            denies=state.denies,
            measured=measured,
            components=components,
            segments=tuple(segments),
        )

    def _critical_flit(
        self, packet_id: int, state: _OpenPacket, delivered_cycle: int
    ) -> int:
        """The flit whose ejection completed the packet (ties: lowest index)."""
        candidates = sorted(
            index
            for index, timeline in state.flits.items()
            if timeline
            and timeline[-1][1] == _EJECT
            and timeline[-1][0] == delivered_cycle
        )
        if not candidates:
            raise AttributionError(
                f"packet {packet_id}: no flit ejected at the delivery cycle "
                f"{delivered_cycle} (lifecycle only partially observed?)"
            )
        return candidates[0]

    def _decompose_fr(
        self, packet_id: int, state: _OpenPacket, timeline: list[tuple[int, int, int]]
    ) -> tuple[dict[str, int], list[Segment], int]:
        """FR critical path: arrivals at each node plus the final ejection.

        A hop's departure is not a separate event; with deterministic link
        delivery it is exactly the next hop's arrival minus the data link
        delay, so the per-hop dwell (``reservation_wait``) and the link
        time split without ambiguity.
        """
        arrivals = [(cycle, node) for cycle, tag, node in timeline if tag == _ARRIVAL]
        ejects = [(cycle, node) for cycle, tag, node in timeline if tag == _EJECT]
        if len(ejects) != 1 or len(arrivals) < 2:
            raise AttributionError(
                f"packet {packet_id}: flit-reservation milestone chain has "
                f"{len(arrivals)} arrivals and {len(ejects)} ejections"
            )
        eject_cycle, eject_node = ejects[0]
        components = dict.fromkeys(COMPONENTS, 0)
        segments: list[Segment] = []
        first_cycle, first_node = arrivals[0]
        self._add(
            components, segments, "source_queueing", state.created, first_cycle, first_node
        )
        delay = self.data_link_delay
        for (cycle, node), (next_cycle, _next_node) in zip(arrivals, arrivals[1:]):
            departure = next_cycle - delay
            if departure < cycle:
                raise AttributionError(
                    f"packet {packet_id}: consecutive arrivals {cycle} -> "
                    f"{next_cycle} closer than the {delay}-cycle link delay"
                )
            self._add(components, segments, "reservation_wait", cycle, departure, node)
            self._add(components, segments, "channel_traversal", departure, next_cycle, node)
        last_cycle, last_node = arrivals[-1]
        if eject_node != last_node or eject_cycle < last_cycle:
            raise AttributionError(
                f"packet {packet_id}: ejection at node {eject_node} cycle "
                f"{eject_cycle} does not follow the last arrival at node "
                f"{last_node} cycle {last_cycle}"
            )
        self._add(components, segments, "ejection", last_cycle, eject_cycle, last_node)
        return components, segments, len(arrivals) - 1

    def _decompose_vc(
        self, packet_id: int, state: _OpenPacket, timeline: list[tuple[int, int, int]]
    ) -> tuple[dict[str, int], list[Segment], int]:
        """VC/wormhole critical path: strict arrival/forward alternation.

        Every router dwell ends in an observed ``flit_forward``; the final
        forward is the ejection crossing (the ``data_eject`` event shares
        its cycle).  Intermediate dwells split into the mandatory 1-cycle
        routing/arbitration stage plus any turnaround stall beyond it; the
        destination dwell is the ejection component.
        """
        moves = [entry for entry in timeline if entry[1] != _EJECT]
        ejects = [entry for entry in timeline if entry[1] == _EJECT]
        valid = (
            len(ejects) == 1
            and len(moves) >= 2
            and len(moves) % 2 == 0
            and all(entry[1] == (_ARRIVAL, _FORWARD)[i % 2] for i, entry in enumerate(moves))
        )
        if not valid:
            raise AttributionError(
                f"packet {packet_id}: virtual-channel milestone chain is not "
                f"an arrival/forward alternation ({len(moves)} moves, "
                f"{len(ejects)} ejections)"
            )
        eject_cycle, eject_node = ejects[0][0], ejects[0][2]
        hops = [
            (moves[i][0], moves[i + 1][0], moves[i][2])  # (arrival, forward, node)
            for i in range(0, len(moves), 2)
        ]
        for arrival, forward, node in hops:
            if forward < arrival or moves[0][2] != state.source:
                raise AttributionError(
                    f"packet {packet_id}: dwell at node {node} runs backwards "
                    f"({arrival} -> {forward})"
                )
        last_arrival, last_forward, last_node = hops[-1]
        if last_node != eject_node or last_forward != eject_cycle:
            raise AttributionError(
                f"packet {packet_id}: final forward (node {last_node}, cycle "
                f"{last_forward}) is not the ejection (node {eject_node}, "
                f"cycle {eject_cycle})"
            )
        components = dict.fromkeys(COMPONENTS, 0)
        segments: list[Segment] = []
        self._add(
            components, segments, "source_queueing", state.created, hops[0][0], state.source
        )
        for index, (arrival, forward, node) in enumerate(hops):
            if index == len(hops) - 1:
                self._add(components, segments, "ejection", arrival, forward, node)
            else:
                pipeline_end = min(arrival + 1, forward)
                self._add(
                    components, segments, "routing_arbitration", arrival, pipeline_end, node
                )
                self._add(
                    components, segments, "turnaround_stall", pipeline_end, forward, node
                )
                next_arrival = hops[index + 1][0]
                self._add(
                    components, segments, "channel_traversal", forward, next_arrival, node
                )
        return components, segments, len(hops) - 1

    @staticmethod
    def _add(
        components: dict[str, int],
        segments: list[Segment],
        component: str,
        start: int,
        end: int,
        node: int,
    ) -> None:
        components[component] += end - start
        if end > start:
            segments.append(Segment(component, start, end, node))

    # -- results -------------------------------------------------------------

    @property
    def open_packets(self) -> int:
        """Packets created but not yet delivered (state still held)."""
        return len(self._open)

    def measured_records(self) -> list[PacketAttribution]:
        """The records inside the measurement window (all, if none was set)."""
        if self.window is None:
            return list(self.records)
        return [record for record in self.records if record.measured]

    def by_packet(self) -> dict[int, PacketAttribution]:
        """Records keyed by packet id (for the waterfall exporter)."""
        return {record.packet_id: record for record in self.records}

    def iter_records(self, measured_only: bool = False) -> Iterable[PacketAttribution]:
        return self.measured_records() if measured_only else iter(self.records)


class _FlitHandler:
    """A per-tag bus subscriber appending to the owning packet's timeline."""

    __slots__ = ("attributor", "tag")

    def __init__(self, attributor: LatencyAttributor, tag: int) -> None:
        self.attributor = attributor
        self.tag = tag

    def __call__(self, event: NetworkEvent) -> None:
        state = self.attributor._open.get(event.packet_id)
        if state is None:
            return
        state.flits.setdefault(event.flit_index, []).append(
            (event.cycle, self.tag, event.node)
        )
