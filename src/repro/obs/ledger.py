"""The run ledger: a content-addressed store of simulation results.

Every harness run can be identified *before it executes*: its configuration,
offered load, seed, measurement preset, topology, traffic parameters, the
checkout's git SHA, and a **code digest** over the model's import closure
(reusing the isolation prover's closure walker, so editing a module that the
model can actually reach invalidates exactly the affected models and nothing
else).  The ledger keys each run record by the SHA-256 of that canonicalised
identity and stores it as one JSON file under ``.frfc/runs/``.

Records (schema ``frfc-runrecord/1``) carry the measured result plus its own
digest, the attribution summary and profiler phase timings when the run was
observed, ``events_dropped``, and artifact paths.  Writes are atomic (temp +
rename, via :func:`repro.obs.exporters.atomic_write_text`); reads re-verify
the stored content hash, result digest, and identity hash against the file
name -- a mismatch raises :class:`LedgerCorruptionError` and is **never** a
silent stale hit (``lookup`` degrades a corrupt record to a loudly-reported
miss so the sweep re-simulates and overwrites it).

Nothing in a record depends on the wall clock except the explicitly labelled
``profile`` block (the profiler's own telemetry), so a cache hit replays the
recorded result byte-identically to a fresh simulation -- the property the
resumable-sweep and warm-ledger CI gates pin down.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib.util
import json
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.obs.exporters import atomic_write_text
from repro.obs.manifest import MANIFEST_SCHEMA, _config_dict, git_sha

if TYPE_CHECKING:
    from repro.harness.experiment import AnyConfig, ExperimentResult
    from repro.harness.presets import MeasurementPreset
    from repro.obs.report import AttributionSummary
    from repro.obs.session import ObsSession
    from repro.topology.mesh import Mesh2D

#: Schema tag carried by every run record.
RECORD_SCHEMA = "frfc-runrecord/1"

#: Default store location, relative to the invoking directory.
DEFAULT_STORE = ".frfc/runs"

#: Config dataclass name -> the isolation prover's model kind.
_CONFIG_MODELS = {
    "FRConfig": "FR",
    "VCConfig": "VC",
    "WormholeConfig": "WH",
}


class LedgerError(Exception):
    """A ledger operation could not be carried out."""


class LedgerCorruptionError(LedgerError):
    """A stored record failed hash verification; it will never be replayed."""


def canonical_json(payload: Any) -> str:
    """The canonical serialisation every ledger digest is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_digest(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _module_source(module: str) -> bytes:
    """The source bytes of ``module`` (empty when unresolvable).

    Module-level so tests can monkeypatch it to simulate code edits without
    touching the working tree.
    """
    try:
        spec = importlib.util.find_spec(module)
    except (ImportError, ValueError):
        return b""
    if spec is None or spec.origin is None or not spec.origin.endswith(".py"):
        return b""
    return Path(spec.origin).read_bytes()


def _model_kind(config: "AnyConfig") -> str:
    kind = _CONFIG_MODELS.get(type(config).__name__)
    if kind is None:
        raise LedgerError(
            f"cannot ledger a run of unknown config type {type(config).__name__}"
        )
    return kind


class RunLedger:
    """Content-addressed run records under one store directory.

    The instance keeps per-process caches of the git SHA and per-model code
    digests (instance state, never module state -- the isolation prover
    forbids cross-run module caches) plus hit/miss/corrupt counters that the
    sweep harness and CLI surface as telemetry.
    """

    def __init__(self, root: "str | Path" = DEFAULT_STORE) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.recorded = 0
        self.corrupt = 0
        self.last_hit = False
        self.last_record: Optional[dict[str, Any]] = None
        self._git_sha: Optional[str] = None
        self._code_digests: dict[str, str] = {}

    # -- identity -----------------------------------------------------------

    def current_git_sha(self) -> str:
        if self._git_sha is None:
            self._git_sha = git_sha()
        return self._git_sha

    def code_digest(self, model: str) -> str:
        """Digest of every source file the model's harness entry can reach.

        Reuses the isolation analyzer's import-closure walker with the same
        per-model stop-sets, rooted at ``repro.harness.experiment`` plus the
        model's own modules -- so an edit to e.g. the VC router changes the
        VC digest (forcing VC re-simulation) while FR and wormhole records
        keep hitting.
        """
        cached = self._code_digests.get(model)
        if cached is not None:
            return cached
        from repro.analysis.isolation import MODEL_MODULES, import_closure
        from repro.analysis.phases import SourceResolver

        if model not in MODEL_MODULES:
            known = ", ".join(sorted(MODEL_MODULES))
            raise LedgerError(f"unknown model kind {model!r}; known: {known}")
        stop = frozenset(
            module
            for kind, modules in MODEL_MODULES.items()
            if kind != model
            for module in modules
        )
        resolver = SourceResolver()
        members: dict[str, None] = {}
        for root in ("repro.harness.experiment", *MODEL_MODULES[model]):
            for module in import_closure(root, resolver, stop=stop):
                members[module] = None
        digest = hashlib.sha256()
        for module in sorted(members):
            digest.update(module.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(hashlib.sha256(_module_source(module)).digest())
            digest.update(b"\x00")
        value = digest.hexdigest()
        self._code_digests[model] = value
        return value

    def experiment_identity(
        self,
        config: "AnyConfig",
        offered_load: float,
        packet_length: int,
        seed: int,
        preset: "MeasurementPreset",
        mesh: "Mesh2D",
        traffic: Any,
        injection_process: str,
        streaming: bool,
        check_invariants: bool,
        network_kwargs: Mapping[str, Any],
    ) -> dict[str, Any]:
        """The identity of one ``run_experiment`` call, pre-execution."""
        params: dict[str, Any] = {
            # A non-string pattern identifies by repr: a default object repr
            # embeds the instance address, which can only cause misses (safe),
            # never a wrong hit; dataclass patterns round-trip stably.
            "traffic": traffic if isinstance(traffic, str) else repr(traffic),
            "injection_process": injection_process,
            "streaming": bool(streaming),
        }
        for key in sorted(network_kwargs):
            params[key] = repr(network_kwargs[key])
        return self._identity(
            "experiment",
            config,
            offered_load,
            packet_length,
            seed,
            preset,
            mesh,
            check_invariants,
            params,
        )

    def throughput_identity(
        self,
        config: "AnyConfig",
        offered_load: float,
        packet_length: int,
        seed: int,
        preset: "MeasurementPreset",
        mesh: "Mesh2D",
        check_invariants: bool,
        network_kwargs: Mapping[str, Any],
    ) -> dict[str, Any]:
        """The identity of one ``measure_throughput`` probe, pre-execution."""
        params = {key: repr(network_kwargs[key]) for key in sorted(network_kwargs)}
        return self._identity(
            "throughput",
            config,
            offered_load,
            packet_length,
            seed,
            preset,
            mesh,
            check_invariants,
            params,
        )

    def bench_identity(self, model: str, workload: Mapping[str, Any]) -> dict[str, Any]:
        """The identity of one benchmark-gate workload (``kind: bench``)."""
        return {
            "schema": MANIFEST_SCHEMA,
            "kind": "bench",
            "model": model,
            "workload": dict(workload),
            "git_sha": self.current_git_sha(),
            "code_digest": self.code_digest(model),
        }

    def _identity(
        self,
        kind: str,
        config: "AnyConfig",
        offered_load: float,
        packet_length: int,
        seed: int,
        preset: "MeasurementPreset",
        mesh: "Mesh2D",
        check_invariants: bool,
        params: Mapping[str, Any],
    ) -> dict[str, Any]:
        model = _model_kind(config)
        # `name` is a property on the config dataclasses, so asdict drops it;
        # the listing/label machinery wants it in the identity.
        config_record = _config_dict(config)
        config_record.setdefault("name", getattr(config, "name", type(config).__name__))
        return {
            "schema": MANIFEST_SCHEMA,
            "kind": kind,
            "model": model,
            "config": config_record,
            "offered_load": offered_load,
            "packet_length": packet_length,
            "seed": seed,
            "preset": dataclasses.asdict(preset),
            "mesh": f"{mesh.width}x{mesh.height}",
            "check_invariants": bool(check_invariants),
            "params": dict(params),
            "git_sha": self.current_git_sha(),
            "code_digest": self.code_digest(model),
        }

    @staticmethod
    def identity_hash(identity: Mapping[str, Any]) -> str:
        return content_digest(dict(identity))

    # -- store paths --------------------------------------------------------

    def record_path(self, identity_hash: str) -> Path:
        return self.root / f"{identity_hash}.json"

    def resolve(self, prefix: str) -> str:
        """Expand a unique identity-hash prefix to the full hash."""
        if not self.root.is_dir():
            raise LedgerError(f"no run ledger at {self.root}")
        matches = [
            path.stem
            for path in sorted(self.root.glob("*.json"))
            if path.stem.startswith(prefix)
        ]
        if not matches:
            raise LedgerError(f"no run record matching {prefix!r} in {self.root}")
        if len(matches) > 1:
            shown = ", ".join(match[:12] for match in matches)
            raise LedgerError(f"ambiguous record prefix {prefix!r}: {shown}")
        return matches[0]

    # -- read path: always verified -----------------------------------------

    def load(self, identity_hash: str) -> dict[str, Any]:
        """Load and fully verify one record; raises on any mismatch."""
        path = self.record_path(identity_hash)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise LedgerError(f"no run record {identity_hash} in {self.root}") from None
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise LedgerCorruptionError(f"{path}: not valid JSON ({error})") from None
        self.verify(record, expected_hash=identity_hash, origin=str(path))
        return dict(record)

    @staticmethod
    def verify(
        record: Mapping[str, Any],
        expected_hash: str = "",
        origin: str = "record",
    ) -> None:
        """Re-derive every digest a record claims; raise on the first lie."""
        if record.get("schema") != RECORD_SCHEMA:
            raise LedgerCorruptionError(
                f"{origin}: schema is {record.get('schema')!r}, "
                f"expected {RECORD_SCHEMA!r}"
            )
        body = {key: record[key] for key in record if key != "content_hash"}
        actual_content = content_digest(body)
        if actual_content != record.get("content_hash"):
            raise LedgerCorruptionError(
                f"{origin}: content hash mismatch (stored "
                f"{str(record.get('content_hash'))[:12]}..., recomputed "
                f"{actual_content[:12]}...); refusing to replay"
            )
        actual_result = content_digest(record.get("result"))
        if actual_result != record.get("result_digest"):
            raise LedgerCorruptionError(
                f"{origin}: result digest mismatch; refusing to replay"
            )
        actual_identity = content_digest(record.get("identity"))
        if actual_identity != record.get("identity_hash"):
            raise LedgerCorruptionError(
                f"{origin}: identity hash mismatch; refusing to replay"
            )
        if expected_hash and actual_identity != expected_hash:
            raise LedgerCorruptionError(
                f"{origin}: stored under {expected_hash[:12]}... but its "
                f"identity hashes to {actual_identity[:12]}...; refusing to replay"
            )

    def lookup(self, identity: Mapping[str, Any]) -> Optional[dict[str, Any]]:
        """The verified record for ``identity``, or None (a miss).

        Corruption is *never* a stale hit: a record that fails verification
        is reported on stderr, counted, and treated as a miss so the caller
        re-simulates and atomically overwrites it.
        """
        key = self.identity_hash(identity)
        path = self.record_path(key)
        if not path.exists():
            return self._miss()
        try:
            record = self.load(key)
        except LedgerCorruptionError as error:
            self.corrupt += 1
            sys.stderr.write(f"frfc-ledger: {error}; re-simulating\n")
            return self._miss()
        if canonical_json(record["identity"]) != canonical_json(dict(identity)):
            self.corrupt += 1
            sys.stderr.write(
                f"frfc-ledger: {path}: stored identity does not match the "
                "requested one despite equal hashes; re-simulating\n"
            )
            return self._miss()
        self.hits += 1
        self.last_hit = True
        self.last_record = record
        return record

    def _miss(self) -> Optional[dict[str, Any]]:
        self.misses += 1
        self.last_hit = False
        self.last_record = None
        return None

    def scan(self, kind: str | None = None) -> tuple[list[dict[str, Any]], list[Path]]:
        """All verified records (sorted by hash) plus any corrupt files.

        ``kind`` keeps only records of one kind (``experiment``,
        ``throughput``, ``bench``); corrupt files are always reported --
        a filter must never hide damage.
        """
        records: list[dict[str, Any]] = []
        corrupt: list[Path] = []
        if not self.root.is_dir():
            return records, corrupt
        for path in sorted(self.root.glob("*.json")):
            try:
                record = self.load(path.stem)
            except LedgerCorruptionError:
                corrupt.append(path)
                continue
            if kind is None or record.get("kind") == kind:
                records.append(record)
        return records, corrupt

    # -- write path: always atomic ------------------------------------------

    def _write(self, record: dict[str, Any]) -> dict[str, Any]:
        body = {key: record[key] for key in sorted(record) if key != "content_hash"}
        body["content_hash"] = content_digest(body)
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.record_path(record["identity_hash"]),
            json.dumps(body, indent=2, sort_keys=True) + "\n",
        )
        self.recorded += 1
        self.last_hit = False
        self.last_record = body
        return body

    def _base_record(
        self, identity: Mapping[str, Any], result: Any
    ) -> dict[str, Any]:
        return {
            "schema": RECORD_SCHEMA,
            "kind": identity["kind"],
            "identity": dict(identity),
            "identity_hash": self.identity_hash(identity),
            "result": result,
            "result_digest": content_digest(result),
            "events_dropped": 0,
            "artifacts": {},
        }

    def record_experiment(
        self,
        identity: Mapping[str, Any],
        result: "ExperimentResult",
        obs: "ObsSession | None" = None,
        artifacts: Mapping[str, str] | None = None,
    ) -> dict[str, Any]:
        """Store one measured experiment point (plus obs evidence if any)."""
        record = self._base_record(identity, dataclasses.asdict(result))
        if artifacts:
            record["artifacts"] = dict(artifacts)
        if obs is not None:
            record["events_dropped"] = obs.events_dropped
            label = f"{result.config_name} load={result.offered_load:.2f}"
            summary = obs.attribution_summary(label=label)
            if summary is not None:
                record["attribution"] = summary.as_dict()
            if obs.profiler is not None:
                record["profile"] = obs.profiler.report()
        return self._write(record)

    def record_throughput(
        self,
        identity: Mapping[str, Any],
        accepted_load: float,
        obs: "ObsSession | None" = None,
    ) -> dict[str, Any]:
        """Store one throughput probe (saturation search)."""
        record = self._base_record(identity, {"accepted_load": accepted_load})
        if obs is not None:
            record["events_dropped"] = obs.events_dropped
            config = identity.get("config", {})
            label = (
                f"{config.get('name', identity.get('model', '?'))} "
                f"load={identity.get('offered_load', 0.0):.2f}"
            )
            summary = obs.attribution_summary(label=label)
            if summary is not None:
                record["attribution"] = summary.as_dict()
            if obs.profiler is not None:
                record["profile"] = obs.profiler.report()
        return self._write(record)

    def record_bench(
        self,
        identity: Mapping[str, Any],
        result: Mapping[str, Any],
        profile: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Store one benchmark-gate run (``kind: bench``).

        ``result`` holds only the deterministic outputs (cycles, packets);
        the wall-clock numbers live in the explicitly-labelled ``profile``
        block, mirroring experiment records.
        """
        record = self._base_record(identity, dict(result))
        if profile is not None:
            record["profile"] = dict(profile)
        return self._write(record)

    # -- replay -------------------------------------------------------------

    @staticmethod
    def replay_experiment(record: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild the ExperimentResult a record stored, byte-identically."""
        from repro.harness.experiment import ExperimentResult

        data = dict(record["result"])
        data["extras"] = dict(data.get("extras") or {})
        return ExperimentResult(**data)

    @staticmethod
    def replay_throughput(record: Mapping[str, Any]) -> float:
        return float(record["result"]["accepted_load"])

    def last_attribution(self) -> "AttributionSummary | None":
        """The attribution summary of the most recent hit/record, if any."""
        if self.last_record is None or "attribution" not in self.last_record:
            return None
        from repro.obs.report import AttributionSummary

        return AttributionSummary.from_dict(self.last_record["attribution"])

    def last_profile(self) -> Optional[dict[str, Any]]:
        if self.last_record is None:
            return None
        profile = self.last_record.get("profile")
        return dict(profile) if profile is not None else None

    def last_events_dropped(self) -> int:
        if self.last_record is None:
            return 0
        return int(self.last_record.get("events_dropped", 0))

    # -- maintenance --------------------------------------------------------

    def gc(self, wipe_all: bool = False) -> tuple[int, int]:
        """Evict stale or corrupt records; returns ``(kept, evicted)``.

        A record is *stale* when its identity no longer matches the current
        checkout: different git SHA, or a different code digest for its
        model (both clock-free, so gc is deterministic).  ``wipe_all``
        empties the store.  Stray temp files from interrupted writes are
        always swept.
        """
        kept = 0
        evicted = 0
        if not self.root.is_dir():
            return kept, evicted
        current_sha = self.current_git_sha()
        for path in sorted(self.root.glob("*.json")):
            if wipe_all:
                path.unlink()
                evicted += 1
                continue
            try:
                record = self.load(path.stem)
            except LedgerCorruptionError:
                path.unlink()
                evicted += 1
                continue
            identity = record["identity"]
            stale = identity.get("git_sha") != current_sha
            model = identity.get("model")
            if not stale and isinstance(model, str):
                try:
                    stale = identity.get("code_digest") != self.code_digest(model)
                except LedgerError:
                    stale = True
            if stale:
                path.unlink()
                evicted += 1
            else:
                kept += 1
        for tmp in sorted(self.root.glob("*.tmp")):
            tmp.unlink()
        return kept, evicted

    # -- telemetry ----------------------------------------------------------

    @property
    def consulted(self) -> int:
        return self.hits + self.misses

    def summary(self) -> str:
        """One stderr-friendly line: ``ledger: 3/5 cache hits, 2 recorded``."""
        parts = [f"ledger: {self.hits}/{self.consulted} cache hits"]
        if self.recorded:
            parts.append(f"{self.recorded} recorded")
        if self.corrupt:
            parts.append(f"{self.corrupt} corrupt (re-simulated)")
        return ", ".join(parts)


# ---------------------------------------------------------------------------
# Listing and diffing (the `frfc runs` machinery)
# ---------------------------------------------------------------------------


def describe_record(record: Mapping[str, Any]) -> str:
    """One ``frfc runs list`` line for a record."""
    identity = record["identity"]
    short = str(record["identity_hash"])[:12]
    kind = str(record.get("kind", "?"))
    if kind == "bench":
        workload = identity.get("workload", {})
        label = (
            f"{workload.get('label', workload.get('config', '?'))} "
            f"load={workload.get('offered_load', 0.0):.2f} "
            f"preset={workload.get('preset', '?')} seed={workload.get('seed', '?')}"
        )
        profile = record.get("profile") or {}
        tail = f"cps={profile.get('cycles_per_second', 0.0):.1f}"
    else:
        config = identity.get("config", {})
        label = (
            f"{config.get('name', identity.get('model', '?'))} "
            f"load={identity.get('offered_load', 0.0):.2f} "
            f"preset={identity.get('preset', {}).get('name', '?')} "
            f"seed={identity.get('seed', '?')}"
        )
        result = record.get("result", {})
        if kind == "experiment":
            tail = (
                f"latency={result.get('mean_latency', 0.0):.1f} "
                f"accepted={result.get('accepted_load', 0.0):.3f}"
            )
        else:
            tail = f"accepted={result.get('accepted_load', 0.0):.3f}"
    return f"{short}  {kind:<10}  {identity.get('model', '?'):<2}  {label}  {tail}"


_DIFF_FIELDS: tuple[tuple[str, str], ...] = (
    ("offered_load", "{:.3f}"),
    ("accepted_load", "{:.4f}"),
    ("mean_latency", "{:.2f}"),
    ("p95_latency", "{:.2f}"),
    ("latency_ci_halfwidth", "{:.2f}"),
    ("packets_measured", "{:d}"),
    ("cycles_simulated", "{:d}"),
    ("warmup_cycles", "{:d}"),
)


def format_run_diff(a: Mapping[str, Any], b: Mapping[str, Any]) -> str:
    """Side-by-side result + attribution-component deltas of two records."""
    lines = [
        f"A: {describe_record(a)}",
        f"B: {describe_record(b)}",
        "",
        f"{'field':<22} {'A':>12} {'B':>12} {'delta':>12}",
        f"{'-' * 22} {'-' * 12} {'-' * 12} {'-' * 12}",
    ]
    result_a = a.get("result", {})
    result_b = b.get("result", {})
    for field, spec in _DIFF_FIELDS:
        if field not in result_a and field not in result_b:
            continue
        va = result_a.get(field)
        vb = result_b.get(field)
        cell_a = spec.format(va) if va is not None else "-"
        cell_b = spec.format(vb) if vb is not None else "-"
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            delta = f"{float(vb) - float(va):+.2f}"
        else:
            delta = "-"
        lines.append(f"{field:<22} {cell_a:>12} {cell_b:>12} {delta:>12}")
    attribution_a = a.get("attribution")
    attribution_b = b.get("attribution")
    if attribution_a and attribution_b:
        from repro.obs.report import AttributionSummary, format_attribution_table

        summary_a = AttributionSummary.from_dict(attribution_a)
        summary_b = AttributionSummary.from_dict(attribution_b)
        lines.append("")
        lines.append(format_attribution_table([summary_a, summary_b]))
        lines.append("")
        lines.append(f"{'component delta (B-A)':<22} {'mean':>10} {'share':>9}")
        for name in summary_a.components:
            if name not in summary_b.components:
                continue
            ca = summary_a.components[name]
            cb = summary_b.components[name]
            lines.append(
                f"{name:<22} {cb.mean - ca.mean:>+10.2f} {cb.share - ca.share:>+9.1%}"
            )
    elif attribution_a or attribution_b:
        lines.append("")
        which = "A" if attribution_a else "B"
        lines.append(f"(only {which} carries an attribution summary; no component diff)")
    return "\n".join(lines)
