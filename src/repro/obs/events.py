"""The typed event taxonomy and the event bus.

Every observable occurrence in a network is a :class:`NetworkEvent`: a
frozen record of *what* happened (``kind``), *where* (``node``, ``port``,
``vc``), *to whom* (``packet_id``, ``flit_index``), and *when* (``cycle``).
The taxonomy is shared by all three flow-control models so a VC run and an
FR run can be compared event-for-event; kinds that only one model can
produce (e.g. ``reservation_grant``) simply never appear in the other's
stream.

The :class:`EventBus` fans events out to subscribers.  It is designed for
the *detached* case to cost nothing: networks only construct and emit
events through hooks that are ``None`` until a
:class:`~repro.obs.probe.NetworkProbe` installs them, so an unobserved run
executes exactly the same instruction stream as before this layer existed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, fields
from typing import Callable, Iterator

#: A control flit entered a router's control VC queue (FR only).  A cycle of
#: ``-1`` marks the on-node injection hop from the NI.
CONTROL_ARRIVAL = "control_arrival"
#: A data flit reached a router input (FR) or a flit entered an input VC
#: queue (VC/wormhole).
DATA_ARRIVAL = "data_arrival"
#: A flit left the network at its destination.
DATA_EJECT = "data_eject"
#: A flit won switch arbitration and traversed the crossbar (VC/wormhole).
FLIT_FORWARD = "flit_forward"
#: An output reservation table accepted a data flit's departure slot (FR).
RESERVATION_GRANT = "reservation_grant"
#: A control flit failed to schedule its data flits this cycle (FR).
RESERVATION_DENY = "reservation_deny"
#: A buffer credit went back upstream (control or advance credit in FR,
#: per-VC credit in VC/wormhole).
CREDIT_RETURN = "credit_return"
#: A data buffer was allocated at an input pool.
BUFFER_ALLOC = "buffer_alloc"
#: A data buffer was released back to an input pool.
BUFFER_FREE = "buffer_free"
#: A source created a packet (all models).
PACKET_CREATED = "packet_created"
#: The last flit of a packet left the network (all models).
PACKET_DELIVERED = "packet_delivered"

#: Every kind the bus accepts, in documentation order.
EVENT_KINDS: tuple[str, ...] = (
    CONTROL_ARRIVAL,
    DATA_ARRIVAL,
    DATA_EJECT,
    FLIT_FORWARD,
    RESERVATION_GRANT,
    RESERVATION_DENY,
    CREDIT_RETURN,
    BUFFER_ALLOC,
    BUFFER_FREE,
    PACKET_CREATED,
    PACKET_DELIVERED,
)


@dataclass(frozen=True)
class NetworkEvent:
    """One observed event.  Fields that do not apply to a kind stay at their
    defaults and are omitted from the JSONL export."""

    cycle: int
    kind: str
    node: int
    packet_id: int = -1
    port: int = -1
    vc: int = -1
    flit_index: int = -1
    value: int = -1
    detail: str = ""

    def as_dict(self) -> dict[str, int | str]:
        """A compact dict: always cycle/kind/node, other fields when set."""
        record: dict[str, int | str] = {
            "cycle": self.cycle,
            "kind": self.kind,
            "node": self.node,
        }
        for field in fields(self):
            if field.name in ("cycle", "kind", "node"):
                continue
            value = getattr(self, field.name)
            if value != field.default:
                record[field.name] = value
        return record


Subscriber = Callable[[NetworkEvent], None]


class EventBus:
    """Fans :class:`NetworkEvent` records out to per-kind subscribers."""

    def __init__(self) -> None:
        self._by_kind: dict[str, list[Subscriber]] = {}
        self._all: list[Subscriber] = []
        self.events_emitted = 0

    def subscribe(self, kind: str, subscriber: Subscriber) -> None:
        """Receive every event of one ``kind``."""
        if kind not in EVENT_KINDS:
            known = ", ".join(EVENT_KINDS)
            raise ValueError(f"unknown event kind {kind!r}; known kinds: {known}")
        self._by_kind.setdefault(kind, []).append(subscriber)

    def subscribe_all(self, subscriber: Subscriber) -> None:
        """Receive every event regardless of kind."""
        self._all.append(subscriber)

    def wants(self, kind: str) -> bool:
        """Whether any subscriber would see an event of ``kind``.

        Probes consult this so that a bus subscribed only to, say, ejections
        does not pay for building reservation-table events.
        """
        return bool(self._all) or kind in self._by_kind

    def emit(self, event: NetworkEvent) -> None:
        """Deliver one event to its subscribers, in subscription order."""
        self.events_emitted += 1
        for subscriber in self._by_kind.get(event.kind, ()):
            subscriber(event)
        for subscriber in self._all:
            subscriber(event)


class EventCollector:
    """A bounded in-order sink of events (the exporters' data source).

    ``capacity`` bounds memory on long runs; the oldest events are dropped
    first and ``dropped`` counts how many were lost, so an exporter can say
    "log truncated" instead of silently presenting a partial history.
    """

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity < 1:
            raise ValueError(f"collector capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.events: deque[NetworkEvent] = deque(maxlen=capacity)
        self.total_seen = 0

    def __call__(self, event: NetworkEvent) -> None:
        self.total_seen += 1
        self.events.append(event)

    @property
    def dropped(self) -> int:
        return self.total_seen - len(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[NetworkEvent]:
        return iter(self.events)
