"""Attach an event bus to a network model, uniformly across flow controls.

A :class:`NetworkProbe` is the one piece of code that knows where each
network's observability hooks live.  ``attach`` installs bus-emitting
wrappers on those hooks (saving whatever was there, so stats hooks like the
control-lead tracker keep working underneath); ``detach`` restores them
exactly.  The probe never touches router *state* -- only the ``on_*``
callback attributes and the ejection callables the models expose for
observers -- so an attached probe cannot perturb a run (the golden-trace
and digest tests pin this).

Event coverage by model:

========================  ====  =============
kind                      FR    VC / wormhole
========================  ====  =============
``control_arrival``       yes   --
``data_arrival``          yes   yes
``data_eject``            yes   yes
``flit_forward``          --    yes
``reservation_grant``     yes   --
``reservation_deny``      yes   --
``credit_return``         yes   yes
``buffer_alloc``          yes   yes
``buffer_free``           yes   yes
``packet_created``        yes   yes
``packet_delivered``      yes   yes
========================  ====  =============
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.obs import events as ev
from repro.obs.events import EventBus, NetworkEvent

if TYPE_CHECKING:
    from repro.baselines.vc.flits import VCFlit
    from repro.baselines.vc.network import VCNetwork
    from repro.core.flits import ControlFlit, DataFlit
    from repro.core.network import FRNetwork
    from repro.sim.netbase import NetworkModel
    from repro.traffic.packet import Packet


class NetworkProbe:
    """Wires one :class:`EventBus` into one network model."""

    def __init__(self, bus: EventBus) -> None:
        self.bus = bus
        self._network: "NetworkModel | None" = None
        self._saved: list[tuple[Any, str, Any]] = []

    # -- lifecycle ----------------------------------------------------------

    def attach(self, network: "NetworkModel") -> "NetworkProbe":
        """Install bus-emitting hooks on ``network`` (chainable)."""
        # Imported here, not at module scope: repro.sim re-exports the
        # bus-backed TraceLog, so a module-level import of the network
        # classes would be circular.
        from repro.baselines.vc.network import VCNetwork
        from repro.core.network import FRNetwork

        if self._network is not None:
            raise RuntimeError("probe already attached; detach first")
        if isinstance(network, FRNetwork):
            self._attach_fr(network)
        elif isinstance(network, VCNetwork):  # wormhole subclasses VCNetwork
            self._attach_vc(network)
        else:
            raise TypeError(
                f"cannot probe a {type(network).__name__}: expected a "
                "flit-reservation, virtual-channel, or wormhole network"
            )
        self._attach_packet_hooks(network)
        self._network = network
        return self

    def detach(self) -> None:
        """Restore every hook to its pre-attach value."""
        for owner, attribute, saved in reversed(self._saved):
            setattr(owner, attribute, saved)
        self._saved.clear()
        self._network = None

    def _install(self, owner: Any, attribute: str, hook: Any) -> None:
        self._saved.append((owner, attribute, getattr(owner, attribute)))
        setattr(owner, attribute, hook)

    # -- shared packet lifecycle hooks --------------------------------------

    def _attach_packet_hooks(self, network: "NetworkModel") -> None:
        bus = self.bus

        def created(packet: "Packet", cycle: int) -> None:
            bus.emit(
                NetworkEvent(
                    cycle,
                    ev.PACKET_CREATED,
                    packet.source,
                    packet_id=packet.packet_id,
                    value=packet.length,
                    detail=f"to {packet.destination}",
                )
            )

        def delivered(packet: "Packet", cycle: int) -> None:
            bus.emit(
                NetworkEvent(
                    cycle,
                    ev.PACKET_DELIVERED,
                    packet.destination,
                    packet_id=packet.packet_id,
                    value=cycle - packet.creation_cycle,
                )
            )

        if bus.wants(ev.PACKET_CREATED):
            self._install(network, "on_packet_created", self._chain2(
                getattr(network, "on_packet_created"), created))
        if bus.wants(ev.PACKET_DELIVERED):
            self._install(network, "on_packet_delivered", self._chain2(
                getattr(network, "on_packet_delivered"), delivered))

    @staticmethod
    def _chain2(
        inner: Optional[Callable[[Any, int], None]],
        added: Callable[[Any, int], None],
    ) -> Callable[[Any, int], None]:
        if inner is None:
            return added

        def hook(first: Any, second: int) -> None:
            added(first, second)
            inner(first, second)

        return hook

    # -- flit-reservation wiring --------------------------------------------

    def _attach_fr(self, network: "FRNetwork") -> None:
        for router in network.routers:
            node = router.node
            if self.bus.wants(ev.CONTROL_ARRIVAL):
                self._install(
                    router,
                    "on_control_arrival",
                    self._fr_control_hook(node, router.on_control_arrival),
                )
            if self.bus.wants(ev.DATA_ARRIVAL):
                self._install(
                    router,
                    "on_data_arrival",
                    self._fr_data_hook(node, router.on_data_arrival),
                )
            if self.bus.wants(ev.DATA_EJECT):
                self._install(router, "eject_data", self._fr_eject_hook(node, router.eject_data))
            if self.bus.wants(ev.RESERVATION_GRANT):
                self._install(
                    router,
                    "on_reservation_grant",
                    self._chain_n(router.on_reservation_grant, self._fr_grant_hook(node)),
                )
            if self.bus.wants(ev.RESERVATION_DENY):
                self._install(
                    router,
                    "on_reservation_deny",
                    self._chain_n(router.on_reservation_deny, self._fr_deny_hook(node)),
                )
            if self.bus.wants(ev.CREDIT_RETURN):
                self._install(
                    router,
                    "on_credit_return",
                    self._chain_n(router.on_credit_return, self._fr_credit_hook(node)),
                )
            if self.bus.wants(ev.BUFFER_ALLOC) or self.bus.wants(ev.BUFFER_FREE):
                for port, scheduler in enumerate(router.input_sched):
                    self._install(
                        scheduler,
                        "on_buffer_event",
                        self._chain_n(
                            scheduler.on_buffer_event, self._fr_buffer_hook(node, port)
                        ),
                    )

    @staticmethod
    def _chain_n(
        inner: Optional[Callable[..., None]], added: Callable[..., None]
    ) -> Callable[..., None]:
        if inner is None:
            return added

        def hook(*args: Any) -> None:
            added(*args)
            inner(*args)

        return hook

    def _fr_control_hook(
        self, node: int, inner: Optional[Callable[["ControlFlit", int, int], None]]
    ) -> Callable[["ControlFlit", int, int], None]:
        bus = self.bus

        def hook(flit: "ControlFlit", at_node: int, cycle: int) -> None:
            role = "head" if flit.is_head else "body"
            bus.emit(
                NetworkEvent(
                    cycle,
                    ev.CONTROL_ARRIVAL,
                    at_node,
                    packet_id=flit.packet.packet_id,
                    vc=flit.vcid,
                    value=len(flit.data_flits),
                    detail=f"{role}, leads {len(flit.data_flits)}",
                )
            )
            if inner is not None:
                inner(flit, at_node, cycle)

        return hook

    def _fr_data_hook(
        self, node: int, inner: Optional[Callable[["DataFlit", int, int], None]]
    ) -> Callable[["DataFlit", int, int], None]:
        bus = self.bus

        def hook(flit: "DataFlit", at_node: int, cycle: int) -> None:
            bus.emit(
                NetworkEvent(
                    cycle,
                    ev.DATA_ARRIVAL,
                    at_node,
                    packet_id=flit.packet.packet_id,
                    flit_index=flit.index,
                    detail=f"flit #{flit.index}",
                )
            )
            if inner is not None:
                inner(flit, at_node, cycle)

        return hook

    def _fr_eject_hook(
        self, node: int, inner: Callable[["DataFlit", int], None]
    ) -> Callable[["DataFlit", int], None]:
        bus = self.bus

        def hook(flit: "DataFlit", cycle: int) -> None:
            bus.emit(
                NetworkEvent(
                    cycle,
                    ev.DATA_EJECT,
                    node,
                    packet_id=flit.packet.packet_id,
                    flit_index=flit.index,
                    detail=f"flit #{flit.index}",
                )
            )
            inner(flit, cycle)

        return hook

    def _fr_grant_hook(self, node: int) -> Callable[["ControlFlit", int, int, int, int], None]:
        bus = self.bus

        def hook(
            flit: "ControlFlit", flit_index: int, out_port: int, departure: int, cycle: int
        ) -> None:
            bus.emit(
                NetworkEvent(
                    cycle,
                    ev.RESERVATION_GRANT,
                    node,
                    packet_id=flit.packet.packet_id,
                    port=out_port,
                    flit_index=flit_index,
                    value=departure,
                )
            )

        return hook

    def _fr_deny_hook(self, node: int) -> Callable[["ControlFlit", int, int], None]:
        bus = self.bus

        def hook(flit: "ControlFlit", out_port: int, cycle: int) -> None:
            bus.emit(
                NetworkEvent(
                    cycle,
                    ev.RESERVATION_DENY,
                    node,
                    packet_id=flit.packet.packet_id,
                    port=out_port,
                )
            )

        return hook

    def _fr_credit_hook(self, node: int) -> Callable[[str, int, int, int], None]:
        bus = self.bus

        def hook(credit_kind: str, port: int, value: int, cycle: int) -> None:
            bus.emit(
                NetworkEvent(
                    cycle,
                    ev.CREDIT_RETURN,
                    node,
                    port=port,
                    value=value,
                    detail=credit_kind,
                )
            )

        return hook

    def _fr_buffer_hook(self, node: int, port: int) -> Callable[[str, int, int], None]:
        bus = self.bus

        def hook(action: str, cycle: int, occupied: int) -> None:
            kind = ev.BUFFER_ALLOC if action == "alloc" else ev.BUFFER_FREE
            bus.emit(NetworkEvent(cycle, kind, node, port=port, value=occupied))

        return hook

    # -- virtual-channel / wormhole wiring ----------------------------------

    def _attach_vc(self, network: "VCNetwork") -> None:
        for router in network.routers:
            node = router.node
            if self.bus.wants(ev.DATA_ARRIVAL) or self.bus.wants(ev.BUFFER_ALLOC):
                self._install(
                    router,
                    "on_flit_arrival",
                    self._chain_n(router.on_flit_arrival, self._vc_arrival_hook(node, router)),
                )
            if (
                self.bus.wants(ev.FLIT_FORWARD)
                or self.bus.wants(ev.BUFFER_FREE)
                or self.bus.wants(ev.CREDIT_RETURN)
            ):
                self._install(
                    router,
                    "on_flit_forward",
                    self._chain_n(router.on_flit_forward, self._vc_forward_hook(node, router)),
                )
            if self.bus.wants(ev.DATA_EJECT):
                self._install(router, "eject", self._vc_eject_hook(node, router.eject))

    def _vc_arrival_hook(self, node: int, router: Any) -> Callable[["VCFlit", int, int, int], None]:
        bus = self.bus

        def hook(flit: "VCFlit", port: int, vc: int, cycle: int) -> None:
            if bus.wants(ev.DATA_ARRIVAL):
                bus.emit(
                    NetworkEvent(
                        cycle,
                        ev.DATA_ARRIVAL,
                        node,
                        packet_id=flit.packet.packet_id,
                        port=port,
                        vc=vc,
                        flit_index=flit.index,
                        detail=f"flit #{flit.index}",
                    )
                )
            if bus.wants(ev.BUFFER_ALLOC):
                bus.emit(
                    NetworkEvent(
                        cycle,
                        ev.BUFFER_ALLOC,
                        node,
                        port=port,
                        value=router.pool_occupancy[port],
                    )
                )

        return hook

    def _vc_forward_hook(
        self, node: int, router: Any
    ) -> Callable[["VCFlit", int, int, int, int], None]:
        bus = self.bus

        def hook(flit: "VCFlit", port: int, vc: int, out_port: int, cycle: int) -> None:
            if bus.wants(ev.FLIT_FORWARD):
                bus.emit(
                    NetworkEvent(
                        cycle,
                        ev.FLIT_FORWARD,
                        node,
                        packet_id=flit.packet.packet_id,
                        port=out_port,
                        vc=vc,
                        flit_index=flit.index,
                    )
                )
            if bus.wants(ev.BUFFER_FREE):
                bus.emit(
                    NetworkEvent(
                        cycle,
                        ev.BUFFER_FREE,
                        node,
                        port=port,
                        value=router.pool_occupancy[port],
                    )
                )
            if bus.wants(ev.CREDIT_RETURN):
                bus.emit(
                    NetworkEvent(
                        cycle, ev.CREDIT_RETURN, node, port=port, vc=vc, detail="vc"
                    )
                )

        return hook

    def _vc_eject_hook(
        self, node: int, inner: Callable[["VCFlit", int], None]
    ) -> Callable[["VCFlit", int], None]:
        bus = self.bus

        def hook(flit: "VCFlit", cycle: int) -> None:
            bus.emit(
                NetworkEvent(
                    cycle,
                    ev.DATA_EJECT,
                    node,
                    packet_id=flit.packet.packet_id,
                    flit_index=flit.index,
                    detail=f"flit #{flit.index}",
                )
            )
            inner(flit, cycle)

        return hook
