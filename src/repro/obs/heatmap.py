"""Mesh heatmaps: the ``frfc-heatmap/1`` exporter and its renderers.

A heatmap payload is a deterministic JSON document built from a
:class:`~repro.obs.spatial.SpatialMetricsRegistry`: per-metric, per-node
grids (row-major, one value per mesh node) plus per-link values, aggregated
over a half-open cycle window, with a built-in hotspot report (the top-k
congested nodes and links and their share of the network-wide total).
``frfc heatmap`` renders payloads as ASCII for terminals and as
self-contained SVG for CI artifacts; both renderers are pure functions of
the payload, so repeated exports are byte-identical (pinned in
``tests/obs/test_heatmap.py``).

Schema (``frfc-heatmap/1``)::

    {
      "schema": "frfc-heatmap/1",
      "mesh": {"width": W, "height": H},
      "sample_every": N,
      "metrics": {name: "level" | "rate", ...},
      "link_keys": [[node, port], ...],
      "frames": [
        {"label": str, "window": [start, end),
         "rows": <sampled rows aggregated>,
         "nodes": {metric: [W*H floats, row-major]},
         "links": {metric: [floats aligned with link_keys]},
         "hotspots": {metric: {"nodes": [{"node","x","y","value","share"}...],
                                "links": [{"node","port","value","share"}...]}}}
      ],
      "context": {...}          # config/seed/load provenance, optional
    }

*Level* metrics aggregate as the mean of the per-row instantaneous values
inside the window; *rate* metrics as the window-length-weighted mean, so a
frame's value is the true rate over its whole window.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.obs.exporters import atomic_write_json
from repro.obs.spatial import RATE, SpatialMetricsRegistry
from repro.topology.mesh import PORT_NAMES

if TYPE_CHECKING:
    from pathlib import Path

    from repro.topology.mesh import Mesh2D

HEATMAP_SCHEMA = "frfc-heatmap/1"

#: ASCII shade ramp, blank (cold) to dense (hot).
_ASCII_RAMP = " .:-=+*#%@"

#: SVG color ramp endpoints (cold -> hot), a perceptually sane blue->red.
_SVG_COLD = (42, 72, 136)
_SVG_HOT = (214, 69, 51)


class HeatmapError(ValueError):
    """Raised when a payload does not satisfy ``frfc-heatmap/1``."""


# ---------------------------------------------------------------------------
# Building payloads from a spatial registry
# ---------------------------------------------------------------------------


def build_frame(
    registry: SpatialMetricsRegistry,
    mesh: "Mesh2D",
    label: str,
    window: tuple[int, int] | None = None,
    at: int | None = None,
    top_k: int = 5,
) -> dict[str, Any]:
    """Aggregate sampled rows into one heatmap frame.

    ``window`` selects rows whose half-open windows fall inside
    ``[start, end)``; ``at`` selects the single row whose window contains
    that cycle; with neither, every sampled row aggregates.  Exactly one of
    ``window``/``at`` may be given.
    """
    if window is not None and at is not None:
        raise HeatmapError("give either a window or an --at cycle, not both")
    if at is not None:
        rows = [s for s in registry.samples if s.window_start <= at < s.window_end]
        if not rows:
            raise HeatmapError(
                f"no sampled window contains cycle {at} "
                f"(cadence {registry.sample_every}, {len(registry.samples)} rows)"
            )
    elif window is not None:
        start, end = window
        if start >= end:
            raise HeatmapError(f"window must be half-open [start, end), got {window}")
        rows = registry.rows_in_window(start, end)
        if not rows:
            raise HeatmapError(
                f"no sampled rows inside [{start}, {end}) "
                f"(cadence {registry.sample_every}, {len(registry.samples)} rows)"
            )
    else:
        rows = list(registry.samples)
        if not rows:
            raise HeatmapError("the spatial registry holds no sampled rows")
    span = (rows[0].window_start, rows[-1].window_end)
    frame: dict[str, Any] = {
        "label": label,
        "window": [span[0], span[1]],
        "rows": len(rows),
        "nodes": {},
        "links": {},
        "hotspots": {},
    }
    for name in sorted(registry.node_metrics):
        kind = registry.node_metrics[name]
        grid = _aggregate(
            [row.nodes[name] for row in rows],
            [row.window_end - row.window_start for row in rows],
            weighted=kind == RATE,
        )
        frame["nodes"][name] = grid
        frame["hotspots"][name] = {
            "nodes": _hotspot_nodes(grid, mesh, top_k),
            "links": [],
        }
    for name in sorted(registry.link_metrics):
        kind = registry.link_metrics[name]
        values = _aggregate(
            [row.links[name] for row in rows],
            [row.window_end - row.window_start for row in rows],
            weighted=kind == RATE,
        )
        frame["links"][name] = values
        entry = frame["hotspots"].setdefault(name, {"nodes": [], "links": []})
        entry["links"] = _hotspot_links(values, registry.link_keys, top_k)
    return frame


def build_heatmap(
    registry: SpatialMetricsRegistry,
    mesh: "Mesh2D",
    label: str = "",
    window: tuple[int, int] | None = None,
    at: int | None = None,
    top_k: int = 5,
    context: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """One-frame ``frfc-heatmap/1`` payload (the `point`/`obs` export)."""
    frame = build_frame(registry, mesh, label=label, window=window, at=at, top_k=top_k)
    return assemble_heatmap(registry, mesh, [frame], context=context)


def assemble_heatmap(
    registry: SpatialMetricsRegistry,
    mesh: "Mesh2D",
    frames: list[dict[str, Any]],
    context: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Wrap pre-built frames (one per sweep point) into a full payload."""
    payload: dict[str, Any] = {
        "schema": HEATMAP_SCHEMA,
        "mesh": {"width": mesh.width, "height": mesh.height},
        "sample_every": registry.sample_every,
        "metrics": {
            **{k: registry.node_metrics[k] for k in sorted(registry.node_metrics)},
            **{k: registry.link_metrics[k] for k in sorted(registry.link_metrics)},
        },
        "link_keys": [[node, port] for node, port in registry.link_keys],
        "frames": frames,
    }
    if context:
        payload["context"] = dict(context)
    validate_heatmap(payload)
    return payload


def _aggregate(
    rows: list[list[float]], lengths: list[int], weighted: bool
) -> list[float]:
    """Mean the per-row vectors; rates weight each row by its window length."""
    if weighted:
        total = sum(lengths)
        acc = [0.0] * len(rows[0])
        for row, length in zip(rows, lengths):
            for index, value in enumerate(row):
                acc[index] += value * length
        return [value / total for value in acc]
    acc = [0.0] * len(rows[0])
    for row in rows:
        for index, value in enumerate(row):
            acc[index] += value
    return [value / len(rows) for value in acc]


def _hotspot_nodes(
    grid: list[float], mesh: "Mesh2D", top_k: int
) -> list[dict[str, Any]]:
    total = sum(grid)
    ranked = sorted(enumerate(grid), key=lambda item: (-item[1], item[0]))
    report = []
    for node, value in ranked[:top_k]:
        x, y = mesh.coordinates(node)
        report.append(
            {
                "node": node,
                "x": x,
                "y": y,
                "value": value,
                "share": value / total if total else 0.0,
            }
        )
    return report


def _hotspot_links(
    values: list[float], link_keys: list[tuple[int, int]], top_k: int
) -> list[dict[str, Any]]:
    total = sum(values)
    ranked = sorted(enumerate(values), key=lambda item: (-item[1], item[0]))
    report = []
    for index, value in ranked[:top_k]:
        node, port = link_keys[index]
        report.append(
            {
                "node": node,
                "port": PORT_NAMES[port],
                "value": value,
                "share": value / total if total else 0.0,
            }
        )
    return report


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def validate_heatmap(payload: Mapping[str, Any]) -> None:
    """Raise :class:`HeatmapError` unless ``payload`` is a valid heatmap."""
    if payload.get("schema") != HEATMAP_SCHEMA:
        raise HeatmapError(f"schema must be {HEATMAP_SCHEMA!r}, got {payload.get('schema')!r}")
    mesh = payload.get("mesh")
    if (
        not isinstance(mesh, Mapping)
        or not isinstance(mesh.get("width"), int)
        or not isinstance(mesh.get("height"), int)
        or mesh["width"] < 2
        or mesh["height"] < 2
    ):
        raise HeatmapError(f"mesh must give integer width/height >= 2, got {mesh!r}")
    cells = mesh["width"] * mesh["height"]
    if not isinstance(payload.get("sample_every"), int) or payload["sample_every"] < 1:
        raise HeatmapError("sample_every must be a positive integer")
    metrics = payload.get("metrics")
    if not isinstance(metrics, Mapping) or not metrics:
        raise HeatmapError("metrics must name at least one metric")
    for name, kind in metrics.items():
        if kind not in ("level", "rate"):
            raise HeatmapError(f"metric {name!r} kind must be level|rate, got {kind!r}")
    link_keys = payload.get("link_keys", [])
    frames = payload.get("frames")
    if not isinstance(frames, list) or not frames:
        raise HeatmapError("frames must be a non-empty list")
    for index, frame in enumerate(frames):
        where = f"frame {index} ({frame.get('label', '?')!r})"
        window = frame.get("window")
        if (
            not isinstance(window, list)
            or len(window) != 2
            or not all(isinstance(edge, int) for edge in window)
            or window[0] >= window[1]
        ):
            raise HeatmapError(f"{where}: window must be half-open [start, end)")
        for name, grid in frame.get("nodes", {}).items():
            if name not in metrics:
                raise HeatmapError(f"{where}: undeclared node metric {name!r}")
            if len(grid) != cells:
                raise HeatmapError(
                    f"{where}: metric {name!r} has {len(grid)} cells, mesh needs {cells}"
                )
            _check_finite(grid, where, name)
        for name, values in frame.get("links", {}).items():
            if name not in metrics:
                raise HeatmapError(f"{where}: undeclared link metric {name!r}")
            if len(values) != len(link_keys):
                raise HeatmapError(
                    f"{where}: metric {name!r} has {len(values)} link values, "
                    f"payload declares {len(link_keys)} links"
                )
            _check_finite(values, where, name)
        for name, spots in frame.get("hotspots", {}).items():
            for spot in spots.get("nodes", []) + spots.get("links", []):
                share = spot.get("share", 0.0)
                if not 0.0 <= share <= 1.0 + 1e-9:
                    raise HeatmapError(
                        f"{where}: hotspot share {share!r} for {name!r} outside [0, 1]"
                    )


def _check_finite(values: list[Any], where: str, name: str) -> None:
    for value in values:
        if not isinstance(value, (int, float)) or value != value or value in (
            float("inf"),
            float("-inf"),
        ):
            raise HeatmapError(f"{where}: metric {name!r} has non-finite value {value!r}")
        if value < 0:
            raise HeatmapError(f"{where}: metric {name!r} has negative value {value!r}")


def write_heatmap_json(payload: Mapping[str, Any], path: "str | Path") -> None:
    """Validate and atomically write one payload (sorted keys, stable bytes)."""
    validate_heatmap(payload)
    atomic_write_json(path, payload)


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------


def _select_frame(payload: Mapping[str, Any], frame: int) -> dict[str, Any]:
    frames = payload["frames"]
    if not -len(frames) <= frame < len(frames):
        raise HeatmapError(f"payload has {len(frames)} frames, asked for {frame}")
    return frames[frame]


def _frame_grid(payload: Mapping[str, Any], metric: str, frame: int) -> list[float]:
    selected = _select_frame(payload, frame)
    try:
        return selected["nodes"][metric]
    except KeyError:
        known = ", ".join(sorted(selected.get("nodes", {})))
        raise HeatmapError(f"metric {metric!r} not in frame; node metrics: {known}")


def render_ascii(payload: Mapping[str, Any], metric: str, frame: int = 0) -> str:
    """Shade the mesh as text: one cell per node, ``@`` hottest, `` `` idle."""
    validate_heatmap(payload)
    selected = _select_frame(payload, frame)
    grid = _frame_grid(payload, metric, frame)
    width = payload["mesh"]["width"]
    height = payload["mesh"]["height"]
    peak = max(grid)
    window = selected["window"]
    lines = [
        f"{metric} [{selected['label']}] window [{window[0]}, {window[1]}) "
        f"peak {peak:.2f} mean {sum(grid) / len(grid):.2f}",
        "    " + " ".join(f"{x % 10}" for x in range(width)),
    ]
    ramp_top = len(_ASCII_RAMP) - 1
    for y in range(height):
        cells = []
        for x in range(width):
            value = grid[y * width + x]
            shade = round(value / peak * ramp_top) if peak else 0
            cells.append(_ASCII_RAMP[shade])
        lines.append(f"{y:>3} " + " ".join(cells))
    lines.append(f"scale: '{_ASCII_RAMP[1:]}' = (0, {peak:.2f}] in {ramp_top} steps")
    return "\n".join(lines)


def format_hotspots(payload: Mapping[str, Any], metric: str, frame: int = 0) -> str:
    """The frame's top-k congested nodes/links with network-wide shares."""
    validate_heatmap(payload)
    selected = _select_frame(payload, frame)
    spots = selected["hotspots"].get(metric)
    if spots is None:
        known = ", ".join(sorted(selected["hotspots"]))
        raise HeatmapError(f"metric {metric!r} has no hotspots; known: {known}")
    lines = [f"hotspots for {metric} [{selected['label']}]:"]
    for spot in spots["nodes"]:
        lines.append(
            f"  node {spot['node']:>3} ({spot['x']},{spot['y']})  "
            f"value {spot['value']:>9.2f}  share {spot['share'] * 100:5.1f}%"
        )
    for spot in spots["links"]:
        lines.append(
            f"  link {spot['node']:>3} {spot['port']:<6} "
            f"value {spot['value']:>9.3f}  share {spot['share'] * 100:5.1f}%"
        )
    if len(lines) == 1:
        lines.append("  (none)")
    return "\n".join(lines)


def render_svg(payload: Mapping[str, Any], metric: str, frame: int = 0) -> str:
    """A self-contained SVG mesh heatmap (deterministic byte-for-byte)."""
    validate_heatmap(payload)
    selected = _select_frame(payload, frame)
    grid = _frame_grid(payload, metric, frame)
    width = payload["mesh"]["width"]
    height = payload["mesh"]["height"]
    peak = max(grid)
    cell = 48
    pad = 40
    svg_w = width * cell + 2 * pad
    svg_h = height * cell + 2 * pad + 24
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{svg_w}" height="{svg_h}" '
        f'viewBox="0 0 {svg_w} {svg_h}">',
        f'<title>{metric} — {selected["label"]}</title>',
        f'<rect width="{svg_w}" height="{svg_h}" fill="#ffffff"/>',
        f'<text x="{pad}" y="{pad - 16}" font-family="monospace" font-size="14">'
        f"{metric} [{selected['label']}] window [{selected['window'][0]}, "
        f"{selected['window'][1]}) peak {peak:.2f}</text>",
    ]
    for y in range(height):
        for x in range(width):
            value = grid[y * width + x]
            heat = value / peak if peak else 0.0
            parts.append(
                f'<rect x="{pad + x * cell}" y="{pad + y * cell}" '
                f'width="{cell - 2}" height="{cell - 2}" fill="{_ramp_color(heat)}">'
                f"<title>node {y * width + x} ({x},{y}): {value:.3f}</title></rect>"
            )
            parts.append(
                f'<text x="{pad + x * cell + (cell - 2) / 2:.1f}" '
                f'y="{pad + y * cell + cell / 2 + 3:.1f}" text-anchor="middle" '
                f'font-family="monospace" font-size="10" '
                f'fill="{"#ffffff" if heat > 0.55 else "#1a1a1a"}">{value:.1f}</text>'
            )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _ramp_color(heat: float) -> str:
    """Interpolate the cold->hot ramp; ``heat`` in [0, 1]."""
    heat = min(max(heat, 0.0), 1.0)
    channels = [
        round(cold + (hot - cold) * heat) for cold, hot in zip(_SVG_COLD, _SVG_HOT)
    ]
    return "#{:02x}{:02x}{:02x}".format(*channels)
