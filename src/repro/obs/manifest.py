"""The run manifest: enough metadata to reproduce any exported artifact.

Every observability export is accompanied by a manifest recording the
configuration (as a plain dict), the measurement preset, the seed, and the
source tree's git SHA.  The manifest is deterministic for a given checkout:
the git SHA is re-read from the repository this package was imported from
on every call (manifests are written once per run, so there is no cache --
caching would be module-global state shared across sweep points, which the
isolation prover forbids), and no wall-clock timestamp is recorded
(reproducibility beats provenance-by-date; the SHA *is* the provenance).
"""

from __future__ import annotations

import dataclasses
import subprocess
from pathlib import Path
from typing import Any, Mapping

from repro.obs.exporters import atomic_write_json

MANIFEST_SCHEMA = "frfc-obs-manifest/1"


def git_sha() -> str:
    """The HEAD commit of the repository containing this package.

    Returns ``"unknown"`` when the package runs outside a git checkout
    (e.g. an installed wheel) or git itself is unavailable.  Uncached:
    manifests are written once per run, and the rev-parse cost is nothing
    next to the sweep it describes.
    """
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
        sha = result.stdout.strip()
        return sha if result.returncode == 0 and sha else "unknown"
    except OSError:
        return "unknown"


def build_manifest(
    config: Any,
    seed: int,
    preset: str = "",
    offered_load: float | None = None,
    packet_length: int | None = None,
    mesh: str = "",
    command: str = "",
    artifacts: Mapping[str, str] | None = None,
    metrics_summary: Mapping[str, Any] | None = None,
    spatial_summary: Mapping[str, Any] | None = None,
    events_emitted: int | None = None,
    events_dropped: int | None = None,
) -> dict[str, Any]:
    """Assemble the manifest dict for one observed run."""
    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "git_sha": git_sha(),
        "seed": seed,
        "config": _config_dict(config),
    }
    if preset:
        manifest["preset"] = preset
    if offered_load is not None:
        manifest["offered_load"] = offered_load
    if packet_length is not None:
        manifest["packet_length"] = packet_length
    if mesh:
        manifest["mesh"] = mesh
    if command:
        manifest["command"] = command
    if artifacts:
        manifest["artifacts"] = dict(artifacts)
    if metrics_summary:
        manifest["metrics"] = dict(metrics_summary)
    if spatial_summary:
        manifest["spatial"] = dict(spatial_summary)
    if events_emitted is not None:
        manifest["events_emitted"] = events_emitted
    if events_dropped:
        # The collector's capacity bound truncated the log: the exported
        # event stream starts this many events late.  Never silent.
        manifest["events_dropped"] = events_dropped
    return manifest


def write_manifest(manifest: Mapping[str, Any], path: str | Path) -> None:
    """Write a manifest as stably ordered, human-readable JSON (atomic)."""
    atomic_write_json(path, manifest)


def _config_dict(config: Any) -> dict[str, Any]:
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        record = dataclasses.asdict(config)
        record["type"] = type(config).__name__
        return record
    if isinstance(config, Mapping):
        return dict(config)
    return {"repr": repr(config)}
