"""Packet-timeline tracing, for every flow-control model.

A :class:`TraceLog` is the teaching/debugging view of the event stream: it
attaches to a flit-reservation, virtual-channel, or wormhole network (via an
internal :class:`~repro.obs.probe.NetworkProbe`) and records a bounded log
of per-packet events; ``format_packet`` prints the life of one packet as a
timeline, the programmatic equivalent of the paper's Figure 4(d).

The FR output is byte-identical to the pre-event-bus trace log (pinned by
``tests/obs/test_trace_golden.py``): same kinds, same detail strings, same
formatting, and control arrivals from the on-node NI hop (cycle ``-1``) are
skipped exactly as before.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs import events as ev
from repro.obs.events import EventBus, NetworkEvent
from repro.obs.probe import NetworkProbe

if TYPE_CHECKING:
    from repro.sim.netbase import NetworkModel

#: Event kinds a trace log records, in taxonomy order.  ``flit_forward``
#: only exists in VC/wormhole streams, so FR traces keep their historical
#: three-kind shape.
TRACED_KINDS: tuple[str, ...] = (
    ev.CONTROL_ARRIVAL,
    ev.DATA_ARRIVAL,
    ev.FLIT_FORWARD,
    ev.DATA_EJECT,
)


@dataclass(frozen=True)
class TraceEvent:
    """One observed event in the life of a packet."""

    cycle: int
    kind: str  # "control_arrival" | "data_arrival" | "flit_forward" | "data_eject"
    node: int
    packet_id: int
    detail: str = ""

    def format(self) -> str:
        text = f"cycle {self.cycle:>6}  {self.kind:<16} node {self.node:>3}"
        if self.detail:
            text += f"  {self.detail}"
        return text


class TraceLog:
    """A bounded in-memory log of per-packet network events.

    ``capacity`` bounds memory for long runs (old events are dropped
    first).  Attach before stepping the simulator; detach to restore the
    network's previous hooks.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self._probe: NetworkProbe | None = None

    # -- lifecycle ---------------------------------------------------------------

    def attach(self, network: "NetworkModel") -> "TraceLog":
        """Start recording events from ``network`` (chainable)."""
        if self._probe is not None:
            raise RuntimeError("trace log already attached")
        bus = EventBus()
        for kind in TRACED_KINDS:
            bus.subscribe(kind, self._record)
        self._probe = NetworkProbe(bus).attach(network)
        return self

    def detach(self) -> None:
        """Stop recording and restore the network's previous hooks."""
        if self._probe is not None:
            self._probe.detach()
            self._probe = None

    # -- the bus subscriber --------------------------------------------------------

    def _record(self, event: NetworkEvent) -> None:
        if event.kind == ev.CONTROL_ARRIVAL and event.cycle < 0:
            return  # the on-node NI injection hop, never logged
        self.events.append(
            TraceEvent(event.cycle, event.kind, event.node, event.packet_id, event.detail)
        )

    # -- queries -------------------------------------------------------------------

    def packet_events(self, packet_id: int) -> list[TraceEvent]:
        """All recorded events of one packet, in time order."""
        return sorted(
            (event for event in self.events if event.packet_id == packet_id),
            key=lambda event: event.cycle,
        )

    def format_packet(self, packet_id: int) -> str:
        """A printable timeline of one packet (cf. the paper's Figure 4d)."""
        events = self.packet_events(packet_id)
        if not events:
            return f"no events recorded for packet {packet_id}"
        lines = [f"packet {packet_id} timeline:"]
        lines.extend(event.format() for event in events)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
