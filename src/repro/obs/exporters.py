"""Deterministic export formats: JSONL events, Chrome trace, CSV timeseries.

Every writer here is a pure function of simulation state: no wall-clock
timestamps, no environment reads, stable key order -- so identical seeds
produce byte-identical files (pinned by ``tests/obs/test_exporters.py``).
Timestamps in the Chrome trace are simulated *cycles* expressed in
microseconds: one cycle = 1 us, which makes Perfetto's time ruler read
directly in cycles.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.obs.events import (
    DATA_EJECT,
    PACKET_CREATED,
    PACKET_DELIVERED,
    NetworkEvent,
)

if TYPE_CHECKING:
    from repro.obs.attribution import PacketAttribution


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically: temp file in the same directory,
    then ``os.replace``.  Readers never observe a partially written file, which
    is what lets the run ledger treat every on-disk record as either absent or
    complete (lint rule D014 funnels result-bearing writes through here).
    """
    target = Path(path)
    tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)


def atomic_write_json(path: str | Path, payload: Mapping[str, Any], indent: int = 2) -> None:
    """Atomically write ``payload`` as sorted-key JSON with a trailing newline."""
    atomic_write_text(path, json.dumps(payload, indent=indent, sort_keys=True) + "\n")


def write_events_jsonl(events: Iterable[NetworkEvent], path: str | Path) -> int:
    """Write one compact JSON object per event; returns the event count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.as_dict(), separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def write_chrome_trace(
    events: Iterable[NetworkEvent],
    path: str | Path,
    run_name: str = "frfc",
    attribution: Iterable["PacketAttribution"] | None = None,
) -> int:
    """Write a Perfetto-loadable Chrome trace-event JSON file.

    Layout: one process (pid 0) named after the run; one thread per mesh
    node.  Every network event becomes a thread-scoped instant event, and
    every packet becomes an async span (``ph`` "b"/"e", id = packet id)
    from its creation to its delivery -- so Perfetto shows packet lifetimes
    as bars with the per-node event stream underneath.  When attribution
    records are supplied, each packet's latency components are emitted as
    nested async sub-spans (same category and id as the packet span), so
    Perfetto stacks a per-packet latency waterfall under every packet bar.
    Returns the number of trace records written.
    """
    records: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": run_name},
        }
    ]
    nodes_seen: list[int] = []
    span_open: dict[int, int] = {}  # packet_id -> node the span started on
    for event in events:
        if event.node not in nodes_seen:
            nodes_seen.append(event.node)
        ts = max(event.cycle, 0)  # the NI hop at cycle -1 clamps to run start
        if event.kind == PACKET_CREATED:
            span_open[event.packet_id] = event.node
            records.append(
                {
                    "ph": "b",
                    "cat": "packet",
                    "id": event.packet_id,
                    "name": f"packet {event.packet_id}",
                    "ts": ts,
                    "pid": 0,
                    "tid": event.node,
                    "args": {"source": event.node, "detail": event.detail},
                }
            )
            continue
        if event.kind == PACKET_DELIVERED:
            start_node = span_open.pop(event.packet_id, event.node)
            records.append(
                {
                    "ph": "e",
                    "cat": "packet",
                    "id": event.packet_id,
                    "name": f"packet {event.packet_id}",
                    "ts": ts,
                    "pid": 0,
                    "tid": start_node,
                    "args": {"destination": event.node, "latency": event.value},
                }
            )
            continue
        args: dict[str, Any] = {}
        for key in ("packet_id", "port", "vc", "flit_index", "value"):
            value = getattr(event, key)
            if value != -1:
                args[key] = value
        if event.detail:
            args["detail"] = event.detail
        records.append(
            {
                "ph": "i",
                "s": "t",
                "cat": event.kind,
                "name": event.kind if event.kind != DATA_EJECT else "data_eject",
                "ts": ts,
                "pid": 0,
                "tid": event.node,
                "args": args,
            }
        )
    if attribution is not None:
        from repro.obs.report import iter_waterfall_records

        records.extend(iter_waterfall_records(attribution))
    for node in sorted(nodes_seen):
        records.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": node,
                "args": {"name": f"node {node}"},
            }
        )
    payload = {"traceEvents": records, "displayTimeUnit": "ns"}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"), sort_keys=True)
        handle.write("\n")
    return len(records)


def write_metrics_csv(rows: Iterable[Mapping[str, float]], path: str | Path) -> int:
    """Write the metrics timeseries as CSV; returns the row count.

    Columns come from the first row (every registry row has the same
    shape); integral values are written without a trailing ``.0`` so the
    file reads naturally.
    """
    rows = list(rows)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        if not rows:
            handle.write("cycle\n")
            return 0
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        for row in rows:
            writer.writerow({key: _format_cell(value) for key, value in row.items()})
    return len(rows)


def _format_cell(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.6f}"
