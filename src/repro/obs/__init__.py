"""Unified observability layer.

Everything in this subpackage is a *pure observer* of the simulation: when
nothing is attached the networks run exactly as before (digest-identical,
see ``tests/obs/test_detached.py``), and when something is attached it may
record but never influence a routing, scheduling, or arbitration decision.

The layer has five parts:

* :mod:`repro.obs.events` -- the typed event taxonomy and the
  :class:`~repro.obs.events.EventBus` that fans events out to subscribers;
* :mod:`repro.obs.probe` -- :class:`~repro.obs.probe.NetworkProbe`, which
  wires one bus into a flit-reservation, virtual-channel, or wormhole
  network through the routers' observability hooks (attach/detach);
* :mod:`repro.obs.metrics` -- the :class:`~repro.obs.metrics.MetricsRegistry`
  of counters, gauges, and per-cycle histograms with the built-in
  channel-utilization / occupancy / stall / backpressure instruments;
* :mod:`repro.obs.attribution` (+ :mod:`repro.obs.report`) -- the
  :class:`~repro.obs.attribution.LatencyAttributor` that reconstructs each
  packet's critical path from bus events and decomposes its latency into
  components that sum exactly to the measured value, plus the aggregate
  tables, JSON artifact, and Perfetto waterfall built on top;
* :mod:`repro.obs.spatial` (+ :mod:`repro.obs.heatmap`) -- the
  :class:`~repro.obs.spatial.SpatialMetricsRegistry` of per-router /
  per-link / per-reservation-table instruments, the read-only
  :class:`~repro.obs.spatial.CongestionSignal` API, and the
  ``frfc-heatmap/1`` exporter with ASCII/SVG mesh renderers and the
  hotspot detector behind ``frfc heatmap``;
* :mod:`repro.obs.exporters` (+ :mod:`repro.obs.manifest`,
  :mod:`repro.obs.profile`, :mod:`repro.obs.session`) -- JSONL, Chrome
  trace-event, and CSV timeseries writers, the reproducibility manifest,
  the simulator self-profiler behind ``BENCH_obs.json``, and the
  :class:`~repro.obs.session.ObsSession` that the harness drives.

See ``docs/observability.md`` for the event taxonomy, the metrics catalog,
and a Perfetto walkthrough.
"""

from repro.obs.attribution import (
    COMPONENTS,
    LatencyAttributor,
    PacketAttribution,
    Segment,
)
from repro.obs.events import (
    EVENT_KINDS,
    EventBus,
    EventCollector,
    NetworkEvent,
)
from repro.obs.ledger import (
    DEFAULT_STORE,
    RECORD_SCHEMA,
    LedgerCorruptionError,
    LedgerError,
    RunLedger,
    describe_record,
    format_run_diff,
)
from repro.obs.metrics import Counter, Gauge, CycleHistogram, MetricsRegistry
from repro.obs.probe import NetworkProbe
from repro.obs.profile import SimProfiler
from repro.obs.progress import PROGRESS_SCHEMA, ProgressReporter
from repro.obs.report import (
    ATTRIBUTION_SCHEMA,
    AttributionSummary,
    ComponentStats,
    format_attribution_table,
    validate_attribution,
    write_attribution_json,
)
from repro.obs.heatmap import (
    HEATMAP_SCHEMA,
    HeatmapError,
    build_frame,
    build_heatmap,
    format_hotspots,
    render_ascii,
    render_svg,
    validate_heatmap,
    write_heatmap_json,
)
from repro.obs.session import ObsSession
from repro.obs.spatial import (
    CongestionSignal,
    SpatialMetricsRegistry,
    SpatialSample,
    write_spatial_csv,
)
from repro.obs.trace import TraceEvent, TraceLog

__all__ = [
    "ATTRIBUTION_SCHEMA",
    "AttributionSummary",
    "COMPONENTS",
    "ComponentStats",
    "CongestionSignal",
    "Counter",
    "CycleHistogram",
    "DEFAULT_STORE",
    "EVENT_KINDS",
    "EventBus",
    "EventCollector",
    "Gauge",
    "HEATMAP_SCHEMA",
    "HeatmapError",
    "LatencyAttributor",
    "LedgerCorruptionError",
    "LedgerError",
    "MetricsRegistry",
    "NetworkEvent",
    "NetworkProbe",
    "ObsSession",
    "PROGRESS_SCHEMA",
    "PacketAttribution",
    "ProgressReporter",
    "RECORD_SCHEMA",
    "RunLedger",
    "Segment",
    "SimProfiler",
    "SpatialMetricsRegistry",
    "SpatialSample",
    "TraceEvent",
    "TraceLog",
    "build_frame",
    "build_heatmap",
    "describe_record",
    "format_attribution_table",
    "format_hotspots",
    "format_run_diff",
    "render_ascii",
    "render_svg",
    "validate_attribution",
    "validate_heatmap",
    "write_attribution_json",
    "write_heatmap_json",
    "write_spatial_csv",
]
