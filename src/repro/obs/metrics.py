"""The metrics registry: counters, gauges, per-cycle histograms, timeseries.

A :class:`MetricsRegistry` is a :class:`~repro.sim.kernel.CycleHook`: handed
to the simulator as an observer, it samples its instruments every
``sample_every`` cycles and appends one row to an in-memory timeseries (the
CSV exporter's data source).  Instruments never influence the network --
they only *read* public router state, exactly like the stats collectors.

``install_standard_instruments`` wires up the four built-ins the paper's
evaluation leans on:

* ``channel_utilization`` -- mean busy fraction of the data links over the
  last sampling interval (the quantity of paper Figure 7's x-axis);
* ``buffer_occupancy`` -- total occupied input data buffers network-wide
  (Section 4.2 tracks one pool; this is the whole-network view);
* ``reservation_occupancy`` -- busy slots summed over every output
  reservation table (FR only; reservation-table pressure, Section 4.4);
* ``credit_stalls`` -- cumulative control flits that failed to schedule
  their data flits (FR only; the ``schedule_stalls`` diagnostic);
* ``injection_backpressure`` -- network-wide mean source queue length (the
  warm-up signal, here exported over time).

Every instrument here is a network-wide scalar; the per-router / per-link
resolved counterparts (and the ``frfc heatmap`` renderers on top of them)
live in :mod:`repro.obs.spatial`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    from repro.sim.kernel import SteppableNetwork
    from repro.sim.netbase import NetworkModel

#: A sampler reads the network and returns one timeseries cell.
Sampler = Callable[["NetworkModel", int], float]


@dataclass
class Counter:
    """A monotonically increasing count (events, stalls, drops)."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time level (occupancy, queue length, utilization)."""

    name: str
    value: float = 0.0
    samples: int = 0
    total: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        self.total += value

    @property
    def mean(self) -> float:
        if self.samples == 0:
            raise ValueError(f"gauge {self.name} never sampled")
        return self.total / self.samples


@dataclass
class CycleHistogram:
    """Fixed-width-bin histogram of a per-cycle quantity."""

    name: str
    bin_width: int = 1
    counts: dict[int, int] = field(default_factory=dict)
    samples: int = 0
    total: float = 0.0

    def record(self, value: float) -> None:
        if self.bin_width < 1:
            raise ValueError(f"bin width must be >= 1, got {self.bin_width}")
        bin_start = int(value) // self.bin_width * self.bin_width
        self.counts[bin_start] = self.counts.get(bin_start, 0) + 1
        self.samples += 1
        self.total += value

    def bins(self) -> list[tuple[int, int]]:
        """(bin_start, count) pairs in ascending bin order."""
        return sorted(self.counts.items())

    @property
    def mean(self) -> float:
        if self.samples == 0:
            raise ValueError(f"histogram {self.name} has no samples")
        return self.total / self.samples


class MetricsRegistry:
    """Named instruments plus a sampled timeseries; a simulator observer.

    The registry samples on cycles where ``cycle % sample_every == 0`` --
    a purely cycle-determined cadence, so identical seeds yield identical
    timeseries regardless of how the run was chunked into ``step`` calls.
    """

    def __init__(self, sample_every: int = 100) -> None:
        if sample_every < 1:
            raise ValueError(f"sampling cadence must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, CycleHistogram] = {}
        self.timeseries: list[dict[str, float]] = []
        self._samplers: list[tuple[str, Sampler]] = []
        self._last_sample_cycle: int | None = None

    # -- instrument management ----------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self.counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self.gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str, bin_width: int = 1) -> CycleHistogram:
        """Get or create the histogram called ``name``."""
        return self.histograms.setdefault(name, CycleHistogram(name, bin_width))

    def add_sampler(self, column: str, sampler: Sampler) -> None:
        """Register a per-sample timeseries column.

        ``sampler(network, cycle)`` runs on every sampling tick; its return
        value lands in the ``column`` of that tick's timeseries row, in the
        gauge of the same name, and in a histogram of the same name.
        """
        if any(existing == column for existing, _ in self._samplers):
            raise ValueError(f"duplicate timeseries column {column!r}")
        self._samplers.append((column, sampler))
        self.gauge(column)
        self.histogram(column)

    # -- built-in instruments ------------------------------------------------

    def install_standard_instruments(self, network: "NetworkModel") -> None:
        """Register the built-in channel/buffer/reservation/stall samplers.

        Works on any network model; instruments that need flow-control
        specific state (reservation tables, schedule stalls) are installed
        only where that state exists.
        """
        from repro.stats.utilization import _data_links

        links = _data_links(network)
        state = {"sent": sum(link.total_sent for link in links.values()), "cycle": 0}

        def channel_utilization(net: "NetworkModel", cycle: int) -> float:
            sent = sum(link.total_sent for link in links.values())
            interval = cycle - state["cycle"]
            delta = sent - state["sent"]
            state["sent"] = sent
            state["cycle"] = cycle
            if interval <= 0 or not links:
                return 0.0
            return delta / (interval * len(links))

        self.add_sampler("channel_utilization", channel_utilization)
        self.add_sampler("buffer_occupancy", _buffer_occupancy)
        routers: list[Any] = getattr(network, "routers", [])
        if routers and hasattr(routers[0], "out_tables"):
            self.add_sampler("reservation_occupancy", _reservation_occupancy)
        if routers and hasattr(routers[0], "schedule_stalls"):
            self.add_sampler("credit_stalls", _credit_stalls)
        self.add_sampler("injection_backpressure", _injection_backpressure)

    # -- the CycleHook -------------------------------------------------------

    def check(self, network: "SteppableNetwork", cycle: int) -> None:
        """Observer entry point: sample on the configured cadence."""
        if cycle % self.sample_every:
            return
        if cycle == self._last_sample_cycle:
            return  # a re-entrant attach must not duplicate the boundary row
        self._last_sample_cycle = cycle
        row: dict[str, float] = {"cycle": float(cycle)}
        for column, sampler in self._samplers:
            value = sampler(network, cycle)  # type: ignore[arg-type]
            row[column] = value
            self.gauges[column].set(value)
            self.histograms[column].record(value)
        self.timeseries.append(row)

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Final values and means of every instrument, for the manifest."""
        report: dict[str, Any] = {
            "sample_every": self.sample_every,
            "rows": len(self.timeseries),
        }
        if self.counters:
            report["counters"] = {name: c.value for name, c in sorted(self.counters.items())}
        gauges = {
            name: {"last": g.value, "mean": g.mean}
            for name, g in sorted(self.gauges.items())
            if g.samples
        }
        if gauges:
            report["gauges"] = gauges
        return report


# -- standard samplers (module-level so they carry no per-run state) ---------


def _buffer_occupancy(network: "NetworkModel", cycle: int) -> float:
    total = 0
    for router in getattr(network, "routers", []):
        schedulers = getattr(router, "input_sched", None)
        if schedulers is not None:  # flit-reservation input pools
            total += sum(scheduler.occupancy for scheduler in schedulers)
        else:  # VC/wormhole per-port pools
            total += sum(router.pool_occupancy)
    return float(total)


def _reservation_occupancy(network: "NetworkModel", cycle: int) -> float:
    total = 0
    for router in getattr(network, "routers", []):
        for table in router.out_tables:
            if table is not None:
                total += table.busy_slots()
    return float(total)


def _credit_stalls(network: "NetworkModel", cycle: int) -> float:
    return float(sum(router.schedule_stalls for router in getattr(network, "routers", [])))


def _injection_backpressure(network: "NetworkModel", cycle: int) -> float:
    return network.mean_source_queue_length()
