"""Spatially-resolved metrics: per-router, per-link, per-table instruments.

:mod:`repro.obs.metrics` answers *whether* the mesh is congested -- every
instrument there is a network-wide scalar.  This module answers *where*: a
:class:`SpatialMetricsRegistry` is a :class:`~repro.sim.kernel.CycleHook`
that, on the same cycle-determined cadence as the scalar registry, samples
one value **per coordinate** -- per router (input-buffer occupancy,
reservation-table busy slots, credit stalls, injection backpressure) and
per directed data link (busy fraction over the sampling window) -- into an
in-memory windowed timeseries.  The paper's own evaluation is spatial
(Section 4.2 tracks one node's buffer pool; Figure 7's saturation is driven
by center-of-mesh contention under dimension-ordered routing), and the
ROADMAP's adaptive-routing item needs a per-node congestion readout; this
is that readout.

Contracts, shared with the rest of the observability layer:

* **pure observer** -- samplers only read public router/link state; runs
  with the registry attached are digest-identical to unobserved runs
  (pinned in ``tests/obs/test_detached.py``);
* **cycle-determined cadence** -- a row is taken on cycles where
  ``cycle % sample_every == 0`` regardless of how the run was chunked into
  ``step`` calls, and a re-entrant attach never duplicates the boundary
  row;
* **half-open windows** -- each row covers the cycle window
  ``[window_start, window_end)`` with ``window_end = cycle + 1``
  (the sampled cycle is the window's last member, matching the
  ``tests/stats/test_window_semantics.py`` conventions); *rate* metrics
  (link utilization, credit stalls) are normalised over exactly that
  window, *level* metrics (occupancies) are the instantaneous value at the
  window's closing edge.

The read-only :class:`CongestionSignal` at the bottom is the API the
future adaptive-routing work consumes: per-router, per-dimension occupancy
over reservation tables (FR) or input buffer pools (VC/wormhole), with no
new plumbing between the router models and the routing function.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.topology.mesh import EAST, NORTH, PORT_NAMES, SOUTH, WEST

if TYPE_CHECKING:
    from pathlib import Path

    from repro.sim.kernel import SteppableNetwork
    from repro.sim.link import Link
    from repro.sim.netbase import NetworkModel

#: Metric kinds: a *level* is an instantaneous reading at the window's
#: closing edge; a *rate* is an amount normalised over the half-open window.
LEVEL = "level"
RATE = "rate"

#: Mesh dimensions for :meth:`CongestionSignal.occupancy`: dimension 0 is
#: the x axis (east/west ports), dimension 1 the y axis (north/south).
DIMENSION_PORTS: tuple[tuple[int, ...], ...] = ((EAST, WEST), (NORTH, SOUTH))

#: A node sampler returns one value per mesh node (row-major node order).
NodeSampler = Callable[["NetworkModel", int], list[float]]


@dataclass
class SpatialSample:
    """One sampled row: every spatial instrument at one cadence tick.

    ``nodes`` maps metric name to a row-major per-node value list;
    ``links`` maps metric name to per-link values aligned with the
    registry's ``link_keys``.  The row covers the half-open cycle window
    ``[window_start, window_end)``.
    """

    cycle: int
    window_start: int
    window_end: int
    nodes: dict[str, list[float]] = field(default_factory=dict)
    links: dict[str, list[float]] = field(default_factory=dict)


class SpatialMetricsRegistry:
    """Per-coordinate instruments plus a sampled timeseries; an observer.

    Like :class:`~repro.obs.metrics.MetricsRegistry`, the registry samples
    on cycles where ``cycle % sample_every == 0`` and guards the boundary
    cycle against re-entrant attaches, so identical seeds yield identical
    timeseries regardless of run chunking.
    """

    def __init__(self, sample_every: int = 100) -> None:
        if sample_every < 1:
            raise ValueError(f"sampling cadence must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self.samples: list[SpatialSample] = []
        self.node_metrics: dict[str, str] = {}  # name -> LEVEL | RATE
        self.link_metrics: dict[str, str] = {}
        #: Directed data links in canonical (node, port) order; link metric
        #: value lists are aligned with this.
        self.link_keys: list[tuple[int, int]] = []
        self._node_samplers: list[tuple[str, NodeSampler]] = []
        self._links: list["Link[Any]"] = []
        self._link_sent_prev: list[int] = []
        self._stall_prev: list[int] = []
        self._last_sample_cycle: int | None = None
        self._last_window_end = 0
        self._network: "NetworkModel | None" = None

    @property
    def network(self) -> "NetworkModel | None":
        """The network the instruments were installed on (None before)."""
        return self._network

    # -- instrument management ----------------------------------------------

    def add_node_sampler(self, name: str, kind: str, sampler: NodeSampler) -> None:
        """Register a per-node metric column.

        ``sampler(network, cycle)`` runs on every sampling tick and must
        return one value per mesh node in node order; ``kind`` is
        :data:`LEVEL` or :data:`RATE` (rates are reported per window by the
        sampler itself).
        """
        if kind not in (LEVEL, RATE):
            raise ValueError(f"metric kind must be 'level' or 'rate', got {kind!r}")
        if name in self.node_metrics:
            raise ValueError(f"duplicate spatial metric {name!r}")
        self.node_metrics[name] = kind
        self._node_samplers.append((name, sampler))

    def install_standard_instruments(self, network: "NetworkModel") -> None:
        """Register the built-in per-coordinate instruments for ``network``.

        Instruments needing flow-control-specific state (reservation
        tables, schedule stalls) install only where that state exists, so
        FR, VC, and wormhole models all work.
        """
        from repro.stats.utilization import _data_links

        if self._network is not None:
            raise RuntimeError("spatial registry already installed on a network")
        self._network = network
        self.add_node_sampler("buffer_occupancy", LEVEL, _node_buffer_occupancy)
        self.add_node_sampler(
            "injection_backpressure", LEVEL, _node_injection_backpressure
        )
        routers: list[Any] = getattr(network, "routers", [])
        if routers and hasattr(routers[0], "out_tables"):
            self.add_node_sampler("reservation_occupancy", LEVEL, _node_reservation_occupancy)
        if routers and hasattr(routers[0], "schedule_stalls"):
            # Snapshot at install so a mid-run attach only counts stalls
            # accrued from here on (same convention as the link counters).
            self._stall_prev = [router.schedule_stalls for router in routers]
            self.add_node_sampler("credit_stalls", RATE, self._node_credit_stalls)
        links = _data_links(network)
        self.link_keys = sorted(links)
        self._links = [links[key] for key in self.link_keys]
        self._link_sent_prev = [link.total_sent for link in self._links]
        self.link_metrics["link_utilization"] = RATE

    def _node_credit_stalls(self, network: "NetworkModel", cycle: int) -> list[float]:
        """Per-router schedule stalls accrued in this sampling window."""
        values: list[float] = []
        prev = self._stall_prev
        for index, router in enumerate(getattr(network, "routers", [])):
            total = router.schedule_stalls
            values.append(float(total - prev[index]))
            prev[index] = total
        return values

    # -- the CycleHook -------------------------------------------------------

    def check(self, network: "SteppableNetwork", cycle: int) -> None:
        """Observer entry point: sample every coordinate on the cadence."""
        if cycle % self.sample_every:
            return
        if cycle == self._last_sample_cycle:
            return  # a re-entrant attach must not duplicate the boundary row
        self._last_sample_cycle = cycle
        window_start = self._last_window_end
        window_end = cycle + 1
        self._last_window_end = window_end
        interval = window_end - window_start
        sample = SpatialSample(
            cycle=cycle, window_start=window_start, window_end=window_end
        )
        for name, sampler in self._node_samplers:
            sample.nodes[name] = sampler(network, cycle)  # type: ignore[arg-type]
        if self._links:
            prev = self._link_sent_prev
            utilization: list[float] = []
            for index, link in enumerate(self._links):
                sent = link.total_sent
                utilization.append((sent - prev[index]) / interval)
                prev[index] = sent
            sample.links["link_utilization"] = utilization
        self.samples.append(sample)

    # -- reporting -----------------------------------------------------------

    def rows_in_window(self, start: int, end: int) -> list[SpatialSample]:
        """The sampled rows whose half-open windows lie within [start, end)."""
        return [
            sample
            for sample in self.samples
            if sample.window_start >= start and sample.window_end <= end
        ]

    def summary(self) -> dict[str, Any]:
        """Shape and peak facts for the manifest."""
        report: dict[str, Any] = {
            "sample_every": self.sample_every,
            "rows": len(self.samples),
            "node_metrics": sorted(self.node_metrics),
            "link_metrics": sorted(self.link_metrics),
        }
        peaks: dict[str, dict[str, float]] = {}
        for name in sorted(self.node_metrics):
            best_value = 0.0
            best_node = -1
            for sample in self.samples:
                for node, value in enumerate(sample.nodes[name]):
                    if value > best_value:
                        best_value = value
                        best_node = node
            if best_node >= 0:
                peaks[name] = {"node": float(best_node), "value": best_value}
        if peaks:
            report["peaks"] = peaks
        return report


def write_spatial_csv(
    registry: SpatialMetricsRegistry, network: "NetworkModel", path: "str | Path"
) -> int:
    """Write the spatial timeseries as long-format CSV; returns row count.

    One output row per (sample, metric, coordinate): node metrics carry an
    empty ``port`` column, link metrics name the sending node and port.
    Byte-stable across repeated exports of the same registry.
    """
    from repro.obs.exporters import atomic_write_text

    mesh = network.mesh
    count = 0
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["cycle", "window_start", "window_end", "metric", "node", "port", "x", "y", "value"]
    )
    for sample in registry.samples:
        base = [sample.cycle, sample.window_start, sample.window_end]
        for name in sorted(sample.nodes):
            for node, value in enumerate(sample.nodes[name]):
                x, y = mesh.coordinates(node)
                writer.writerow(base + [name, node, "", x, y, _format_value(value)])
                count += 1
        for name in sorted(sample.links):
            values = sample.links[name]
            for index, (node, port) in enumerate(registry.link_keys):
                x, y = mesh.coordinates(node)
                writer.writerow(
                    base
                    + [name, node, PORT_NAMES[port], x, y, _format_value(values[index])]
                )
                count += 1
    atomic_write_text(path, buffer.getvalue())
    return count


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.6f}"


# -- standard node samplers (module-level so they carry no per-run state) ----


def _node_buffer_occupancy(network: "NetworkModel", cycle: int) -> list[float]:
    values: list[float] = []
    for router in getattr(network, "routers", []):
        values.append(float(router.buffered_total()))
    return values


def _node_reservation_occupancy(network: "NetworkModel", cycle: int) -> list[float]:
    values: list[float] = []
    for router in getattr(network, "routers", []):
        values.append(float(router.reservation_busy_total()))
    return values


def _node_injection_backpressure(network: "NetworkModel", cycle: int) -> list[float]:
    return [float(network.source_queue_length(node)) for node in network.mesh.nodes()]


# ---------------------------------------------------------------------------
# The congestion-signal API (consumed by future adaptive routing)
# ---------------------------------------------------------------------------


class CongestionSignal:
    """Read-only per-router, per-dimension congestion readout.

    The contract the adaptive-routing work consumes: ``occupancy(router,
    dim)`` returns the current congestion pressure of one router in one
    mesh dimension (0 = x/east-west, 1 = y/north-south), or summed over
    every port when ``dim`` is ``None``.  The quantity is

    * **flit-reservation** -- reserved slots in the output reservation
      tables of the dimension's ports (the reservation-table occupancy the
      ROADMAP names as the congestion signal), and
    * **VC / wormhole** -- occupied input data buffers on the dimension's
      ports (the only per-port congestion state those routers have).

    Values are recomputable from raw router state (property-tested across
    all three models); reading one never perturbs the run.
    """

    def __init__(self, network: "NetworkModel") -> None:
        routers: list[Any] = getattr(network, "routers", [])
        if not routers:
            raise TypeError(
                f"cannot read congestion from a {type(network).__name__}: no routers"
            )
        self.network = network
        self._routers = routers
        self._reservation_based = hasattr(routers[0], "out_tables")

    @property
    def reservation_based(self) -> bool:
        """True when the signal reads reservation tables (FR), else buffers."""
        return self._reservation_based

    def occupancy(self, router: int, dim: int | None = None) -> int:
        """Congestion pressure of ``router`` in mesh dimension ``dim``.

        ``dim`` 0 reads the east/west ports, 1 the north/south ports,
        ``None`` every port (mesh and local alike).
        """
        target = self._routers[router]
        if dim is None:
            if self._reservation_based:
                return int(target.reservation_busy_total())
            return int(target.buffered_total())
        if not 0 <= dim < len(DIMENSION_PORTS):
            raise ValueError(f"mesh dimension must be 0 (x) or 1 (y), got {dim}")
        total = 0
        for port in DIMENSION_PORTS[dim]:
            if self._reservation_based:
                total += target.reservation_busy(port)
            else:
                total += target.buffered_flits(port)
        return total
