"""repro -- a reproduction of "Flit-Reservation Flow Control"
(Li-Shiuan Peh and William J. Dally, HPCA-6, 2000).

The package contains a cycle-accurate flit-level simulator of an on-chip 2-D
mesh with three complete flow-control implementations -- flit-reservation
(the paper's contribution), virtual-channel (the baseline), and wormhole --
plus the paper's analytical storage/bandwidth overhead models and a harness
that regenerates every table and figure of the evaluation.

Quick start::

    from repro import FR6, VC8, run_experiment

    fr = run_experiment(FR6, offered_load=0.5, preset="quick")
    vc = run_experiment(VC8, offered_load=0.5, preset="quick")
    print(fr.summary())
    print(vc.summary())
"""

from repro.baselines.vc.config import VC8, VC16, VC32, VCConfig
from repro.baselines.vc.network import VCNetwork
from repro.baselines.wormhole.network import WormholeConfig, WormholeNetwork
from repro.core.config import FR6, FR13, FRConfig
from repro.core.network import FRNetwork
from repro.harness.experiment import ExperimentResult, build_network, run_experiment
from repro.harness.saturation import find_saturation, measure_throughput
from repro.harness.sweep import run_load_sweep
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D

__version__ = "1.0.0"

__all__ = [
    "ExperimentResult",
    "FR6",
    "FR13",
    "FRConfig",
    "FRNetwork",
    "Mesh2D",
    "Simulator",
    "VC8",
    "VC16",
    "VC32",
    "VCConfig",
    "VCNetwork",
    "WormholeConfig",
    "WormholeNetwork",
    "build_network",
    "find_saturation",
    "measure_throughput",
    "run_experiment",
    "run_load_sweep",
    "__version__",
]
