"""Baseline flow-control schemes the paper compares against.

* :mod:`repro.baselines.vc` -- virtual-channel flow control (Dally 1992),
  the paper's primary baseline, including the shared-buffer-pool variant
  (Tamir & Frazier 1992) discussed in Section 5.
* :mod:`repro.baselines.wormhole` -- wormhole flow control (Dally & Seitz
  1986), the historical baseline from the related-work section.
"""

from repro.baselines.vc import VCConfig, VCNetwork
from repro.baselines.wormhole import WormholeConfig, WormholeNetwork

__all__ = ["VCConfig", "VCNetwork", "WormholeConfig", "WormholeNetwork"]
