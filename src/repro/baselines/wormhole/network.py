"""Wormhole network model as the single-VC special case of the VC router."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.network import VCNetwork
from repro.topology.mesh import Mesh2D


@dataclass(frozen=True)
class WormholeConfig:
    """Parameters of a wormhole-flow-control network.

    ``buffers_per_input`` is the single input FIFO's depth.  The physical
    channel is held by one packet from head to tail; ``channel_release``
    picks when it becomes reallocatable ('when_empty' waits until the
    downstream FIFO drains, 'when_tail_sent' releases as the tail leaves).
    """

    buffers_per_input: int = 8
    data_link_delay: int = 4
    credit_link_delay: int = 1
    channel_release: str = "when_tail_sent"

    @property
    def name(self) -> str:
        return f"WH{self.buffers_per_input}"

    def as_vc_config(self) -> VCConfig:
        """The equivalent one-virtual-channel VC configuration."""
        return VCConfig(
            num_vcs=1,
            buffers_per_vc=self.buffers_per_input,
            data_link_delay=self.data_link_delay,
            credit_link_delay=self.credit_link_delay,
            vc_reallocation=self.channel_release,
        )


class WormholeNetwork(VCNetwork):
    """A mesh under wormhole flow control."""

    def __init__(
        self,
        config: WormholeConfig,
        mesh: Mesh2D | None = None,
        **kwargs: Any,
    ) -> None:
        self.wormhole_config = config
        super().__init__(config.as_vc_config(), mesh=mesh, **kwargs)

    @property
    def flow_control_name(self) -> str:
        return self.wormhole_config.name
