"""Wormhole flow control (Dally & Seitz, 1986).

Wormhole flow control allocates buffers and bandwidth in flit-sized units but
holds each physical channel for the whole duration of a packet -- which is
precisely virtual-channel flow control with a single virtual channel.  The
implementation therefore reuses the VC router with ``num_vcs=1``; a blocked
packet leaves its chain of physical channels idle, which is the throughput
pathology the related-work section describes and the wormhole ablation
benchmark demonstrates.
"""

from repro.baselines.wormhole.network import WormholeConfig, WormholeNetwork

__all__ = ["WormholeConfig", "WormholeNetwork"]
