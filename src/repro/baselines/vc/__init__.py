"""Virtual-channel flow control (Dally, 1992).

The paper's baseline: each physical channel multiplexes ``num_vcs`` virtual
channels, each with its own flit queue and credit-based backpressure, so a
blocked packet no longer monopolises the physical channel.  The router is a
single-stage pipeline (routing, VC allocation and switch arbitration resolve
in the cycle after a flit arrives) matching the base latencies the paper
reports; see DESIGN.md section 3 for the calibration.
"""

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.flits import VCFlit
from repro.baselines.vc.network import VCNetwork
from repro.baselines.vc.router import VCRouter

__all__ = ["VCConfig", "VCFlit", "VCNetwork", "VCRouter"]
