"""The virtual-channel router.

A single-stage router: a flit that arrives during cycle ``t`` is routed and
VC-allocated the same cycle (combinationally, as the paper's 1-cycle
"routing and scheduling latency" allows) and can win switch arbitration --
the paper's random arbitration -- at ``t + 1``.  Credits flow back over
1-cycle credit wires; a buffer is therefore idle for the full propagation +
credit turnaround the paper's Figure 1 illustrates, which is exactly the
inefficiency flit-reservation flow control removes.

Each router owns its input queues and, for each output, the upstream view of
the downstream router: per-VC credit counts and VC-ownership flags.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.flits import VCFlit
from repro.sim.link import Link
from repro.sim.rng import DeterministicRng
from repro.topology.mesh import EJECT, INJECT
from repro.topology.routing import DimensionOrderRouting

NUM_PORTS = 5  # north, east, south, west, local


class VCRouter:
    """One mesh router under virtual-channel flow control."""

    __slots__ = (
        "node",
        "config",
        "routing",
        "rng",
        "eject",
        "in_queues",
        "in_route",
        "in_out_vc",
        "in_active",
        "pool_occupancy",
        "out_data_links",
        "out_credit_links",
        "in_credit_links",
        "in_data_links",
        "out_credits",
        "out_shared_credits",
        "out_vc_owned",
        "connected_outputs",
        "ni_credit",
        "accept_flit",
        "_forward",
        "_on_flit_arrival",
        "_on_flit_forward",
        "_buffered_total",
        "_flags",
        "_wake",
        "flits_forwarded",
    )

    def __init__(
        self,
        node: int,
        config: VCConfig,
        routing: DimensionOrderRouting,
        rng: DeterministicRng,
        eject: Callable[[VCFlit, int], None],
    ) -> None:
        self.node = node
        self.config = config
        self.routing = routing
        self.rng = rng
        self.eject = eject
        v = config.num_vcs
        # Input side: per-port, per-VC flit queues and packet state.
        self.in_queues: list[list[deque[VCFlit]]] = [
            [deque() for _ in range(v)] for _ in range(NUM_PORTS)
        ]
        self.in_route = [[-1] * v for _ in range(NUM_PORTS)]
        self.in_out_vc = [[-1] * v for _ in range(NUM_PORTS)]
        self.in_active = [[False] * v for _ in range(NUM_PORTS)]
        self.pool_occupancy = [0] * NUM_PORTS
        # Output side: the upstream view of each downstream input.
        self.out_data_links: list[Optional[Link[tuple[int, VCFlit]]]] = [None] * NUM_PORTS
        self.out_credit_links: list[Optional[Link[int]]] = [None] * NUM_PORTS  # to upstream
        self.in_credit_links: list[Optional[Link[int]]] = [None] * NUM_PORTS  # from downstream
        self.in_data_links: list[Optional[Link[tuple[int, VCFlit]]]] = [None] * NUM_PORTS
        self.out_credits = [[config.buffers_per_vc] * v for _ in range(NUM_PORTS)]
        # Shared-pool mode (Tamir-Frazier): each VC keeps one dedicated slot
        # so a blocked VC can never monopolise the pool (that would deadlock);
        # the remaining slots are shared.
        self.out_shared_credits = [config.buffers_per_input - v] * NUM_PORTS
        self.out_vc_owned = [[False] * v for _ in range(NUM_PORTS)]
        self.connected_outputs: list[int] = []
        # Set by the network: called with (vc,) when a local-input flit leaves.
        self.ni_credit: Optional[Callable[[int], None]] = None
        # Observability hooks (pure observers; arbitration never consults
        # them).  Arrival: (flit, port, vc, cycle); forward: (flit, in port,
        # in vc, out port, cycle), ejections included.  The public names are
        # properties whose setters swap the accept_flit/_forward dispatch
        # slots between plain and observed variants (zero-cost detach).
        self._on_flit_arrival: Optional[Callable[[VCFlit, int, int, int], None]] = None
        self._on_flit_forward: Optional[Callable[[VCFlit, int, int, int, int], None]] = None
        self.accept_flit = self._accept_flit_plain
        self._forward = self._forward_plain
        # Activity tracking: total buffered flits across all inputs, plus the
        # wake slot the network rebinds to its worklist (bind_activity).
        self._buffered_total = 0
        self._flags = bytearray(1)
        self._wake = 0
        # Diagnostics.
        self.flits_forwarded = 0

    def bind_activity(self, flags: bytearray, index: int) -> None:
        """Point this router's wake slot at the network's worklist array."""
        self._flags = flags
        self._wake = index

    @property
    def on_flit_arrival(self) -> Optional[Callable[[VCFlit, int, int, int], None]]:
        return self._on_flit_arrival

    @on_flit_arrival.setter
    def on_flit_arrival(self, hook: Optional[Callable[[VCFlit, int, int, int], None]]) -> None:
        self._on_flit_arrival = hook
        self.accept_flit = (
            self._accept_flit_plain if hook is None else self._accept_flit_observed
        )

    @property
    def on_flit_forward(self) -> Optional[Callable[[VCFlit, int, int, int, int], None]]:
        return self._on_flit_forward

    @on_flit_forward.setter
    def on_flit_forward(
        self, hook: Optional[Callable[[VCFlit, int, int, int, int], None]]
    ) -> None:
        self._on_flit_forward = hook
        self._forward = self._forward_plain if hook is None else self._forward_observed

    # -- wiring (done once by the network) -----------------------------------

    def connect_output(
        self, port: int, data_link: Link[tuple[int, VCFlit]], credit_link: Link[int]
    ) -> None:
        """Attach the outgoing data link and incoming credit link of ``port``."""
        self.out_data_links[port] = data_link
        self.in_credit_links[port] = credit_link
        self.connected_outputs.append(port)

    def connect_input(
        self, port: int, data_link: Link[tuple[int, VCFlit]], credit_link: Link[int]
    ) -> None:
        """Attach the incoming data link and outgoing credit link of ``port``."""
        self.in_data_links[port] = data_link
        self.out_credit_links[port] = credit_link

    # -- per-cycle phases -----------------------------------------------------

    def deliver_credits(self, cycle: int) -> None:
        """Absorb credits returned by downstream routers."""
        buffers_per_vc = self.config.buffers_per_vc
        for port in self.connected_outputs:
            link = self.in_credit_links[port]
            credits = self.out_credits[port]
            for vc in link.receive(cycle):
                outstanding = buffers_per_vc - credits[vc]
                credits[vc] += 1
                if outstanding >= 2:
                    # The freed slot was a shared one; the VC's dedicated
                    # slot is released last.
                    self.out_shared_credits[port] += 1

    def switch_traversal(self, cycle: int) -> None:
        """Random switch arbitration and flit forwarding.

        One flit per input port and one per output port per cycle; winners
        are drawn in uniformly random order (the paper's random arbitration).
        """
        if not self._buffered_total:
            return
        candidates = self._gather_candidates()
        if not candidates:
            return
        if len(candidates) > 1:
            candidates = self.rng.shuffled(candidates)
        used_inputs = 0
        used_outputs = 0
        for port, vc, out_port in candidates:
            in_bit = 1 << port
            out_bit = 1 << out_port
            if used_inputs & in_bit or used_outputs & out_bit:
                continue
            used_inputs |= in_bit
            used_outputs |= out_bit
            self._forward(port, vc, out_port, cycle)

    def _gather_candidates(self) -> list[tuple[int, int, int]]:
        pool_mode = self.config.buffer_sharing == "pool"
        num_vcs = self.config.num_vcs
        candidates: list[tuple[int, int, int]] = []
        for port in range(NUM_PORTS):
            queues = self.in_queues[port]
            active = self.in_active[port]
            route = self.in_route[port]
            for vc in range(num_vcs):
                if not queues[vc] or not active[vc]:
                    continue
                out_port = route[vc]
                if out_port != EJECT:
                    out_vc = self.in_out_vc[port][vc]
                    if pool_mode:
                        if not self._pool_send_allowed(out_port, out_vc):
                            continue
                    elif self.out_credits[out_port][out_vc] <= 0:
                        continue
                candidates.append((port, vc, out_port))
        return candidates

    def _forward_plain(self, port: int, vc: int, out_port: int, cycle: int) -> None:
        flit = self.in_queues[port][vc].popleft()
        self.pool_occupancy[port] -= 1
        self._buffered_total -= 1
        self.flits_forwarded += 1
        if out_port == EJECT:
            self.eject(flit, cycle)
        else:
            out_vc = self.in_out_vc[port][vc]
            self.out_data_links[out_port].send((out_vc, flit), cycle)
            if self.config.buffers_per_vc - self.out_credits[out_port][out_vc] >= 1:
                # The VC's dedicated slot is taken; this flit uses a shared one.
                self.out_shared_credits[out_port] -= 1
            self.out_credits[out_port][out_vc] -= 1
            if flit.is_tail:
                self.out_vc_owned[out_port][out_vc] = False
        # Return the freed buffer to whoever feeds this input.
        if port == INJECT:
            self.ni_credit(vc)
        else:
            self.out_credit_links[port].send(vc, cycle)
        if flit.is_tail:
            self.in_active[port][vc] = False
            self.in_route[port][vc] = -1
            self.in_out_vc[port][vc] = -1

    def _forward_observed(self, port: int, vc: int, out_port: int, cycle: int) -> None:
        # Lockstep twin of _forward_plain; the hook fires after the dequeue
        # but before the flit moves, exactly where it always did.
        flit = self.in_queues[port][vc].popleft()
        self.pool_occupancy[port] -= 1
        self._buffered_total -= 1
        self.flits_forwarded += 1
        self._on_flit_forward(flit, port, vc, out_port, cycle)
        if out_port == EJECT:
            self.eject(flit, cycle)
        else:
            out_vc = self.in_out_vc[port][vc]
            self.out_data_links[out_port].send((out_vc, flit), cycle)
            if self.config.buffers_per_vc - self.out_credits[out_port][out_vc] >= 1:
                self.out_shared_credits[out_port] -= 1
            self.out_credits[out_port][out_vc] -= 1
            if flit.is_tail:
                self.out_vc_owned[out_port][out_vc] = False
        if port == INJECT:
            self.ni_credit(vc)
        else:
            self.out_credit_links[port].send(vc, cycle)
        if flit.is_tail:
            self.in_active[port][vc] = False
            self.in_route[port][vc] = -1
            self.in_out_vc[port][vc] = -1

    def deliver_flits(self, cycle: int) -> None:
        """Move arriving flits from input links into their VC queues."""
        for port in range(4):  # mesh ports only; local input is fed by the NI
            link = self.in_data_links[port]
            if link is None:
                continue
            for out_vc, flit in link.receive(cycle):
                self.accept_flit(port, out_vc, flit, cycle)

    def _accept_flit_plain(self, port: int, vc: int, flit: VCFlit, cycle: int = -1) -> None:
        """Insert one flit into an input VC queue, checking buffer bounds.

        ``cycle`` only feeds the observability hook (``-1`` marks callers
        outside the clocked phases, e.g. test setup).
        """
        queue = self.in_queues[port][vc]
        if self.config.buffer_sharing == "private":
            if len(queue) >= self.config.buffers_per_vc:
                raise RuntimeError(
                    f"VC buffer overflow at node {self.node} port {port} vc {vc}: "
                    "credit protocol violated"
                )
        elif self.pool_occupancy[port] >= self.config.buffers_per_input:
            raise RuntimeError(
                f"buffer pool overflow at node {self.node} port {port}: "
                "credit protocol violated"
            )
        queue.append(flit)
        self.pool_occupancy[port] += 1
        self._buffered_total += 1
        self._flags[self._wake] = 1

    def _accept_flit_observed(self, port: int, vc: int, flit: VCFlit, cycle: int = -1) -> None:
        self._accept_flit_plain(port, vc, flit, cycle)
        self._on_flit_arrival(flit, port, vc, cycle)

    def route_and_allocate(self, cycle: int) -> bool:
        """Route new head flits and allocate output virtual channels.

        Runs last in the cycle, so it also computes the router's activity
        predicate for the network worklist: buffered flits or anything in
        flight toward this router (data or credits) keeps it stepped.
        """
        if self._buffered_total:
            requests: dict[int, list[tuple[int, int]]] = {}
            num_vcs = self.config.num_vcs
            for port in range(NUM_PORTS):
                queues = self.in_queues[port]
                active = self.in_active[port]
                for vc in range(num_vcs):
                    if active[vc] or not queues[vc]:
                        continue
                    head = queues[vc][0]
                    if not head.is_head:
                        raise RuntimeError(
                            f"non-head flit {head!r} at the front of an idle VC at "
                            f"node {self.node}: packet framing corrupted"
                        )
                    out_port = self.routing.output_port(self.node, head.destination)
                    if out_port == EJECT:
                        self.in_route[port][vc] = EJECT
                        self.in_active[port][vc] = True
                    else:
                        bucket = requests.get(out_port)
                        if bucket is None:
                            bucket = []
                            requests[out_port] = bucket
                        bucket.append((port, vc))
            for out_port, requesters in requests.items():
                self._allocate_vcs(out_port, requesters)
            return True
        in_data = self.in_data_links
        for port in range(4):
            link = in_data[port]
            if link is not None and link.in_flight():
                return True
        in_credit = self.in_credit_links
        for port in self.connected_outputs:
            if in_credit[port].in_flight():
                return True
        return False

    def _allocate_vcs(self, out_port: int, requesters: list[tuple[int, int]]) -> None:
        free_vcs = [
            vc for vc in range(self.config.num_vcs) if self._vc_allocatable(out_port, vc)
        ]
        if not free_vcs:
            return
        if len(requesters) > 1:
            requesters = self.rng.shuffled(requesters)
        free_vcs = self.rng.shuffled(free_vcs)
        for (port, vc), out_vc in zip(requesters, free_vcs):
            self.in_route[port][vc] = out_port
            self.in_out_vc[port][vc] = out_vc
            self.in_active[port][vc] = True
            self.out_vc_owned[out_port][out_vc] = True

    def _pool_send_allowed(self, out_port: int, vc: int) -> bool:
        """Shared-pool gate: the VC's dedicated slot or a shared slot free."""
        outstanding = self.config.buffers_per_vc - self.out_credits[out_port][vc]
        return outstanding == 0 or self.out_shared_credits[out_port] > 0

    def _vc_allocatable(self, out_port: int, vc: int) -> bool:
        if self.out_vc_owned[out_port][vc]:
            return False
        if self.config.vc_reallocation == "when_empty":
            return self.out_credits[out_port][vc] == self.config.buffers_per_vc
        return True

    # -- introspection --------------------------------------------------------

    def buffered_flits(self, port: int) -> int:
        """Occupied buffers at one input (for the Section 4.2 occupancy study)."""
        return self.pool_occupancy[port]

    def buffered_total(self) -> int:
        """Occupied buffers summed over every input of this router."""
        total = 0
        for occupied in self.pool_occupancy:
            total += occupied
        return total
