"""The node interface (NI) for the virtual-channel network.

The NI holds an unbounded source queue of packets (source queueing time is
part of the paper's latency definition), expands the packet at the front
into flits, claims an injection virtual channel, and feeds the router's
local input port at one flit per cycle, subject to the same credit rules as
any other input.  On-node wiring is short, so NI credits return without link
delay.
"""

from __future__ import annotations

from collections import deque

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.flits import VCFlit, packet_to_flits
from repro.baselines.vc.router import VCRouter
from repro.sim.rng import DeterministicRng
from repro.topology.mesh import INJECT
from repro.traffic.packet import Packet


class VCNodeInterface:
    """Injects packets into one router's local input port."""

    __slots__ = (
        "router",
        "config",
        "rng",
        "packet_queue",
        "_pending",
        "_inject_vc",
        "_credits",
        "_shared_credits",
        "_owned",
    )

    def __init__(self, router: VCRouter, config: VCConfig, rng: DeterministicRng) -> None:
        self.router = router
        self.config = config
        self.rng = rng
        self.packet_queue: deque[Packet] = deque()
        self._pending: deque[VCFlit] = deque()
        self._inject_vc = -1
        self._credits = [config.buffers_per_vc] * config.num_vcs
        self._shared_credits = config.buffers_per_input - config.num_vcs
        self._owned = [False] * config.num_vcs
        router.ni_credit = self._credit_return

    def enqueue(self, packet: Packet) -> None:
        """Accept a freshly created packet into the source queue."""
        self.packet_queue.append(packet)

    @property
    def queue_length(self) -> int:
        """Packets waiting or partially injected (the warm-up signal)."""
        return len(self.packet_queue) + (1 if self._pending else 0)

    def inject(self, cycle: int) -> bool:
        """Try to push one flit into the router's local input this cycle.

        Returns whether the NI still has flits or packets to inject (the
        network worklist predicate; a credit-stalled NI stays active until
        its backlog drains, so credit returns never need to wake it).
        """
        pending = self._pending
        if not pending:
            if not self.packet_queue:
                return False
            self._start_next_packet()
            if not pending:
                return True  # no free injection VC; retry next cycle
        vc = self._inject_vc
        if self.config.buffer_sharing == "pool":
            outstanding = self.config.buffers_per_vc - self._credits[vc]
            if outstanding >= 1 and self._shared_credits <= 0:
                return True
            if outstanding >= 1:
                self._shared_credits -= 1
        elif self._credits[vc] <= 0:
            return True
        flit = pending.popleft()
        self._credits[vc] -= 1
        self.router.accept_flit(INJECT, vc, flit, cycle)
        if not pending:
            self._owned[vc] = False
            self._inject_vc = -1
        return bool(pending or self.packet_queue)

    def _start_next_packet(self) -> None:
        free = [vc for vc in range(self.config.num_vcs) if self._allocatable(vc)]
        if not free:
            return
        vc = self.rng.choice(free)
        packet = self.packet_queue.popleft()
        self._pending.extend(packet_to_flits(packet))
        self._inject_vc = vc
        self._owned[vc] = True

    def _allocatable(self, vc: int) -> bool:
        if self._owned[vc]:
            return False
        if self.config.vc_reallocation == "when_empty":
            return self._credits[vc] == self.config.buffers_per_vc
        return True

    def _credit_return(self, vc: int) -> None:
        outstanding = self.config.buffers_per_vc - self._credits[vc]
        self._credits[vc] += 1
        if self.config.buffer_sharing == "pool" and outstanding >= 2:
            self._shared_credits += 1
