"""Configuration for the virtual-channel network.

The paper's experimental configurations keep 4 flit buffers per virtual
channel and scale the VC count: VC8 (2 VCs), VC16 (4 VCs), VC32 (8 VCs).
Two physical regimes are modelled: *fast control* (4-cycle data wires,
1-cycle credit wires) and *1-cycle wires* (the leading-control comparison of
Figure 9, where data and credit links both take one cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class VCConfig:
    """Parameters of a virtual-channel flow control network.

    ``buffer_sharing`` selects private per-VC queues (the paper's default)
    or one dynamically shared pool per input in the spirit of Tamir &
    Frazier's DAMQ, which Section 5 reports gives no throughput gain.
    """

    num_vcs: int = 2
    buffers_per_vc: int = 4
    data_link_delay: int = 4
    credit_link_delay: int = 1
    buffer_sharing: str = "private"  # "private" | "pool"
    vc_reallocation: str = "when_tail_sent"  # "when_tail_sent" | "when_empty"

    def __post_init__(self) -> None:
        if self.num_vcs < 1:
            raise ValueError(f"need at least 1 virtual channel, got {self.num_vcs}")
        if self.buffers_per_vc < 1:
            raise ValueError(f"need at least 1 buffer per VC, got {self.buffers_per_vc}")
        if self.buffer_sharing not in ("private", "pool"):
            raise ValueError(f"unknown buffer_sharing {self.buffer_sharing!r}")
        if self.vc_reallocation not in ("when_empty", "when_tail_sent"):
            raise ValueError(f"unknown vc_reallocation {self.vc_reallocation!r}")

    @property
    def buffers_per_input(self) -> int:
        """Total data flit buffers per input channel (the paper's b_d)."""
        return self.num_vcs * self.buffers_per_vc

    @property
    def name(self) -> str:
        return f"VC{self.buffers_per_input}"

    def with_unit_links(self) -> "VCConfig":
        """The 1-cycle-wire variant used in the leading-control comparison."""
        return replace(self, data_link_delay=1, credit_link_delay=1)


#: The paper's Table 1 baseline configurations (fast-control regime).
VC8 = VCConfig(num_vcs=2, buffers_per_vc=4)
VC16 = VCConfig(num_vcs=4, buffers_per_vc=4)
VC32 = VCConfig(num_vcs=8, buffers_per_vc=4)
