"""The complete virtual-channel network: routers, links, NIs, and the cycle loop.

Cycle phase order (identical reasoning for all network models):

1. switch arbitration and traversal -- uses state as of the end of the
   previous cycle, launches flits and credits onto links;
2. link delivery -- flits/credits launched at least one cycle ago arrive;
3. packet creation and NI injection;
4. routing and VC allocation for newly exposed head flits.

Because every inter-router link has delay >= 1, phases of different routers
never interact within a cycle, so the network walks the routers once per
phase without any event queue.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.flits import VCFlit
from repro.baselines.vc.interface import VCNodeInterface
from repro.baselines.vc.router import VCRouter
from repro.sim.link import Link
from repro.sim.netbase import NetworkModel
from repro.stats.collectors import OccupancyTracker
from repro.topology.mesh import WEST, Mesh2D, opposite_port


class VCNetwork(NetworkModel):
    """An 8x8 (by default) mesh under virtual-channel flow control."""

    def __init__(
        self,
        config: VCConfig,
        mesh: Mesh2D | None = None,
        packet_length: int = 5,
        injection_rate: float = 0.1,
        seed: int = 1,
        traffic: str = "uniform",
        injection_process: str = "periodic",
        track_occupancy_node: int | None = None,
        streaming: bool = False,
    ) -> None:
        mesh = mesh or Mesh2D(8, 8)
        super().__init__(
            mesh,
            packet_length=packet_length,
            injection_rate=injection_rate,
            seed=seed,
            traffic=traffic,
            injection_process=injection_process,
            streaming=streaming,
        )
        self.config = config
        self.routers = [
            VCRouter(
                node,
                config,
                self.routing,
                self.rng.spawn(20_000 + node),
                self._make_eject(node),
            )
            for node in mesh.nodes()
        ]
        self.interfaces = [
            VCNodeInterface(self.routers[node], config, self.rng.spawn(30_000 + node))
            for node in mesh.nodes()
        ]
        # Active-set worklists: one flag per router (gating all three router
        # phases -- the router re-raises it via accept_flit and link wakes)
        # and one per NI (raised at enqueue, lowered when its backlog
        # drains).  Everything starts active for a full first sweep.
        n = len(self.routers)
        self._active = bytearray(b"\x01" * n)
        self._ni_active = bytearray(b"\x01" * n)
        for node in mesh.nodes():
            self.routers[node].bind_activity(self._active, node)
        self._wire_links()
        self.occupancy: OccupancyTracker | None = None
        self._occupancy_node = track_occupancy_node
        if track_occupancy_node is not None:
            self.occupancy = OccupancyTracker(config.buffers_per_input)

    @property
    def flow_control_name(self) -> str:
        return self.config.name

    def _wire_links(self) -> None:
        for node in self.mesh.nodes():
            router = self.routers[node]
            for port in self.mesh.mesh_ports(node):
                neighbor = self.mesh.neighbor(node, port)
                data: Link[tuple[int, VCFlit]] = Link(self.config.data_link_delay)
                credit: Link[int] = Link(self.config.credit_link_delay)
                router.connect_output(port, data, credit)
                self.routers[neighbor].connect_input(opposite_port(port), data, credit)
                # Flit sends wake the neighbor, credit sends wake this router.
                data.set_wake(self._active, neighbor)
                credit.set_wake(self._active, node)

    def _make_eject(self, node: int) -> Callable[[VCFlit, int], None]:
        def eject(flit: VCFlit, cycle: int) -> None:
            if flit.packet.destination != node:
                raise RuntimeError(
                    f"misdelivery: {flit!r} ejected at node {node}, "
                    f"destination {flit.packet.destination}"
                )
            self._eject_flit(flit.packet, cycle)

        return eject

    def source_queue_length(self, node: int) -> int:
        return self.interfaces[node].queue_length

    def step(self, cycle: int) -> None:
        # Active-set sweep: full eval_order walks (deterministic iteration
        # order untouched) stepping only flagged nodes.  One flag gates all
        # three router phases; route_and_allocate runs last and computes the
        # activity predicate.  Skipping an idle router is digest-identical to
        # stepping it: an empty phase mutates nothing and draws no randomness.
        for node in self.eval_order:
            if self._active[node]:
                self.routers[node].deliver_credits(cycle)
                self.routers[node].switch_traversal(cycle)
        for node in self.eval_order:
            if self._active[node]:
                self.routers[node].deliver_flits(cycle)
        for packet in self._create_packets(cycle):
            source = packet.source
            self.interfaces[source].enqueue(packet)
            self._ni_active[source] = 1
        for node in self.eval_order:
            if self._ni_active[node] and not self.interfaces[node].inject(cycle):
                self._ni_active[node] = 0
        for node in self.eval_order:
            if self._active[node] and not self.routers[node].route_and_allocate(cycle):
                self._active[node] = 0
        if self.occupancy is not None:
            self._sample_occupancy(cycle)

    def rearm_activity(self) -> None:
        """Mark every component active (next cycle is a full dense sweep).

        Worklist flags are a pure performance device -- raising them all is
        always safe and is how tests force dense stepping for equivalence
        checks.
        """
        n = len(self.routers)
        self._active[:] = b"\x01" * n
        self._ni_active[:] = b"\x01" * n

    def _sample_occupancy(self, cycle: int) -> None:
        """Track the west input of the chosen router, as in Section 4.2's
        'specific buffer pool of a router in the middle of the mesh'."""
        router = self.routers[self._occupancy_node]
        self.occupancy.record(
            min(router.buffered_flits(WEST), self.occupancy.pool_size), cycle
        )

    def track_occupancy(self, node: int) -> OccupancyTracker:
        """Start tracking ``node``'s west input pool, mid-run safe.

        Sampling begins at the end of the next executed cycle; the
        cycle-stamped :meth:`OccupancyTracker.record` guarantees the attach
        boundary cycle is never counted twice.
        """
        if self.occupancy is None or self._occupancy_node != node:
            self.occupancy = OccupancyTracker(self.config.buffers_per_input)
            self._occupancy_node = node
        return self.occupancy
