"""Flit representation for virtual-channel (and wormhole) flow control.

A packet of length L becomes one head flit, L-2 body flits and one tail flit
(a single-flit packet is both head and tail).  Head flits carry the
destination; every flit is tagged with the virtual channel it travels on,
mirroring the VCID padding the paper charges to VC flow control in Table 1.
"""

from __future__ import annotations

from repro.traffic.packet import Packet

HEAD = 0
BODY = 1
TAIL = 2
HEAD_TAIL = 3


class VCFlit:
    """One flit of a packet in a buffered flow-control network."""

    __slots__ = ("packet", "kind", "index")

    def __init__(self, packet: Packet, kind: int, index: int) -> None:
        self.packet = packet
        self.kind = kind
        self.index = index

    @property
    def is_head(self) -> bool:
        return self.kind in (HEAD, HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self.kind in (TAIL, HEAD_TAIL)

    @property
    def destination(self) -> int:
        return self.packet.destination

    def __repr__(self) -> str:
        kind_name = {HEAD: "head", BODY: "body", TAIL: "tail", HEAD_TAIL: "head+tail"}[self.kind]
        return f"VCFlit(pkt={self.packet.packet_id}, {kind_name}, #{self.index})"


def packet_to_flits(packet: Packet) -> list[VCFlit]:
    """Expand a packet into its head/body/tail flit sequence."""
    if packet.length == 1:
        return [VCFlit(packet, HEAD_TAIL, 0)]
    flits = [VCFlit(packet, HEAD, 0)]
    flits.extend(VCFlit(packet, BODY, i) for i in range(1, packet.length - 1))
    flits.append(VCFlit(packet, TAIL, packet.length - 1))
    return flits
