"""Workload generation: packets, traffic patterns, and injection processes.

The paper's evaluation uses uniformly distributed traffic to random
destinations injected by a constant-rate source.  This subpackage provides
that workload plus the standard synthetic patterns (transpose, bit-complement,
bit-reverse, shuffle, hotspot, nearest-neighbour) used by the extension
benchmarks.
"""

from repro.traffic.injection import (
    BernoulliInjection,
    InjectionProcess,
    PeriodicInjection,
    make_injection_process,
)
from repro.traffic.packet import Packet
from repro.traffic.patterns import (
    BitComplementTraffic,
    BitReverseTraffic,
    HotspotTraffic,
    NeighborTraffic,
    ShuffleTraffic,
    TrafficPattern,
    TransposeTraffic,
    UniformRandomTraffic,
    make_traffic_pattern,
)
from repro.traffic.source import PacketSource

__all__ = [
    "BernoulliInjection",
    "BitComplementTraffic",
    "BitReverseTraffic",
    "HotspotTraffic",
    "InjectionProcess",
    "NeighborTraffic",
    "Packet",
    "PacketSource",
    "PeriodicInjection",
    "ShuffleTraffic",
    "TrafficPattern",
    "TransposeTraffic",
    "UniformRandomTraffic",
    "make_injection_process",
    "make_traffic_pattern",
]
