"""The workload-level packet record.

A :class:`Packet` is flow-control agnostic: it says *what* must be delivered
(source, destination, length in flits, creation time).  Each router model
turns packets into its own flit representation -- head/body/tail flits for
virtual-channel and wormhole flow control, control flits plus anonymous data
flits for flit-reservation flow control.
"""

from __future__ import annotations


class Packet:
    """One message injected into the network.

    ``length`` counts the flits the workload pays for: for virtual-channel
    flow control it is the total head+body+tail flit count; for
    flit-reservation flow control it is the number of data flits (control
    flits are overhead accounted separately, as in the paper's Table 2).
    """

    __slots__ = (
        "packet_id",
        "source",
        "destination",
        "length",
        "creation_cycle",
        "measured",
        "delivery_cycle",
        "flits_delivered",
    )

    def __init__(
        self,
        packet_id: int,
        source: int,
        destination: int,
        length: int,
        creation_cycle: int,
        measured: bool = False,
    ) -> None:
        if length < 1:
            raise ValueError(f"packet length must be >= 1 flit, got {length}")
        if source == destination:
            raise ValueError("packets must have destination != source")
        self.packet_id = packet_id
        self.source = source
        self.destination = destination
        self.length = length
        self.creation_cycle = creation_cycle
        self.measured = measured
        self.delivery_cycle: int | None = None
        self.flits_delivered = 0

    def record_flit_delivery(self, cycle: int) -> bool:
        """Note one flit ejected at the destination; True when packet complete.

        Packet latency spans first-flit creation to last-flit ejection
        (the paper's definition, including source queueing time).
        """
        self.flits_delivered += 1
        if self.flits_delivered > self.length:
            raise ValueError(
                f"packet {self.packet_id} delivered {self.flits_delivered} flits "
                f"but has length {self.length}"
            )
        if self.flits_delivered == self.length:
            self.delivery_cycle = cycle
            return True
        return False

    @property
    def delivered(self) -> bool:
        """Whether every flit of the packet has been ejected."""
        return self.delivery_cycle is not None

    @property
    def latency(self) -> int:
        """Creation-to-last-ejection latency in cycles (delivered packets only)."""
        if self.delivery_cycle is None:
            raise ValueError(f"packet {self.packet_id} not yet delivered")
        return self.delivery_cycle - self.creation_cycle

    def __repr__(self) -> str:
        return (
            f"Packet(id={self.packet_id}, {self.source}->{self.destination}, "
            f"len={self.length}, t0={self.creation_cycle})"
        )
