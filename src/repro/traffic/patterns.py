"""Synthetic traffic patterns.

A traffic pattern chooses the destination for each newly created packet.  The
paper evaluates uniform random traffic; the permutation and hotspot patterns
here are the standard companions used by the extension benchmarks to stress
different parts of the mesh.

Deterministic permutation patterns may map a node onto itself (for example
the diagonal of the transpose); such nodes simply do not inject, which is the
conventional treatment in the NoC literature.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.rng import DeterministicRng
from repro.topology.mesh import Mesh2D


class TrafficPattern:
    """Base class: maps a source node to a destination per packet."""

    __slots__ = ("mesh",)

    def __init__(self, mesh: Mesh2D) -> None:
        self.mesh = mesh

    def destination(self, source: int, rng: DeterministicRng) -> Optional[int]:
        """Destination for a packet from ``source``; None means "do not inject"."""
        raise NotImplementedError("traffic patterns must implement destination()")

    def active_sources(self) -> list[int]:
        """Nodes that inject under this pattern."""
        return [node for node in self.mesh.nodes() if not self._is_self_mapped(node)]

    def _is_self_mapped(self, node: int) -> bool:
        probe = DeterministicRng(0)
        return self.destination(node, probe) is None


class UniformRandomTraffic(TrafficPattern):
    """Every packet goes to a uniformly random destination != source."""

    __slots__ = ()

    def destination(self, source: int, rng: DeterministicRng) -> Optional[int]:
        destination = rng.randint(0, self.mesh.num_nodes - 2)
        if destination >= source:
            destination += 1
        return destination


class TransposeTraffic(TrafficPattern):
    """Node (x, y) sends to node (y, x); requires a square mesh."""

    __slots__ = ()

    def __init__(self, mesh: Mesh2D) -> None:
        if mesh.width != mesh.height:
            raise ValueError("transpose traffic requires a square mesh")
        super().__init__(mesh)

    def destination(self, source: int, rng: DeterministicRng) -> Optional[int]:
        x, y = self.mesh.coordinates(source)
        destination = self.mesh.node_at(y, x)
        return None if destination == source else destination


class BitComplementTraffic(TrafficPattern):
    """Node (x, y) sends to (width-1-x, height-1-y)."""

    __slots__ = ()

    def destination(self, source: int, rng: DeterministicRng) -> Optional[int]:
        x, y = self.mesh.coordinates(source)
        destination = self.mesh.node_at(self.mesh.width - 1 - x, self.mesh.height - 1 - y)
        return None if destination == source else destination


class BitReverseTraffic(TrafficPattern):
    """Destination is the bit-reversal of the source id (power-of-two meshes)."""

    __slots__ = ("_bits",)

    def __init__(self, mesh: Mesh2D) -> None:
        bits = (mesh.num_nodes - 1).bit_length()
        if 1 << bits != mesh.num_nodes:
            raise ValueError("bit-reverse traffic requires a power-of-two node count")
        super().__init__(mesh)
        self._bits = bits

    def destination(self, source: int, rng: DeterministicRng) -> Optional[int]:
        reversed_id = 0
        remaining = source
        for _ in range(self._bits):
            reversed_id = (reversed_id << 1) | (remaining & 1)
            remaining >>= 1
        return None if reversed_id == source else reversed_id


class ShuffleTraffic(TrafficPattern):
    """Perfect shuffle: rotate the source id left by one bit."""

    __slots__ = ("_bits",)

    def __init__(self, mesh: Mesh2D) -> None:
        bits = (mesh.num_nodes - 1).bit_length()
        if 1 << bits != mesh.num_nodes:
            raise ValueError("shuffle traffic requires a power-of-two node count")
        super().__init__(mesh)
        self._bits = bits

    def destination(self, source: int, rng: DeterministicRng) -> Optional[int]:
        top_bit = (source >> (self._bits - 1)) & 1
        destination = ((source << 1) | top_bit) & (self.mesh.num_nodes - 1)
        return None if destination == source else destination


class HotspotTraffic(TrafficPattern):
    """Uniform traffic with extra probability mass on a few hotspot nodes."""

    __slots__ = ("hotspots", "hotspot_fraction", "_uniform")

    def __init__(self, mesh: Mesh2D, hotspots: list[int], hotspot_fraction: float = 0.2) -> None:
        if not hotspots:
            raise ValueError("hotspot traffic needs at least one hotspot node")
        if not 0.0 < hotspot_fraction < 1.0:
            raise ValueError("hotspot_fraction must be in (0, 1)")
        super().__init__(mesh)
        self.hotspots = list(hotspots)
        self.hotspot_fraction = hotspot_fraction
        self._uniform = UniformRandomTraffic(mesh)

    def destination(self, source: int, rng: DeterministicRng) -> Optional[int]:
        if rng.chance(self.hotspot_fraction):
            candidates = [h for h in self.hotspots if h != source]
            if candidates:
                return rng.choice(candidates)
        return self._uniform.destination(source, rng)


class NeighborTraffic(TrafficPattern):
    """Each node sends one hop east (wrapping to the row start at the edge)."""

    __slots__ = ()

    def destination(self, source: int, rng: DeterministicRng) -> Optional[int]:
        x, y = self.mesh.coordinates(source)
        return self.mesh.node_at((x + 1) % self.mesh.width, y)


_PATTERNS = {
    "uniform": UniformRandomTraffic,
    "transpose": TransposeTraffic,
    "bit_complement": BitComplementTraffic,
    "bit_reverse": BitReverseTraffic,
    "shuffle": ShuffleTraffic,
    "neighbor": NeighborTraffic,
}


def make_traffic_pattern(name: str, mesh: Mesh2D, **kwargs: Any) -> TrafficPattern:
    """Build a pattern by name ('uniform', 'transpose', 'hotspot', ...)."""
    if name == "hotspot":
        hotspots = kwargs.pop("hotspots", [mesh.node_at(mesh.width // 2, mesh.height // 2)])
        return HotspotTraffic(mesh, hotspots=hotspots, **kwargs)
    try:
        pattern_class = _PATTERNS[name]
    except KeyError:
        known = ", ".join(sorted([*_PATTERNS, "hotspot"]))
        raise ValueError(f"unknown traffic pattern {name!r}; known patterns: {known}")
    return pattern_class(mesh, **kwargs)
