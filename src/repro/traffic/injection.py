"""Injection processes: when does a source create a new packet?

The paper uses a *constant rate* source -- packets are created on a fixed
period (with a per-node random phase so the whole mesh does not pulse in
lockstep).  A Bernoulli process is also provided since it is the other
standard choice in the literature and is useful for sensitivity checks.
"""

from __future__ import annotations

from repro.sim.rng import DeterministicRng


class InjectionProcess:
    """Decides, cycle by cycle, whether a source creates a packet."""

    __slots__ = ()

    def should_inject(self, cycle: int, rng: DeterministicRng) -> bool:
        raise NotImplementedError("injection processes must implement should_inject")

    @property
    def rate(self) -> float:
        """Long-run packets per cycle."""
        raise NotImplementedError("injection processes must report their long-run rate")


class PeriodicInjection(InjectionProcess):
    """Constant-rate source: an accumulator fires whenever it crosses 1.

    ``rate`` is packets per cycle and may be any value in (0, 1].  The
    accumulator starts at a random phase in [0, 1) so different nodes are
    decorrelated.
    """

    __slots__ = ("_rate", "_accumulator")

    def __init__(self, rate: float, phase: float = 0.0) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"injection rate must be in (0, 1] packets/cycle, got {rate}")
        if not 0.0 <= phase < 1.0:
            raise ValueError(f"phase must be in [0, 1), got {phase}")
        self._rate = rate
        self._accumulator = phase

    @property
    def rate(self) -> float:
        return self._rate

    def should_inject(self, cycle: int, rng: DeterministicRng) -> bool:
        self._accumulator += self._rate
        if self._accumulator >= 1.0:
            self._accumulator -= 1.0
            return True
        return False


class BernoulliInjection(InjectionProcess):
    """Memoryless source: inject with probability ``rate`` each cycle."""

    __slots__ = ("_rate",)

    def __init__(self, rate: float) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"injection rate must be in (0, 1] packets/cycle, got {rate}")
        self._rate = rate

    @property
    def rate(self) -> float:
        return self._rate

    def should_inject(self, cycle: int, rng: DeterministicRng) -> bool:
        return rng.chance(self._rate)


def make_injection_process(
    kind: str, rate: float, rng: DeterministicRng | None = None
) -> InjectionProcess:
    """Build an injection process by name ('periodic' or 'bernoulli').

    For periodic sources a random phase is drawn from ``rng`` when provided.
    """
    if kind == "periodic":
        phase = rng.random() if rng is not None else 0.0
        return PeriodicInjection(rate, phase=phase)
    if kind == "bernoulli":
        return BernoulliInjection(rate)
    raise ValueError(f"unknown injection process {kind!r}; use 'periodic' or 'bernoulli'")
