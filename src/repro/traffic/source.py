"""Per-node packet sources.

A :class:`PacketSource` combines a traffic pattern with an injection process
and stamps out :class:`~repro.traffic.packet.Packet` records.  Sources know
nothing about flow control; the router-side node interfaces pull packets from
them and turn them into flits.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.rng import DeterministicRng
from repro.traffic.injection import InjectionProcess
from repro.traffic.packet import Packet
from repro.traffic.patterns import TrafficPattern


class PacketSource:
    """Creates packets at one node according to a pattern and a process.

    ``measure_window`` is the half-open cycle interval during which created
    packets are tagged as measured; the harness sets it after warm-up so
    latency statistics cover a well-defined packet sample, mirroring the
    paper's 100 000-packet sample methodology.
    """

    __slots__ = (
        "node",
        "pattern",
        "process",
        "packet_length",
        "rng",
        "_next_packet_id",
        "measure_window",
        "packets_created",
        "enabled",
    )

    def __init__(
        self,
        node: int,
        pattern: TrafficPattern,
        process: InjectionProcess,
        packet_length: int,
        rng: DeterministicRng,
        next_packet_id: Callable[[], int],
    ) -> None:
        self.node = node
        self.pattern = pattern
        self.process = process
        self.packet_length = packet_length
        self.rng = rng
        self._next_packet_id = next_packet_id
        self.measure_window: tuple[int, int] | None = None
        self.packets_created = 0
        self.enabled = True

    def maybe_create(self, cycle: int) -> Optional[Packet]:
        """Create and return this cycle's packet, if the process fires."""
        if not self.enabled or not self.process.should_inject(cycle, self.rng):
            return None
        destination = self.pattern.destination(self.node, self.rng)
        if destination is None:
            return None
        window = self.measure_window
        measured = window is not None and window[0] <= cycle < window[1]
        self.packets_created += 1
        return Packet(
            packet_id=self._next_packet_id(),
            source=self.node,
            destination=destination,
            length=self.packet_length,
            creation_cycle=cycle,
            measured=measured,
        )
