"""Runtime statistics collectors.

Each collector is a small accumulator the networks feed during simulation:

* :class:`LatencyStats` -- packet latency sample (mean, percentiles, CI),
* :class:`ThroughputCounter` -- flits ejected inside a measurement window,
* :class:`OccupancyTracker` -- how often a buffer pool is full (the paper's
  Section 4.2 observation that FR6 runs ~40% full near saturation while VC
  saturates below 5% full), and
* :class:`ControlLeadTracker` -- how far control flits arrive ahead of their
  data flits (Section 4.4's ~14-15 cycle lead).
"""

from __future__ import annotations

import math
from statistics import NormalDist

from repro.stats.confidence import mean_and_halfwidth
from repro.stats.streaming import P2Quantile, RunningMoments

#: Quantiles a streaming ``LatencyStats`` tracks by default (as ``q`` of
#: ``percentile(q)``): the median, the paper-reported p95, and the tail.
DEFAULT_TRACKED_QUANTILES: tuple[float, ...] = (50.0, 95.0, 99.0)


class LatencyStats:
    """Accumulates per-packet latencies and summarises them.

    The default mode keeps every sample: percentiles, histograms, and the
    batch-means confidence interval are exact.  ``streaming=True`` swaps the
    sample list for O(1)-memory estimators (Welford moments plus one P²
    marker set per tracked quantile) for runs too long to hold in memory;
    in that mode ``percentile`` serves only the ``tracked_quantiles`` (plus
    0 and 100, which are exact), the confidence half-width falls back to
    the normal approximation (correlated samples may understate it -- use
    the exact mode for publishable intervals), and ``histogram`` /
    ``samples`` are unavailable.
    """

    def __init__(
        self,
        streaming: bool = False,
        tracked_quantiles: tuple[float, ...] = DEFAULT_TRACKED_QUANTILES,
    ) -> None:
        self.streaming = streaming
        self._samples: list[int] = []
        self._moments: RunningMoments | None = None
        self._estimators: dict[float, P2Quantile] = {}
        self._minimum = 0
        self._maximum = 0
        if streaming:
            for q in tracked_quantiles:
                if not 0.0 < q < 100.0:
                    raise ValueError(
                        f"tracked quantiles must be in (0, 100), got {q}"
                    )
            self._moments = RunningMoments()
            self._estimators = {q: P2Quantile(q / 100.0) for q in tracked_quantiles}

    def record(self, latency: int) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        if self._moments is None:
            self._samples.append(latency)
            return
        if self._moments.count == 0:
            self._minimum = latency
            self._maximum = latency
        else:
            self._minimum = min(self._minimum, latency)
            self._maximum = max(self._maximum, latency)
        self._moments.observe(latency)
        for estimator in self._estimators.values():
            estimator.observe(latency)

    @property
    def count(self) -> int:
        if self._moments is not None:
            return self._moments.count
        return len(self._samples)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no latency samples recorded")
        if self._moments is not None:
            return self._moments.mean
        return sum(self._samples) / len(self._samples)

    @property
    def maximum(self) -> int:
        if self.count == 0:
            raise ValueError("no latency samples recorded")
        if self._moments is not None:
            return self._maximum
        return max(self._samples)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, ``q`` in [0, 100].

        Exact in the default mode.  In streaming mode only the tracked
        quantiles are served (P² estimates; 0 and 100 are exact).
        """
        if self.count == 0:
            raise ValueError("no latency samples recorded")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self._moments is not None:
            if q == 0.0:
                return float(self._minimum)
            if q == 100.0:
                return float(self._maximum)
            estimator = self._estimators.get(q)
            if estimator is None:
                tracked = ", ".join(f"{t:g}" for t in sorted(self._estimators))
                raise ValueError(
                    f"streaming mode tracks only quantiles [{tracked}] "
                    f"(plus 0 and 100); {q:g} was not configured"
                )
            return estimator.value
        ordered = sorted(self._samples)
        position = (len(ordered) - 1) * q / 100.0
        low = math.floor(position)
        high = math.ceil(position)
        if low == high:
            return float(ordered[low])
        fraction = position - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction

    def confidence_halfwidth(self, level: float = 0.95) -> float:
        """Half-width of the CI of the mean (batch means, so correlated
        samples from one run do not understate the error).

        Streaming mode cannot batch, so it falls back to the i.i.d. normal
        approximation ``z * s / sqrt(n)`` -- an *approximation* that
        understates the error of correlated within-run samples.
        """
        if self._moments is not None:
            if self._moments.count < 2:
                raise ValueError("need at least 2 samples for a confidence interval")
            z = NormalDist().inv_cdf((1.0 + level) / 2.0)
            return z * self._moments.stddev / math.sqrt(self._moments.count)
        _, halfwidth = mean_and_halfwidth(self._samples, level=level)
        return halfwidth

    @property
    def stddev(self) -> float:
        """Sample standard deviation of the latencies."""
        if self._moments is not None:
            return self._moments.stddev
        n = len(self._samples)
        if n < 2:
            raise ValueError("need at least 2 samples for a standard deviation")
        mean = self.mean
        return math.sqrt(sum((x - mean) ** 2 for x in self._samples) / (n - 1))

    def histogram(self, bin_width: int = 5) -> list[tuple[int, int]]:
        """(bin_start, count) pairs covering the sample, fixed-width bins.

        Empty bins inside the range are included so the shape (e.g. the
        heavy saturation tail) reads correctly when printed.
        """
        if self._moments is not None:
            raise ValueError("streaming mode keeps no samples; no histogram")
        if not self._samples:
            raise ValueError("no latency samples recorded")
        if bin_width < 1:
            raise ValueError(f"bin width must be >= 1, got {bin_width}")
        low = min(self._samples) // bin_width * bin_width
        high = max(self._samples) // bin_width * bin_width
        counts = {start: 0 for start in range(low, high + 1, bin_width)}
        for sample in self._samples:
            counts[sample // bin_width * bin_width] += 1
        return sorted(counts.items())

    def format_histogram(self, bin_width: int = 5, bar_width: int = 40) -> str:
        """A printable text histogram of the latency distribution."""
        rows = self.histogram(bin_width)
        peak = max(count for _, count in rows)
        lines: list[str] = []
        for start, count in rows:
            bar = "#" * round(bar_width * count / peak) if peak else ""
            lines.append(f"{start:>6}-{start + bin_width - 1:<6}{count:>8}  {bar}")
        return "\n".join(lines)

    def samples(self) -> list[int]:
        """A copy of the raw sample list (default mode only)."""
        if self._moments is not None:
            raise ValueError("streaming mode keeps no samples")
        return list(self._samples)


class ThroughputCounter:
    """Counts flits ejected per node inside a measurement window.

    The window is half-open, ``[start, end)``.  Setting a window resets the
    counts, so ``start`` must lie strictly after every cycle already
    recorded: a window opened *at* a cycle that has partially ejected would
    re-count that boundary cycle's remaining ejections while having
    discarded its earlier ones -- a partial cycle silently presented as a
    full one.  The harness always opens the window on the cycle after the
    last warm-up ejection, so this guard only fires on misuse.
    """

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.window: tuple[int, int] | None = None
        self.flits_ejected = 0
        self.packets_ejected = 0
        self._last_cycle_seen = -1

    def set_window(self, start: int, end: int) -> None:
        if end <= start:
            raise ValueError(f"empty measurement window [{start}, {end})")
        if start <= self._last_cycle_seen:
            raise ValueError(
                f"measurement window [{start}, {end}) opens at or before cycle "
                f"{self._last_cycle_seen}, which already recorded ejections; "
                "the boundary cycle would be double-counted"
            )
        self.window = (start, end)
        self.flits_ejected = 0
        self.packets_ejected = 0

    def record_flit(self, cycle: int) -> None:
        if cycle > self._last_cycle_seen:
            self._last_cycle_seen = cycle
        if self.window is not None and self.window[0] <= cycle < self.window[1]:
            self.flits_ejected += 1

    def record_packet(self, cycle: int) -> None:
        if cycle > self._last_cycle_seen:
            self._last_cycle_seen = cycle
        if self.window is not None and self.window[0] <= cycle < self.window[1]:
            self.packets_ejected += 1

    @property
    def flits_per_node_per_cycle(self) -> float:
        if self.window is None:
            raise ValueError("measurement window never set")
        cycles = self.window[1] - self.window[0]
        return self.flits_ejected / (cycles * self.num_nodes)


class OccupancyTracker:
    """Tracks fullness of a buffer pool over time.

    ``record(occupied)`` is called once per cycle with the number of occupied
    buffers; the tracker reports the fraction of cycles the pool was full and
    the mean occupancy.  Callers that know the cycle pass it so a tracker
    attached mid-run cannot record the attach-boundary cycle twice (once by
    the attaching code, once by the network's own end-of-cycle sample).
    """

    __slots__ = ("pool_size", "cycles", "full_cycles", "occupied_sum", "_last_cycle")

    def __init__(self, pool_size: int) -> None:
        if pool_size < 1:
            raise ValueError(f"pool size must be >= 1, got {pool_size}")
        self.pool_size = pool_size
        self.cycles = 0
        self.full_cycles = 0
        self.occupied_sum = 0
        self._last_cycle = -1

    def record(self, occupied: int, cycle: int | None = None) -> None:
        if not 0 <= occupied <= self.pool_size:
            raise ValueError(
                f"occupancy {occupied} outside pool of {self.pool_size} buffers"
            )
        if cycle is not None:
            if cycle == self._last_cycle:
                return  # boundary cycle already sampled (mid-run attach)
            if cycle < self._last_cycle:
                raise ValueError(
                    f"occupancy sample for cycle {cycle} after cycle "
                    f"{self._last_cycle} was already recorded"
                )
            self._last_cycle = cycle
        self.cycles += 1
        self.occupied_sum += occupied
        if occupied == self.pool_size:
            self.full_cycles += 1

    @property
    def fraction_full(self) -> float:
        if self.cycles == 0:
            raise ValueError("no occupancy samples recorded")
        return self.full_cycles / self.cycles

    @property
    def mean_occupancy(self) -> float:
        if self.cycles == 0:
            raise ValueError("no occupancy samples recorded")
        return self.occupied_sum / self.cycles


class ControlLeadTracker:
    """Measures how far control flits arrive ahead of their data flits.

    At the destination, the flit-reservation network reports the arrival
    cycle of each packet's control head flit and of its first data flit; the
    difference is the control lead the paper tracks in Section 4.4.
    """

    def __init__(self) -> None:
        self._control_arrival: dict[int, int] = {}
        self._data_arrival: dict[int, int] = {}
        self._done: set[int] = set()
        self._leads: list[int] = []

    def record_control_arrival(self, packet_id: int, cycle: int) -> None:
        if packet_id in self._done or packet_id in self._control_arrival:
            return
        data_cycle = self._data_arrival.pop(packet_id, None)
        if data_cycle is not None:
            # Data beat its control flit (possible under heavy control load);
            # the lead is negative.
            self._leads.append(data_cycle - cycle)
            self._done.add(packet_id)
            return
        self._control_arrival[packet_id] = cycle

    def record_first_data_arrival(self, packet_id: int, cycle: int) -> None:
        if packet_id in self._done or packet_id in self._data_arrival:
            return
        control_cycle = self._control_arrival.pop(packet_id, None)
        if control_cycle is not None:
            self._leads.append(cycle - control_cycle)
            self._done.add(packet_id)
            return
        self._data_arrival[packet_id] = cycle

    @property
    def count(self) -> int:
        return len(self._leads)

    @property
    def mean_lead(self) -> float:
        if not self._leads:
            raise ValueError("no control-lead samples recorded")
        return sum(self._leads) / len(self._leads)
