"""Channel utilization reporting.

The paper frames flow control as the problem of keeping channel bandwidth
and buffers busy with useful work; this module reports how busy each data
channel actually was.  It works for any network model whose routers expose
``data_out_links``/``out_data_links`` (the FR and VC routers respectively)
and is the basis of the bottleneck analysis in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.topology.mesh import EAST, NORTH, PORT_NAMES, SOUTH, WEST

if TYPE_CHECKING:
    from repro.sim.kernel import Simulator
    from repro.sim.link import Link
    from repro.sim.netbase import NetworkModel


@dataclass
class ChannelUtilization:
    """Busy fractions of every data channel over a measured interval."""

    cycles: int
    #: (node, port) -> flits carried / cycles observed
    channels: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def mean(self) -> float:
        if not self.channels:
            raise ValueError("no channels observed")
        return sum(self.channels.values()) / len(self.channels)

    @property
    def peak(self) -> float:
        if not self.channels:
            raise ValueError("no channels observed")
        return max(self.channels.values())

    def hottest(self, count: int = 5) -> list[tuple[tuple[int, int], float]]:
        """The ``count`` busiest channels, as ((node, port), utilization)."""
        ranked = sorted(self.channels.items(), key=lambda item: -item[1])
        return ranked[:count]

    def format(self, count: int = 5) -> str:
        lines = [
            f"data channel utilization over {self.cycles} cycles: "
            f"mean {self.mean:.3f}, peak {self.peak:.3f}",
            "hottest channels:",
        ]
        for (node, port), value in self.hottest(count):
            lines.append(f"  node {node:>3} {PORT_NAMES[port]:<6} {value:.3f}")
        return "\n".join(lines)


def measure_channel_utilization(
    network: NetworkModel, simulator: Simulator, cycles: int
) -> ChannelUtilization:
    """Run ``cycles`` more cycles on ``simulator`` and report busy fractions.

    The network should already be warmed to the state of interest; the
    caller owns warm-up and the choice of observation window.
    """
    links = _data_links(network)
    if not links:
        raise ValueError("network exposes no data links")
    before = {key: link.total_sent for key, link in links.items()}
    simulator.step(cycles)
    return ChannelUtilization(
        cycles=cycles,
        channels={
            key: (link.total_sent - before[key]) / cycles
            for key, link in links.items()
        },
    )


def snapshot_channel_utilization(
    network: NetworkModel, cycles_observed: int
) -> ChannelUtilization:
    """Report lifetime busy fractions of a network already driven elsewhere."""
    links = _data_links(network)
    if not links:
        raise ValueError("network exposes no data links")
    return ChannelUtilization(
        cycles=cycles_observed,
        channels={
            key: link.total_sent / cycles_observed for key, link in links.items()
        },
    )


def _data_links(network: NetworkModel) -> dict[tuple[int, int], Link[Any]]:
    links: dict[tuple[int, int], Link[Any]] = {}
    routers: list[Any] = getattr(network, "routers", [])
    for router in routers:
        out_links = getattr(router, "data_out_links", None) or getattr(
            router, "out_data_links", None
        )
        if out_links is None:
            continue
        for port in (NORTH, EAST, SOUTH, WEST):
            link = out_links[port]
            if link is not None:
                links[(router.node, port)] = link
    return links
