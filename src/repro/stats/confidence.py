"""Confidence intervals for simulation output.

Per-packet latencies from one simulation run are autocorrelated (congestion
persists across cycles), so a naive i.i.d. confidence interval understates
the error.  The standard remedy -- and the one used here -- is the *batch
means* method: split the ordered sample into ``k`` equal batches, treat the
batch means as (approximately) independent draws, and apply a Student-t
interval to those.

The paper reports that its 95% confidence intervals were within 1% of the
mean; the harness reproduces that check via these functions.
"""

from __future__ import annotations

import math
from typing import Sequence

# Two-sided Student-t critical values, indexed by degrees of freedom.
_T_TABLE_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 19: 2.093, 24: 2.064, 29: 2.045, 39: 2.023,
    59: 2.001, 99: 1.984,
}
_T_TABLE_99 = {
    1: 63.657, 2: 9.925, 3: 5.841, 4: 4.604, 5: 4.032, 6: 3.707, 7: 3.499,
    8: 3.355, 9: 3.250, 10: 3.169, 11: 3.106, 12: 3.055, 13: 3.012,
    14: 2.977, 15: 2.947, 19: 2.861, 24: 2.797, 29: 2.756, 39: 2.708,
    59: 2.662, 99: 2.626,
}
_Z_95 = 1.960
_Z_99 = 2.576


def _t_critical(degrees_of_freedom: int, level: float) -> float:
    """Two-sided t critical value, conservatively rounded up between rows."""
    if level == 0.95:
        table, z = _T_TABLE_95, _Z_95
    elif level == 0.99:
        table, z = _T_TABLE_99, _Z_99
    else:
        raise ValueError(f"only 0.95 and 0.99 levels are tabulated, got {level}")
    if degrees_of_freedom < 1:
        raise ValueError("need at least 2 batches for a confidence interval")
    candidates = [df for df in table if df >= degrees_of_freedom]
    if not candidates:
        return z
    # The smallest tabulated df at or above ours has a *larger* critical
    # value than the exact one, i.e. the interval is conservative.
    exact_or_below = [df for df in table if df <= degrees_of_freedom]
    return table[max(exact_or_below)] if exact_or_below else table[min(candidates)]


def mean_and_halfwidth(
    samples: Sequence[float], level: float = 0.95, batches: int = 20
) -> tuple[float, float]:
    """Mean and CI half-width of a (possibly autocorrelated) sample.

    Uses batch means with ``batches`` batches (reduced automatically when
    the sample is small).  With fewer than 4 samples the half-width is
    reported as infinite rather than pretending to precision.
    """
    n = len(samples)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(samples) / n
    if n < 4:
        return mean, math.inf
    k = min(batches, n // 2)
    batch_size = n // k
    batch_means: list[float] = []
    for b in range(k):
        chunk = samples[b * batch_size : (b + 1) * batch_size]
        batch_means.append(sum(chunk) / len(chunk))
    grand = sum(batch_means) / k
    variance = sum((m - grand) ** 2 for m in batch_means) / (k - 1)
    halfwidth = _t_critical(k - 1, level) * math.sqrt(variance / k)
    return mean, halfwidth


def confidence_interval(
    samples: Sequence[float], level: float = 0.95, batches: int = 20
) -> tuple[float, float]:
    """The (low, high) confidence interval of the mean."""
    mean, halfwidth = mean_and_halfwidth(samples, level=level, batches=batches)
    return mean - halfwidth, mean + halfwidth
