"""Measurement machinery: latency/throughput collectors, warm-up detection,
confidence intervals, and the occupancy/lead-time trackers behind the paper's
Section 4.2 and 4.4 observations."""

from repro.stats.collectors import (
    ControlLeadTracker,
    LatencyStats,
    OccupancyTracker,
    ThroughputCounter,
)
from repro.stats.confidence import confidence_interval, mean_and_halfwidth
from repro.stats.utilization import (
    ChannelUtilization,
    measure_channel_utilization,
    snapshot_channel_utilization,
)
from repro.stats.warmup import WarmupDetector

__all__ = [
    "ChannelUtilization",
    "ControlLeadTracker",
    "LatencyStats",
    "OccupancyTracker",
    "ThroughputCounter",
    "WarmupDetector",
    "confidence_interval",
    "mean_and_halfwidth",
    "measure_channel_utilization",
    "snapshot_channel_utilization",
]
