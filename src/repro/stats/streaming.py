"""Bounded-memory streaming estimators for long runs.

The default :class:`~repro.stats.collectors.LatencyStats` keeps every
sample, which is exact but unbounded; a paper-preset saturation sweep can
hold millions of latencies.  This module provides the O(1)-memory
alternatives behind ``LatencyStats(streaming=True)``:

* :class:`P2Quantile` -- the P² (piecewise-parabolic) single-quantile
  estimator of Jain & Chlamtac (CACM 1985): five markers per tracked
  quantile, adjusted toward their ideal positions on every observation.
  Empirically the estimate lands within a few percent of the exact
  percentile for the unimodal, heavy-right-tailed latency distributions
  the simulator produces (the tests pin a 5% relative / 1-cycle absolute
  bound at p50/p95 on those shapes); pathological distributions can do
  worse -- this is an estimator, not a summary statistic.
* :class:`RunningMoments` -- Welford's numerically stable running mean and
  variance.
"""

from __future__ import annotations

import math


class RunningMoments:
    """Welford's online mean/variance accumulator."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Sample (n-1) variance."""
        if self.count < 2:
            raise ValueError("need at least 2 samples for a variance")
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


class P2Quantile:
    """P² streaming estimate of one quantile in O(1) memory.

    Five markers track the minimum, the quantile, the maximum, and the two
    midpoints; each observation shifts marker positions and, when a marker
    drifts from its ideal position, moves its height by the piecewise-
    parabolic (fallback: linear) update.  Until five observations arrive
    the estimate is exact (computed from the buffered values).
    """

    def __init__(self, quantile: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        self.quantile = quantile
        self._initial: list[float] = []
        self._heights: list[float] = []
        self._positions: list[int] = []
        self._desired: list[float] = []
        p = quantile
        self._increments = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    @property
    def count(self) -> int:
        if self._heights:
            return self._positions[4]
        return len(self._initial)

    def observe(self, value: float) -> None:
        if not self._heights:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1, 2, 3, 4, 5]
                # The textbook ideal positions n_i' = 1 + (n-1) d_i at n=5.
                self._desired = [
                    1.0 + 4.0 * increment for increment in self._increments
                ]
            return
        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1
        for index in range(5):
            self._desired[index] += self._increments[index]
        for index in (1, 2, 3):
            drift = self._desired[index] - positions[index]
            step_up = positions[index + 1] - positions[index]
            step_down = positions[index - 1] - positions[index]
            if (drift >= 1.0 and step_up > 1) or (drift <= -1.0 and step_down < -1):
                direction = 1 if drift >= 1.0 else -1
                candidate = self._parabolic(index, direction)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, direction)
                positions[index] += direction

    def _parabolic(self, i: int, direction: int) -> float:
        heights, positions = self._heights, self._positions
        return heights[i] + direction / (positions[i + 1] - positions[i - 1]) * (
            (positions[i] - positions[i - 1] + direction)
            * (heights[i + 1] - heights[i])
            / (positions[i + 1] - positions[i])
            + (positions[i + 1] - positions[i] - direction)
            * (heights[i] - heights[i - 1])
            / (positions[i] - positions[i - 1])
        )

    def _linear(self, i: int, direction: int) -> float:
        heights, positions = self._heights, self._positions
        return heights[i] + direction * (
            heights[i + direction] - heights[i]
        ) / (positions[i + direction] - positions[i])

    @property
    def value(self) -> float:
        """The current quantile estimate (exact below 5 observations)."""
        if self._heights:
            return self._heights[2]
        if not self._initial:
            raise ValueError("no samples observed")
        ordered = sorted(self._initial)
        position = (len(ordered) - 1) * self.quantile
        low = math.floor(position)
        high = math.ceil(position)
        if low == high:
            return float(ordered[low])
        fraction = position - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction
