"""Warm-up detection.

The paper runs "a warm-up phase of a minimum of 10,000 cycles till average
queue lengths have stabilized" before sampling packets.  The detector here
implements that criterion: it watches a scalar signal (the network-wide mean
source-queue length), compares the means of two adjacent windows, and
declares the network warm when they agree within a relative tolerance --
never earlier than a configured minimum number of cycles.
"""

from __future__ import annotations

from collections import deque


class WarmupDetector:
    """Declares warm-up complete when a signal's windowed mean stabilises.

    ``record`` is fed one observation per cycle.  Warm-up is complete at the
    first cycle >= ``min_cycles`` where the mean of the last ``window``
    observations is within ``tolerance`` (relative) of the mean of the
    ``window`` observations before those.  An absolute floor avoids division
    trouble when queues are empty at low load (an empty network is, after
    all, maximally stable).
    """

    def __init__(
        self,
        min_cycles: int = 10_000,
        window: int = 1_000,
        tolerance: float = 0.05,
        absolute_floor: float = 0.05,
    ) -> None:
        if min_cycles < 2 * window:
            raise ValueError(
                f"min_cycles ({min_cycles}) must cover two windows of {window}"
            )
        self.min_cycles = min_cycles
        self.window = window
        self.tolerance = tolerance
        self.absolute_floor = absolute_floor
        self._recent: deque[float] = deque(maxlen=2 * window)
        self._observations = 0
        self.warm_at: int | None = None

    @property
    def is_warm(self) -> bool:
        return self.warm_at is not None

    def record(self, value: float, cycle: int) -> bool:
        """Feed one observation; returns True once warm-up is complete."""
        if self.warm_at is not None:
            return True
        self._recent.append(value)
        self._observations += 1
        if self._observations < self.min_cycles or len(self._recent) < 2 * self.window:
            return False
        recent = list(self._recent)
        older_mean = sum(recent[: self.window]) / self.window
        newer_mean = sum(recent[self.window :]) / self.window
        if self._stable(older_mean, newer_mean):
            self.warm_at = cycle
            return True
        return False

    def _stable(self, older_mean: float, newer_mean: float) -> bool:
        if max(older_mean, newer_mean) <= self.absolute_floor:
            return True
        reference = max(abs(older_mean), abs(newer_mean))
        return abs(newer_mean - older_mean) <= self.tolerance * reference
