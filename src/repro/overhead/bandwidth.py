"""Bandwidth overhead model (paper Table 2).

Overhead is expressed in extra bits per *data* flit.  Virtual-channel flow
control pads every flit with a VCID and amortises the destination field over
the packet; flit-reservation flow control moves the VCID (and type) onto the
control flits, amortises the control VCID over the data flits a control flit
leads, and pays ``log2 s`` bits of arrival-time stamp per data flit.

For the paper's configurations (d=1, v_c=v_d, s=32) the net extra cost of
flit-reservation flow control is the 5-bit arrival time, about 2% of a
256-bit data flit -- the "bandwidth bias" the throughput comparisons charge
against FR's gains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.vc.config import VCConfig
from repro.core.config import FRConfig
from repro.overhead.storage import ceil_log2


@dataclass(frozen=True)
class BandwidthOverhead:
    """Per-data-flit overhead of one configuration, in bits, by component."""

    name: str
    destination: float
    vcid: float
    arrival_times: float

    @property
    def bits_per_data_flit(self) -> float:
        return self.destination + self.vcid + self.arrival_times

    def fraction_of_flit(self, flit_bits: int = 256) -> float:
        """Overhead as a fraction of the data flit payload width."""
        return self.bits_per_data_flit / flit_bits


def vc_bandwidth(
    config: VCConfig, packet_length: int, destination_bits: int = 6
) -> BandwidthOverhead:
    """Table 2, virtual-channel column: ``n/L + log2 v_d``."""
    return BandwidthOverhead(
        name=config.name,
        destination=destination_bits / packet_length,
        vcid=float(ceil_log2(config.num_vcs)),
        arrival_times=0.0,
    )


def fr_bandwidth(
    config: FRConfig, packet_length: int, destination_bits: int = 6
) -> BandwidthOverhead:
    """Table 2, flit-reservation column:
    ``n/L + (log2 v_c / L) (1 + (L-1)/d) + log2 s``.

    The VCID term counts one VCID per control flit -- ``1 + ceil((L-1)/d)``
    control flits for an L-data-flit packet -- spread over the L data flits.
    """
    length = packet_length
    d = config.data_flits_per_control
    control_flits = 1 + (length - 1) / d
    vcid_bits = ceil_log2(config.control_vcs) * control_flits / length
    return BandwidthOverhead(
        name=config.name,
        destination=destination_bits / length,
        vcid=vcid_bits,
        arrival_times=float(ceil_log2(config.scheduling_horizon)),
    )


def fr_extra_bandwidth_fraction(
    fr_config: FRConfig,
    vc_config: VCConfig,
    packet_length: int,
    flit_bits: int = 256,
    destination_bits: int = 6,
) -> float:
    """FR's extra per-flit bandwidth relative to VC, as a payload fraction.

    This is the ~2% "bias" the paper subtracts from FR's raw throughput
    improvement when quoting net gains (Sections 4.1 and 4.2).
    """
    fr = fr_bandwidth(fr_config, packet_length, destination_bits)
    vc = vc_bandwidth(vc_config, packet_length, destination_bits)
    return (fr.bits_per_data_flit - vc.bits_per_data_flit) / flit_bits
