"""Storage overhead model (paper Table 1).

All formulas are the "General" columns of Table 1, evaluated per node (5
input channels: four mesh ports plus injection).  Bit widths of counters and
pointers use ceiling log2, which is what reproduces every tabulated VC value
and the FR6 column exactly.

Known discrepancy: the paper's FR13 "input reservation table" cell (1980
bits) does not follow from its own general formula
``[(1 + log2 s + 2 + 2 log2 b_d) x s + b_c] x 5``, which gives 2620 bits
(the FR6 cell, 2270, *does* follow).  We report the formula value; the
benchmark prints both so the difference is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.vc.config import VCConfig
from repro.core.config import FRConfig

PORTS_PER_NODE = 5
MESH_OUTPUTS = 4


def ceil_log2(value: int) -> int:
    """Bits needed to index ``value`` distinct items (>= 1)."""
    if value < 1:
        raise ValueError(f"cannot take log2 of {value}")
    return max(1, (value - 1).bit_length())


@dataclass(frozen=True)
class StorageBreakdown:
    """Per-node storage of one configuration, in bits, by component."""

    name: str
    data_buffers: int
    control_buffers: int
    queue_pointers: int
    output_reservation_table: int
    input_reservation_table: int
    data_flit_bits: int

    @property
    def bits_per_node(self) -> int:
        return (
            self.data_buffers
            + self.control_buffers
            + self.queue_pointers
            + self.output_reservation_table
            + self.input_reservation_table
        )

    @property
    def flits_per_input_channel(self) -> float:
        """Total node storage expressed in data-flit equivalents per input,
        the paper's bottom row (payload bits per flit x 5 inputs)."""
        return self.bits_per_node / (self.data_flit_bits * PORTS_PER_NODE)


class VCStorageModel:
    """Table 1, virtual-channel columns."""

    def __init__(self, flit_bits: int = 256, type_bits: int = 2) -> None:
        self.flit_bits = flit_bits
        self.type_bits = type_bits

    def breakdown(self, config: VCConfig) -> StorageBreakdown:
        v = config.num_vcs
        b = config.buffers_per_input
        # Each buffered data flit is padded with its VCID and a type field.
        data_buffers = (self.flit_bits + ceil_log2(v) + self.type_bits) * b * PORTS_PER_NODE
        queue_pointers = 2 * ceil_log2(b) * v * PORTS_PER_NODE
        # Channel status bit plus next-hop buffer count, per output VC.
        output_table = (1 + ceil_log2(b)) * MESH_OUTPUTS * v
        return StorageBreakdown(
            name=config.name,
            data_buffers=data_buffers,
            control_buffers=0,
            queue_pointers=queue_pointers,
            output_reservation_table=output_table,
            input_reservation_table=0,
            data_flit_bits=self.flit_bits,
        )


class FRStorageModel:
    """Table 1, flit-reservation columns."""

    def __init__(self, flit_bits: int = 256, type_bits: int = 2) -> None:
        self.flit_bits = flit_bits
        self.type_bits = type_bits

    def breakdown(self, config: FRConfig) -> StorageBreakdown:
        b_d = config.data_buffers_per_input
        b_c = config.control_buffers_per_input
        v_c = config.control_vcs
        d = config.data_flits_per_control
        s = config.scheduling_horizon
        # Data buffers hold pure payload; all tags ride on control flits.
        data_buffers = self.flit_bits * b_d * PORTS_PER_NODE
        control_flit_bits = ceil_log2(v_c) + self.type_bits + d * ceil_log2(s)
        control_buffers = control_flit_bits * b_c * PORTS_PER_NODE
        queue_pointers = 2 * ceil_log2(b_c) * v_c * PORTS_PER_NODE
        # Busy bit plus next-hop free-buffer count, for every horizon slot.
        output_table = (1 + ceil_log2(b_d)) * s * MESH_OUTPUTS
        # Per slot: flit-arriving bit, departure time, output channel (2 bits
        # for the 4 mesh outputs), buffer-in and buffer-out indices; plus one
        # occupancy bit per buffer.  The paper indexes buffers with log2 b_d
        # and sizes the occupancy vector by b_c in its formula; we follow the
        # formula as printed.
        slot_bits = 1 + ceil_log2(s) + 2 + 2 * ceil_log2(b_d)
        input_table = (slot_bits * s + b_c) * PORTS_PER_NODE
        return StorageBreakdown(
            name=config.name,
            data_buffers=data_buffers,
            control_buffers=control_buffers,
            queue_pointers=queue_pointers,
            output_reservation_table=output_table,
            input_reservation_table=input_table,
            data_flit_bits=self.flit_bits,
        )


#: Values printed in the paper's Table 1, for regression against our model.
PAPER_TABLE1 = {
    "VC8": {"bits_per_node": 10452, "flits_per_input": 8.17},
    "VC16": {"bits_per_node": 21040, "flits_per_input": 16.44},
    "VC32": {"bits_per_node": 42352, "flits_per_input": 33.09},
    "FR6": {"bits_per_node": 10762, "flits_per_input": 8.40},
    # The FR13 totals inherit the paper's input-reservation-table arithmetic
    # slip (see module docstring); the formula gives 20600 bits / 16.09 flits.
    "FR13": {"bits_per_node": 19960, "flits_per_input": 15.59},
}
