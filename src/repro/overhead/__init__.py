"""Analytical storage and bandwidth overhead models (paper Tables 1 and 2).

These models justify the experimental pairing FR6<->VC8 and FR13<->VC16:
the configurations are chosen so both flow control methods spend
approximately the same storage per node, and the extra control bandwidth of
flit-reservation flow control (about 2% for 256-bit data flits) is charged
against its throughput gains.
"""

from repro.overhead.bandwidth import BandwidthOverhead, fr_bandwidth, vc_bandwidth
from repro.overhead.storage import (
    FRStorageModel,
    StorageBreakdown,
    VCStorageModel,
    ceil_log2,
)

__all__ = [
    "BandwidthOverhead",
    "FRStorageModel",
    "StorageBreakdown",
    "VCStorageModel",
    "ceil_log2",
    "fr_bandwidth",
    "vc_bandwidth",
]
