"""Experiment harness: everything needed to regenerate the paper's evaluation.

* :mod:`~repro.harness.experiment` -- run one configuration at one load and
  measure latency/throughput with warm-up, sampling, and drain;
* :mod:`~repro.harness.sweep` -- latency-vs-offered-load curves;
* :mod:`~repro.harness.saturation` -- saturation throughput measurement;
* :mod:`~repro.harness.presets` -- measurement fidelity presets (quick /
  standard / paper);
* :mod:`~repro.harness.tables` and :mod:`~repro.harness.figures` -- one
  function per table and figure of the paper;
* :mod:`~repro.harness.runner` -- the ``frfc`` command-line front end.
"""

from repro.harness.experiment import ExperimentResult, build_network, run_experiment
from repro.harness.presets import MeasurementPreset, PRESETS
from repro.harness.saturation import find_saturation
from repro.harness.sweep import LoadSweepResult, run_load_sweep

__all__ = [
    "ExperimentResult",
    "LoadSweepResult",
    "MeasurementPreset",
    "PRESETS",
    "build_network",
    "find_saturation",
    "run_experiment",
    "run_load_sweep",
]
