"""Measurement fidelity presets.

The paper warms up for at least 10,000 cycles (until queue lengths
stabilise) and then samples 100,000 injected packets per data point.  A full
point at that fidelity costs minutes of wall clock in pure Python, so the
committed benchmarks run at reduced fidelity; the presets make the trade
explicit and let any experiment be re-run at paper fidelity with one
argument.  EXPERIMENTS.md records which preset produced each recorded
number.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MeasurementPreset:
    """How long to warm up, how much to sample, and when to give up.

    ``sample_cycles`` bounds the window during which injected packets are
    tagged for latency measurement; ``drain_cycles`` bounds how long we wait
    for the tagged sample to drain after injection stops.  ``min_warmup``
    and ``warmup_window`` parameterise the queue-stabilisation detector.
    """

    name: str
    min_warmup: int
    warmup_window: int
    max_warmup: int
    sample_cycles: int
    drain_cycles: int
    throughput_cycles: int

    def __post_init__(self) -> None:
        if self.min_warmup < 2 * self.warmup_window:
            raise ValueError("min_warmup must cover two warm-up windows")
        if self.sample_cycles < 1 or self.throughput_cycles < 1:
            raise ValueError("measurement windows must be positive")


PRESETS = {
    # For unit tests and smoke checks: seconds per point.
    "quick": MeasurementPreset(
        name="quick",
        min_warmup=600,
        warmup_window=200,
        max_warmup=2_000,
        sample_cycles=1_200,
        drain_cycles=8_000,
        throughput_cycles=1_500,
    ),
    # For the committed benchmark results: tens of seconds per point.
    "standard": MeasurementPreset(
        name="standard",
        min_warmup=1_500,
        warmup_window=500,
        max_warmup=6_000,
        sample_cycles=3_000,
        drain_cycles=20_000,
        throughput_cycles=3_500,
    ),
    # The paper's methodology: >=10k warm-up cycles, ~100k-packet sample.
    "paper": MeasurementPreset(
        name="paper",
        min_warmup=10_000,
        warmup_window=1_000,
        max_warmup=40_000,
        sample_cycles=65_000,  # ~100k packets at mid load on 64 nodes
        drain_cycles=400_000,
        throughput_cycles=30_000,
    ),
}


def get_preset(preset: "str | MeasurementPreset") -> MeasurementPreset:
    """Resolve a preset by name, passing instances through."""
    if isinstance(preset, MeasurementPreset):
        return preset
    try:
        return PRESETS[preset]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ValueError(f"unknown preset {preset!r}; known presets: {known}")
