"""Run one configuration at one offered load and measure it.

The measurement methodology follows the paper (Section 4): warm up until the
network-wide mean source queue length stabilises (with a minimum warm-up),
then tag every packet created during a sample window, keep injecting, and
run until the entire tagged sample has been delivered.  Latency spans packet
creation to last-flit ejection, including source queueing.  Accepted
throughput is counted over the same window.  A run whose tagged sample fails
to drain within the preset's deadline is reported as saturated rather than
raising, since offered loads beyond saturation are legitimate experimental
points (that is where the latency curves go vertical).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Union

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.network import VCNetwork
from repro.baselines.wormhole.network import WormholeConfig, WormholeNetwork
from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.harness.presets import MeasurementPreset, get_preset
from repro.sim.invariants import InvariantChecker
from repro.sim.kernel import Simulator
from repro.sim.netbase import NetworkModel
from repro.stats.warmup import WarmupDetector
from repro.topology.mesh import Mesh2D
from repro.traffic.patterns import TrafficPattern

if TYPE_CHECKING:
    from repro.obs.ledger import RunLedger
    from repro.obs.session import ObsSession

AnyConfig = Union[VCConfig, FRConfig, WormholeConfig]


@dataclass
class ExperimentResult:
    """Everything measured in one run at one offered load."""

    config_name: str
    offered_load: float  # fraction of network capacity
    injection_rate: float  # packets/node/cycle actually asked of the sources
    packet_length: int
    seed: int
    accepted_load: float  # fraction of capacity actually delivered
    mean_latency: float
    latency_ci_halfwidth: float
    p95_latency: float
    packets_measured: int
    cycles_simulated: int
    warmup_cycles: int
    saturated: bool
    extras: dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        flag = " SATURATED" if self.saturated else ""
        return (
            f"{self.config_name} load={self.offered_load:.2f} "
            f"accepted={self.accepted_load:.3f} latency={self.mean_latency:.1f}"
            f"+-{self.latency_ci_halfwidth:.1f} (n={self.packets_measured}){flag}"
        )


def build_network(
    config: AnyConfig,
    offered_load: float,
    packet_length: int = 5,
    seed: int = 1,
    mesh: Mesh2D | None = None,
    traffic: str | TrafficPattern = "uniform",
    injection_process: str = "periodic",
    streaming: bool = False,
    **network_kwargs: Any,
) -> NetworkModel:
    """Construct the right network model for a flow-control configuration.

    ``offered_load`` is a fraction of the mesh's uniform-traffic capacity;
    it is converted to a per-node packet injection rate here.  With
    ``streaming`` the network's latency collectors use bounded-memory
    streaming percentile sketches instead of storing every sample.
    """
    if offered_load <= 0:
        raise ValueError(f"offered load must be positive, got {offered_load}")
    mesh = mesh or Mesh2D(8, 8)
    rate = offered_load * mesh.capacity_flits_per_node() / packet_length
    if rate > 1.0:
        raise ValueError(
            f"offered load {offered_load} needs {rate:.2f} packets/node/cycle; "
            "sources cannot create more than one packet per cycle"
        )
    common = dict(
        mesh=mesh,
        packet_length=packet_length,
        injection_rate=rate,
        seed=seed,
        traffic=traffic,
        injection_process=injection_process,
        streaming=streaming,
        **network_kwargs,
    )
    if isinstance(config, FRConfig):
        return FRNetwork(config, **common)
    if isinstance(config, WormholeConfig):
        return WormholeNetwork(config, **common)
    if isinstance(config, VCConfig):
        return VCNetwork(config, **common)
    raise TypeError(f"unknown configuration type {type(config).__name__}")


def run_experiment(
    config: AnyConfig,
    offered_load: float,
    packet_length: int = 5,
    seed: int = 1,
    preset: str | MeasurementPreset = "standard",
    mesh: Mesh2D | None = None,
    traffic: str | TrafficPattern = "uniform",
    injection_process: str = "periodic",
    streaming: bool = False,
    check_invariants: bool = False,
    obs: Optional["ObsSession"] = None,
    ledger: Optional["RunLedger"] = None,
    **network_kwargs: Any,
) -> ExperimentResult:
    """Warm up, sample, drain, and report one (config, load) point.

    With ``check_invariants`` the run is *sanitized*: an
    :class:`~repro.sim.invariants.InvariantChecker` verifies the network's
    conservation laws after every cycle and aborts on the first violation.
    With ``obs`` the run is *observed*: the session's probe and metrics
    sampler attach before warm-up and its profiler splits wall time into
    warmup/sample/drain; the caller finalizes artifacts afterwards.
    With ``ledger`` the run is *memoised*: the point's pre-execution
    identity (config + load + seed + preset + git SHA + code digest) is
    looked up in the content-addressed run ledger, a verified hit replays
    the recorded result byte-identically without simulating, and a miss
    simulates then records -- so interrupted sweeps resume for free.
    """
    preset = get_preset(preset)
    mesh = mesh or Mesh2D(8, 8)
    identity = None
    if ledger is not None:
        identity = ledger.experiment_identity(
            config=config,
            offered_load=offered_load,
            packet_length=packet_length,
            seed=seed,
            preset=preset,
            mesh=mesh,
            traffic=traffic,
            injection_process=injection_process,
            streaming=streaming,
            check_invariants=check_invariants,
            network_kwargs=network_kwargs,
        )
        record = ledger.lookup(identity)
        if record is not None:
            return ledger.replay_experiment(record)
    network = build_network(
        config,
        offered_load,
        packet_length=packet_length,
        seed=seed,
        mesh=mesh,
        traffic=traffic,
        injection_process=injection_process,
        streaming=streaming,
        **network_kwargs,
    )
    checker = InvariantChecker() if check_invariants else None
    if obs is not None:
        obs.attach(network)
        simulator = Simulator(
            network, checker=checker, observers=obs.observers, profiler=obs.profiler
        )
        obs.enter_phase("warmup")
    else:
        simulator = Simulator(network, checker=checker)
    try:
        warmup_end = _warm_up(network, simulator, preset)
        sample_end = warmup_end + preset.sample_cycles
        network.set_measure_window(warmup_end, sample_end)
        if obs is not None:
            obs.note_window(warmup_end, sample_end)
            obs.enter_phase("sample")
        simulator.step(preset.sample_cycles)
        if obs is not None:
            obs.enter_phase("drain")
        saturated = not _drain(
            network, simulator, deadline=sample_end + preset.drain_cycles
        )
    finally:
        if obs is not None:
            obs.detach()
    result = _collect(
        network,
        simulator,
        offered_load=offered_load,
        seed=seed,
        warmup_cycles=warmup_end,
        saturated=saturated,
    )
    if ledger is not None and identity is not None:
        artifacts = obs.declared_artifacts() if obs is not None else None
        ledger.record_experiment(identity, result, obs=obs, artifacts=artifacts)
    return result


def _warm_up(network: NetworkModel, simulator: Simulator, preset: MeasurementPreset) -> int:
    detector = WarmupDetector(
        min_cycles=preset.min_warmup, window=preset.warmup_window
    )
    while simulator.cycle < preset.max_warmup:
        simulator.step()
        if detector.record(network.mean_source_queue_length(), simulator.cycle):
            break
    return simulator.cycle


def _drain(network: NetworkModel, simulator: Simulator, deadline: int) -> bool:
    """Keep injecting until the tagged sample is delivered; False on timeout."""
    while network.measured_outstanding > 0:
        if simulator.cycle >= deadline:
            return False
        simulator.step()
    return True


def _collect(
    network: NetworkModel,
    simulator: Simulator,
    offered_load: float,
    seed: int,
    warmup_cycles: int,
    saturated: bool,
) -> ExperimentResult:
    capacity = network.mesh.capacity_flits_per_node()
    stats = network.latency_stats
    have_latency = stats.count > 0
    extras: dict[str, float] = {}
    if isinstance(network, FRNetwork):
        extras["bypass_fraction"] = network.bypass_fraction()
        if network.data_flit_latency.count:
            extras["mean_data_flit_latency"] = network.data_flit_latency.mean
        if network.control_lead is not None and network.control_lead.count:
            extras["mean_control_lead"] = network.control_lead.mean_lead
    occupancy = getattr(network, "occupancy", None)
    if occupancy is not None and occupancy.cycles:
        extras["pool_fraction_full"] = occupancy.fraction_full
        extras["pool_mean_occupancy"] = occupancy.mean_occupancy
    return ExperimentResult(
        config_name=network.flow_control_name,
        offered_load=offered_load,
        injection_rate=network.injection_rate,
        packet_length=network.packet_length,
        seed=seed,
        accepted_load=network.throughput.flits_per_node_per_cycle / capacity,
        mean_latency=stats.mean if have_latency else math.inf,
        latency_ci_halfwidth=stats.confidence_halfwidth() if have_latency else math.inf,
        p95_latency=stats.percentile(95) if have_latency else math.inf,
        packets_measured=stats.count,
        cycles_simulated=simulator.cycle,
        warmup_cycles=warmup_cycles,
        saturated=saturated,
        extras=extras,
    )
