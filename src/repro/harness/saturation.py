"""Saturation throughput measurement.

The paper quotes each configuration's saturation as a percentage of
bisection bandwidth.  We measure it as the *accepted-throughput knee*: the
largest offered load the network still delivers in full.  Throughput-mode
runs (fixed measurement window, no sample drain) keep each probe cheap, and
a bisection between the last stable and first unstable load pins the knee
to a configurable resolution.  The plateau -- the maximum accepted load seen
at any probe, including oversaturated ones -- is reported alongside as a
robustness cross-check; for well-behaved networks knee and plateau agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.harness.experiment import AnyConfig, build_network
from repro.harness.presets import MeasurementPreset, get_preset
from repro.sim.invariants import InvariantChecker
from repro.sim.kernel import Simulator
from repro.stats.warmup import WarmupDetector
from repro.topology.mesh import Mesh2D

if TYPE_CHECKING:
    from repro.obs.ledger import RunLedger
    from repro.obs.progress import ProgressReporter
    from repro.obs.report import AttributionSummary
    from repro.obs.session import ObsSession


@dataclass
class SaturationResult:
    """Outcome of a saturation search for one configuration."""

    config_name: str
    packet_length: int
    knee: float  # largest offered load still delivered in full
    plateau: float  # maximum accepted load observed at any probe
    probes: list[tuple[float, float]] = field(default_factory=list)  # (offered, accepted)
    #: One attribution rollup per probe (populated when ``attribute`` was
    #: requested), sorted by offered load like ``probes``.
    attribution: list["AttributionSummary"] = field(default_factory=list)

    @property
    def saturation(self) -> float:
        """The headline number: saturation throughput as a capacity fraction."""
        return max(self.knee, self.plateau)


def measure_throughput(
    config: AnyConfig,
    offered_load: float,
    packet_length: int = 5,
    seed: int = 1,
    preset: str | MeasurementPreset = "standard",
    mesh: Mesh2D | None = None,
    check_invariants: bool = False,
    obs: Optional["ObsSession"] = None,
    ledger: Optional["RunLedger"] = None,
    **kwargs: Any,
) -> float:
    """Accepted load (fraction of capacity) at one offered load.

    Runs warm-up plus a fixed measurement window and counts ejected flits;
    no packet-sample drain, so oversaturated loads cost the same as light
    ones.  With ``obs`` the probe attaches for the run (the caller
    finalizes artifacts afterwards), same contract as ``run_experiment``.
    With ``ledger`` the probe is memoised in the content-addressed run
    ledger (``kind: throughput``), same contract as ``run_experiment``.
    """
    preset = get_preset(preset)
    mesh = mesh or Mesh2D(8, 8)
    identity = None
    if ledger is not None:
        identity = ledger.throughput_identity(
            config=config,
            offered_load=offered_load,
            packet_length=packet_length,
            seed=seed,
            preset=preset,
            mesh=mesh,
            check_invariants=check_invariants,
            network_kwargs=kwargs,
        )
        record = ledger.lookup(identity)
        if record is not None:
            return ledger.replay_throughput(record)
    network = build_network(
        config, offered_load, packet_length=packet_length, seed=seed, mesh=mesh, **kwargs
    )
    checker = InvariantChecker() if check_invariants else None
    if obs is not None:
        obs.attach(network)
        simulator = Simulator(
            network, checker=checker, observers=obs.observers, profiler=obs.profiler
        )
        obs.enter_phase("warmup")
    else:
        simulator = Simulator(network, checker=checker)
    try:
        detector = WarmupDetector(
            min_cycles=preset.min_warmup, window=preset.warmup_window
        )
        while simulator.cycle < preset.max_warmup:
            simulator.step()
            if detector.record(network.mean_source_queue_length(), simulator.cycle):
                break
        start = simulator.cycle
        network.set_measure_window(start, start + preset.throughput_cycles)
        if obs is not None:
            obs.note_window(start, start + preset.throughput_cycles)
            obs.enter_phase("sample")
        simulator.step(preset.throughput_cycles)
    finally:
        if obs is not None:
            obs.detach()
    accepted = (
        network.throughput.flits_per_node_per_cycle / mesh.capacity_flits_per_node()
    )
    if ledger is not None and identity is not None:
        ledger.record_throughput(identity, accepted, obs=obs)
    return accepted


def find_saturation(
    config: AnyConfig,
    packet_length: int = 5,
    seed: int = 1,
    preset: str | MeasurementPreset = "standard",
    low: float = 0.30,
    high: float = 1.0,
    resolution: float = 0.02,
    delivery_tolerance: float = 0.03,
    attribute: bool = False,
    ledger: Optional["RunLedger"] = None,
    progress: Optional["ProgressReporter"] = None,
    **kwargs: Any,
) -> SaturationResult:
    """Bisect for the saturation knee of one configuration.

    ``low`` must be a load the network is expected to sustain (the default
    30% holds for every configuration in the paper); ``high`` an offered
    load at or beyond saturation.  A probe is *stable* when accepted is
    within ``delivery_tolerance`` of offered.

    With ``attribute`` every probe runs with a latency attributor attached
    and the result carries one attribution summary per probe -- the
    component mix on the way into saturation.

    With ``ledger`` each probe consults the content-addressed run ledger
    (``kind: throughput``) before simulating, so re-running a search -- or
    bisecting near a previously probed region -- replays verified recorded
    probes; ``progress`` brackets each probe in the heartbeat stream.
    """
    probes: list[tuple[float, float]] = []
    summaries: list[tuple[float, "AttributionSummary"]] = []

    def stable(load: float) -> bool:
        session = None
        if attribute:
            from repro.harness.sweep import _attribution_session

            session = _attribution_session()
        if progress is not None:
            progress.begin_point(
                index=len(probes) + 1, total=0, label=f"probe load={load:.3f}"
            )
        accepted = measure_throughput(
            config,
            load,
            packet_length=packet_length,
            seed=seed,
            preset=preset,
            obs=session,
            ledger=ledger,
            **kwargs,
        )
        if progress is not None:
            progress.end_point(
                cache_hit=ledger is not None and ledger.last_hit,
                summary=f"accepted={accepted:.3f}",
            )
        probes.append((load, accepted))
        if session is not None:
            if ledger is not None and ledger.last_hit:
                summary = ledger.last_attribution()
            else:
                summary = session.attribution_summary(
                    label=f"{_config_name(config)} load={load:.2f}"
                )
            if summary is not None:
                summaries.append((load, summary))
        return accepted >= load * (1.0 - delivery_tolerance)

    if not stable(low):
        raise ValueError(
            f"saturation search needs a stable lower bound; {low:.2f} already "
            "saturates -- pass a smaller `low`"
        )
    if stable(high):
        low = high
    else:
        while high - low > resolution:
            mid = (low + high) / 2
            if stable(mid):
                low = mid
            else:
                high = mid
    name = _config_name(config)
    plateau = max(accepted for _, accepted in probes)
    return SaturationResult(
        config_name=name,
        packet_length=packet_length,
        knee=low,
        plateau=plateau,
        probes=sorted(probes),
        attribution=[summary for _, summary in sorted(summaries, key=lambda s: s[0])],
    )


def _config_name(config: AnyConfig) -> str:
    return config.name
