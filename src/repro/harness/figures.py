"""Regenerate the paper's figures (as data series; the curves are printed as
text tables, matching the repository's no-plotting-dependency constraint).

Each function returns a :class:`FigureResult` whose ``curves`` hold the same
series the corresponding figure plots.  Default load grids are chosen so the
flat region, the knee and the blow-up of each curve are all visible while
keeping run time sane; callers can override them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.vc.config import VC8, VC16, VC32
from repro.core.config import FR6, FR13
from repro.harness.experiment import run_experiment
from repro.harness.presets import MeasurementPreset
from repro.harness.sweep import LoadSweepResult, run_load_sweep

#: Offered loads (fraction of capacity) spanning each figure's x-axis.
DEFAULT_LOADS_5FLIT = [0.10, 0.30, 0.45, 0.55, 0.63, 0.70, 0.77, 0.83, 0.88]
DEFAULT_LOADS_21FLIT = [0.10, 0.30, 0.45, 0.55, 0.60, 0.65, 0.70, 0.76]


@dataclass
class FigureResult:
    """The data series behind one of the paper's figures."""

    figure_id: str
    title: str
    curves: list[LoadSweepResult] = field(default_factory=list)
    notes: dict[str, float | None] = field(default_factory=dict)

    def curve(self, name: str) -> LoadSweepResult:
        for curve in self.curves:
            if curve.config_name == name:
                return curve
        raise KeyError(f"no curve named {name!r} in {self.figure_id}")

    def format(self) -> str:
        lines = [f"{self.figure_id}: {self.title}", ""]
        for curve in self.curves:
            lines.append(curve.format_table())
            lines.append("")
        for key, value in self.notes.items():
            lines.append(f"note: {key} = {value}")
        return "\n".join(lines)


def figure5(
    preset: str | MeasurementPreset = "standard",
    seed: int = 1,
    loads: list[float] | None = None,
    check_invariants: bool = False,
) -> FigureResult:
    """Latency vs offered traffic, 5-flit packets, fast control (Figure 5)."""
    loads = loads or DEFAULT_LOADS_5FLIT
    result = FigureResult(
        "Figure 5",
        "latency vs offered traffic, 5-flit packets (fast control)",
    )
    for config in (VC8, VC16, FR6, FR13):
        result.curves.append(
            run_load_sweep(
                config,
                loads,
                packet_length=5,
                seed=seed,
                preset=preset,
                check_invariants=check_invariants,
            )
        )
    return result


def figure6(
    preset: str | MeasurementPreset = "standard",
    seed: int = 1,
    loads: list[float] | None = None,
    check_invariants: bool = False,
) -> FigureResult:
    """Latency vs offered traffic, 21-flit packets, fast control (Figure 6)."""
    loads = loads or DEFAULT_LOADS_21FLIT
    result = FigureResult(
        "Figure 6",
        "latency vs offered traffic, 21-flit packets (fast control)",
    )
    for config in (VC8, VC32, FR6, FR13):
        result.curves.append(
            run_load_sweep(
                config,
                loads,
                packet_length=21,
                seed=seed,
                preset=preset,
                check_invariants=check_invariants,
            )
        )
    return result


def figure7(
    preset: str | MeasurementPreset = "standard",
    seed: int = 1,
    loads: list[float] | None = None,
    horizons: tuple[int, ...] = (16, 32, 64, 128),
    check_invariants: bool = False,
) -> FigureResult:
    """FR6 sensitivity to the scheduling horizon (Figure 7)."""
    loads = loads or DEFAULT_LOADS_5FLIT
    result = FigureResult(
        "Figure 7",
        "flit-reservation latency vs offered traffic, horizon 16..128 (FR6)",
    )
    for horizon in horizons:
        sweep = run_load_sweep(
            FR6.with_horizon(horizon),
            loads,
            packet_length=5,
            seed=seed,
            preset=preset,
            check_invariants=check_invariants,
        )
        sweep.config_name = f"FR6/s={horizon}"
        result.curves.append(sweep)
    return result


def figure8(
    preset: str | MeasurementPreset = "standard",
    seed: int = 1,
    loads: list[float] | None = None,
    leads: tuple[int, ...] = (1, 2, 4),
    check_invariants: bool = False,
) -> FigureResult:
    """FR6 with leading control, lead = 1/2/4 cycles, 1-cycle wires (Figure 8)."""
    loads = loads or DEFAULT_LOADS_5FLIT
    result = FigureResult(
        "Figure 8",
        "flit-reservation with control leading data by 1, 2 and 4 cycles",
    )
    for lead in leads:
        sweep = run_load_sweep(
            FR6.with_leading_control(lead),
            loads,
            packet_length=5,
            seed=seed,
            preset=preset,
            check_invariants=check_invariants,
        )
        sweep.config_name = f"FR6/lead={lead}"
        result.curves.append(sweep)
    return result


def figure9(
    preset: str | MeasurementPreset = "standard",
    seed: int = 1,
    loads: list[float] | None = None,
    check_invariants: bool = False,
) -> FigureResult:
    """FR6 (1-cycle lead) vs VC8/VC16 on 1-cycle wires, 5-flit pkts (Figure 9)."""
    loads = loads or DEFAULT_LOADS_5FLIT
    result = FigureResult(
        "Figure 9",
        "leading control vs virtual-channel flow control, 1-cycle wires",
    )
    fr_sweep = run_load_sweep(
        FR6.with_leading_control(1),
        loads,
        packet_length=5,
        seed=seed,
        preset=preset,
        check_invariants=check_invariants,
    )
    fr_sweep.config_name = "FR6/lead=1"
    result.curves.append(fr_sweep)
    for config in (VC8.with_unit_links(), VC16.with_unit_links()):
        result.curves.append(
            run_load_sweep(
                config,
                loads,
                packet_length=5,
                seed=seed,
                preset=preset,
                check_invariants=check_invariants,
            )
        )
    return result


def section42_occupancy(
    preset: str | MeasurementPreset = "standard",
    seed: int = 1,
    fr_load: float = 0.60,
    vc_load: float = 0.56,
    check_invariants: bool = False,
) -> FigureResult:
    """Section 4.2's buffer-pool occupancy study with 21-flit packets.

    Near saturation, FR6's tracked buffer pool is full ~40% of the time
    while VC8 saturates with its pool full under 5% of the time -- FR keeps
    buffers *working* rather than idling in turnaround.
    """
    center = 8 * 3 + 4  # a router in the middle of the 8x8 mesh
    fr_point = run_experiment(
        FR6,
        fr_load,
        packet_length=21,
        seed=seed,
        preset=preset,
        check_invariants=check_invariants,
        track_occupancy_node=center,
    )
    vc_point = run_experiment(
        VC8,
        vc_load,
        packet_length=21,
        seed=seed,
        preset=preset,
        check_invariants=check_invariants,
        track_occupancy_node=center,
    )
    result = FigureResult(
        "Section 4.2",
        "buffer pool occupancy near saturation (21-flit packets)",
    )
    result.notes["FR6 fraction of cycles pool full"] = fr_point.extras.get(
        "pool_fraction_full"
    )
    result.notes["VC8 fraction of cycles pool full"] = vc_point.extras.get(
        "pool_fraction_full"
    )
    result.notes["FR6 mean occupancy"] = fr_point.extras.get("pool_mean_occupancy")
    result.notes["VC8 mean occupancy"] = vc_point.extras.get("pool_mean_occupancy")
    return result


def section44_control_lead(
    preset: str | MeasurementPreset = "standard",
    seed: int = 1,
    load: float = 0.77,
    leads: tuple[int, ...] = (1, 4),
    check_invariants: bool = False,
) -> FigureResult:
    """Section 4.4's control-lead study: how far ahead control flits arrive.

    The paper reports ~14 cycles of lead at 77% load with a 1-cycle
    injection lead, barely different from the 4-cycle-lead case -- the lead
    is created by data-network congestion, not by the injection offset.
    """
    result = FigureResult(
        "Section 4.4",
        "control flit lead over data flits at the destination (1-cycle wires)",
    )
    for lead in leads:
        point = run_experiment(
            FR6.with_leading_control(lead),
            load,
            packet_length=5,
            seed=seed,
            preset=preset,
            check_invariants=check_invariants,
            track_control_lead=True,
        )
        result.notes[f"lead={lead} mean control lead (cycles)"] = point.extras.get(
            "mean_control_lead"
        )
        result.notes[f"lead={lead} mean latency"] = point.mean_latency
    return result
