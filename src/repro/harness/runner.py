"""Command-line front end: ``frfc`` (flit-reservation flow control).

Examples::

    frfc table1                     # storage overhead (instant, analytical)
    frfc table2                     # bandwidth overhead (instant)
    frfc table3 --preset quick      # the experimental summary
    frfc figure 5 --preset standard # latency-throughput curves
    frfc point FR6 0.5              # one experiment point
    frfc saturate VC8               # saturation throughput search
    frfc occupancy                  # Section 4.2 study
    frfc lead                       # Section 4.4 study
    frfc sweep FR6 --loads 0.1,0.5  # latency-throughput curve
    frfc trace FR6 --packet 3       # one packet's event timeline
    frfc trace VC8 --packet 3       # works for every flow control scheme
    frfc utilization FR6 0.6        # per-channel busy fractions
    frfc obs FR6 0.5 --preset quick --trace-out t.json --metrics-out m.csv \
        --profile                   # fully observed run with exports
    frfc attribute FR6 0.5 --versus VC8 --preset quick
                                    # where does each cycle of latency go?
    frfc heatmap FR6 0.85 --metric reservation_occupancy --preset quick
                                    # where is the mesh congested?
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.obs.ledger import RunLedger
    from repro.obs.progress import ProgressReporter
    from repro.obs.report import AttributionSummary
    from repro.obs.session import ObsSession

from repro.baselines.vc.config import VC8, VC16, VC32
from repro.baselines.wormhole.network import WormholeConfig
from repro.core.config import FR6, FR13
from repro.harness import figures as figures_module
from repro.harness.experiment import AnyConfig, run_experiment
from repro.harness.saturation import find_saturation
from repro.harness.tables import format_table1, format_table2, table1, table2, table3
from repro.harness.sweep import run_load_sweep
from repro.sim.invariants import InvariantChecker

CONFIGS: dict[str, AnyConfig] = {
    "VC8": VC8,
    "VC16": VC16,
    "VC32": VC32,
    "FR6": FR6,
    "FR13": FR13,
    "WH8": WormholeConfig(buffers_per_input=8),
}

FIGURES: dict[str, Callable[..., figures_module.FigureResult]] = {
    "5": figures_module.figure5,
    "6": figures_module.figure6,
    "7": figures_module.figure7,
    "8": figures_module.figure8,
    "9": figures_module.figure9,
}


def _config(name: str) -> AnyConfig:
    try:
        return CONFIGS[name.upper()]
    except KeyError:
        known = ", ".join(sorted(CONFIGS))
        raise SystemExit(f"unknown configuration {name!r}; known: {known}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="frfc",
        description="Flit-reservation flow control (HPCA 2000) reproduction harness",
    )
    parser.add_argument("--preset", default="standard", help="quick|standard|paper")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="run sanitized: verify conservation laws after every cycle and "
        "abort on the first violation (see docs/invariants.md)",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="before running, prove the routing deadlock-free (CDG), the "
        "network phase loops race-free, and the run_experiment/run_load_sweep "
        "entry points isolation-certified (see docs/static-analysis.md)",
    )
    obs_flags = parser.add_argument_group(
        "observability", "exports for `obs` and `point` runs (docs/observability.md)"
    )
    obs_flags.add_argument(
        "--trace-out", help="write a Perfetto-loadable Chrome trace-event JSON here"
    )
    obs_flags.add_argument(
        "--metrics-out", help="write the sampled metrics timeseries CSV here"
    )
    obs_flags.add_argument("--events-out", help="write the raw JSONL event log here")
    obs_flags.add_argument(
        "--profile",
        action="store_true",
        help="measure simulator cycles/sec per phase and write BENCH_obs.json",
    )
    obs_flags.add_argument(
        "--attribution-out",
        help="write the per-component latency attribution JSON "
        "(frfc-attribution/1) here; also accepted by `attribute`, `sweep`, "
        "and `saturate`",
    )
    obs_flags.add_argument(
        "--spatial-out",
        help="write the per-coordinate spatial metrics timeseries CSV here",
    )
    obs_flags.add_argument(
        "--heatmap-out",
        help="write the frfc-heatmap/1 mesh heatmap JSON here; `sweep` "
        "writes one frame per load",
    )
    obs_flags.add_argument(
        "--manifest-out",
        default="obs_manifest.json",
        help="run manifest path (config, preset, seed, git SHA)",
    )
    obs_flags.add_argument(
        "--bench-out", default="BENCH_obs.json", help="self-profiling report path"
    )
    obs_flags.add_argument(
        "--sample-every", type=int, default=100, help="metrics sampling cadence in cycles"
    )
    obs_flags.add_argument(
        "--event-capacity",
        type=int,
        default=1_000_000,
        help="keep at most this many events (oldest dropped first; the "
        "manifest reports events_dropped when the bound is hit)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="storage overhead (analytical)")
    sub.add_parser("table2", help="bandwidth overhead (analytical)")
    t3 = sub.add_parser("table3", help="experimental summary")
    t3.add_argument("--no-leading", action="store_true")
    t3.add_argument("--packet-lengths", default="5,21")

    fig = sub.add_parser("figure", help="regenerate one figure's curves")
    fig.add_argument("number", choices=sorted(FIGURES))

    point = sub.add_parser("point", help="run one (config, load) experiment")
    point.add_argument("config")
    point.add_argument("load", type=float)
    point.add_argument("--packet-length", type=int, default=5)
    point.add_argument(
        "--streaming",
        action="store_true",
        help="collect latency with bounded-memory streaming percentile "
        "sketches instead of storing every sample",
    )
    _add_run_flags(point)
    _add_ledger_flags(point)

    obs = sub.add_parser(
        "obs",
        help="run one observed (config, load) experiment and export artifacts",
    )
    obs.add_argument("config")
    obs.add_argument("load", type=float)
    obs.add_argument("--packet-length", type=int, default=5)
    _add_run_flags(obs)

    attribute = sub.add_parser(
        "attribute",
        help="decompose one (config, load) point's latency into components",
    )
    attribute.add_argument("config")
    attribute.add_argument("load", type=float)
    attribute.add_argument("--packet-length", type=int, default=5)
    attribute.add_argument(
        "--versus",
        help="second configuration measured at the same load and seed, "
        "reported side by side (FR against VC is the paper's comparison)",
    )
    _add_run_flags(attribute)

    sat = sub.add_parser("saturate", help="find saturation throughput")
    sat.add_argument("config")
    sat.add_argument("--packet-length", type=int, default=5)
    sat.add_argument("--low", type=float, default=0.30)
    sat.add_argument("--attribution-out", default=argparse.SUPPRESS)
    _add_ledger_flags(sat)

    sub.add_parser("occupancy", help="Section 4.2 buffer-pool occupancy study")
    sub.add_parser("lead", help="Section 4.4 control-lead study")

    sweep = sub.add_parser("sweep", help="latency-throughput curve for one config")
    sweep.add_argument("config")
    sweep.add_argument("--loads", default="0.1,0.3,0.5,0.63,0.72,0.8")
    sweep.add_argument("--packet-length", type=int, default=5)
    sweep.add_argument("--attribution-out", default=argparse.SUPPRESS)
    sweep.add_argument("--heatmap-out", default=argparse.SUPPRESS)
    _add_ledger_flags(sweep)

    heat = sub.add_parser(
        "heatmap",
        help="render a spatial congestion heatmap for one (config, load) "
        "point, or re-render an existing frfc-heatmap/1 JSON with --from",
    )
    heat.add_argument("config", nargs="?")
    heat.add_argument("load", nargs="?", type=float)
    heat.add_argument("--packet-length", type=int, default=5)
    heat.add_argument(
        "--metric",
        default="buffer_occupancy",
        help="node metric to render (buffer_occupancy, reservation_occupancy, "
        "injection_backpressure, credit_stalls)",
    )
    heat.add_argument(
        "--at",
        type=int,
        default=None,
        metavar="CYCLE",
        help="render the single sampled window containing this cycle",
    )
    heat.add_argument(
        "--window",
        default=None,
        metavar="A:B",
        help="aggregate the sampled rows inside the half-open window [A, B) "
        "(default: the measurement window)",
    )
    heat.add_argument(
        "--top", type=int, default=5, help="hotspot count to report per frame"
    )
    heat.add_argument(
        "--frame", type=int, default=0, help="frame index for multi-frame payloads"
    )
    heat.add_argument("--json-out", help="also write the frfc-heatmap/1 JSON here")
    heat.add_argument("--svg-out", help="also write an SVG rendering here")
    heat.add_argument(
        "--from",
        dest="from_file",
        default=None,
        metavar="JSON",
        help="re-render an existing frfc-heatmap/1 payload instead of simulating",
    )
    _add_run_flags(heat)

    trace = sub.add_parser("trace", help="print one packet's event timeline")
    trace.add_argument("config")
    trace.add_argument("--load", type=float, default=0.3)
    trace.add_argument("--packet", type=int, default=1)
    trace.add_argument("--cycles", type=int, default=400)

    util = sub.add_parser("utilization", help="per-channel busy fractions")
    util.add_argument("config")
    util.add_argument("load", type=float)
    util.add_argument("--cycles", type=int, default=2000)

    bench = sub.add_parser(
        "bench",
        help="record or check the committed simulator-speed baselines "
        "(wraps tools/bench_gate.py; see docs/performance.md)",
    )
    bench.add_argument("action", choices=["record", "check"])
    bench.add_argument(
        "--min-ratio",
        type=float,
        default=None,
        help="for `check`: fail when fresh/baseline cycles/sec falls below this",
    )
    bench.add_argument(
        "--models",
        action="store_true",
        help="for `check`: also gate the per-model quick points "
        "(VC8, WH8, FR6 on 16x16)",
    )

    runs = sub.add_parser(
        "runs",
        help="inspect the content-addressed run ledger "
        "(list / show HASH / diff A B / gc; see docs/observability.md)",
    )
    runs.add_argument("action", choices=["list", "show", "diff", "gc"])
    runs.add_argument(
        "hashes",
        nargs="*",
        help="record identity-hash prefixes (`show` takes one, `diff` two)",
    )
    runs.add_argument(
        "--store", default=".frfc/runs", help="ledger directory (default .frfc/runs)"
    )
    runs.add_argument(
        "--all",
        dest="gc_all",
        action="store_true",
        help="for `gc`: evict every record, not just stale/corrupt ones",
    )
    runs.add_argument(
        "--kind",
        choices=["experiment", "throughput", "bench"],
        default=None,
        help="for `list`: show only records of this kind (bench-gate entries "
        "otherwise drown sweep records)",
    )

    args = parser.parse_args(argv)
    if args.analyze:
        _run_analysis_gates()
    wants_exports = bool(
        args.trace_out
        or args.metrics_out
        or args.events_out
        or args.profile
        or args.spatial_out
    )
    wants_attribution = getattr(args, "attribution_out", None) is not None
    wants_heatmap = getattr(args, "heatmap_out", None) is not None
    if wants_exports and args.command not in ("point", "obs", "attribute"):
        raise SystemExit(
            "--trace-out/--metrics-out/--events-out/--profile/--spatial-out "
            "apply to the `obs`, `point`, and `attribute` commands only"
        )
    if wants_attribution and args.command not in (
        "point",
        "obs",
        "attribute",
        "sweep",
        "saturate",
    ):
        raise SystemExit(
            "--attribution-out applies to the `point`, `obs`, `attribute`, "
            "`sweep`, and `saturate` commands only"
        )
    if wants_heatmap and args.command not in ("point", "obs", "sweep"):
        raise SystemExit(
            "--heatmap-out applies to the `point`, `obs`, and `sweep` "
            "commands only (`heatmap` renders directly)"
        )
    wants_obs = wants_exports or wants_attribution or wants_heatmap
    if args.command == "table1":
        print(format_table1(table1()))
    elif args.command == "table2":
        print(format_table2(table2()))
    elif args.command == "table3":
        lengths = tuple(int(x) for x in args.packet_lengths.split(","))
        result = table3(
            preset=args.preset,
            seed=args.seed,
            packet_lengths=lengths,
            include_leading=not args.no_leading,
            check_invariants=args.check_invariants,
        )
        print(result.format())
    elif args.command == "figure":
        result = FIGURES[args.number](
            preset=args.preset, seed=args.seed, check_invariants=args.check_invariants
        )
        print(result.format())
    elif args.command == "point":
        session = _obs_session(args) if wants_obs else None
        ledger = _ledger(args)
        progress = _progress(args, label=args.config.upper())
        if progress is not None:
            if session is None:
                session = _point_obs_session(progress)
            else:
                session.progress = progress
            progress.begin_point(index=1, total=1, label=f"load={args.load:.2f}")
        result = run_experiment(
            _config(args.config),
            args.load,
            packet_length=args.packet_length,
            seed=args.seed,
            preset=args.preset,
            streaming=args.streaming,
            check_invariants=args.check_invariants,
            obs=session,
            ledger=ledger,
        )
        replayed = ledger is not None and ledger.last_hit
        if progress is not None:
            progress.end_point(cache_hit=replayed, summary=result.summary())
        print(result.summary())
        if session is not None and not replayed:
            _finalize_obs(session, args, argv)
        _report_ledger(ledger)
    elif args.command == "obs":
        session = _obs_session(args, defaults=True)
        result = run_experiment(
            _config(args.config),
            args.load,
            packet_length=args.packet_length,
            seed=args.seed,
            preset=args.preset,
            check_invariants=args.check_invariants,
            obs=session,
        )
        print(result.summary())
        _finalize_obs(session, args, argv)
    elif args.command == "attribute":
        _attribute(args, argv)
    elif args.command == "saturate":
        ledger = _ledger(args)
        progress = _progress(args, label=args.config.upper())
        result = find_saturation(
            _config(args.config),
            packet_length=args.packet_length,
            seed=args.seed,
            preset=args.preset,
            low=args.low,
            check_invariants=args.check_invariants,
            attribute=wants_attribution,
            ledger=ledger,
            progress=progress,
        )
        if progress is not None:
            progress.close(f"knee {result.knee:.2f}")
        print(
            f"{result.config_name}: saturation {result.saturation * 100:.0f}% of "
            f"capacity (knee {result.knee:.2f}, plateau {result.plateau:.2f})"
        )
        for offered, accepted in result.probes:
            print(f"  offered {offered:.3f} -> accepted {accepted:.3f}")
        if wants_attribution:
            _write_attribution(result.attribution, args)
        _report_ledger(ledger)
    elif args.command == "occupancy":
        result = figures_module.section42_occupancy(
            preset=args.preset, seed=args.seed, check_invariants=args.check_invariants
        )
        print(result.format())
    elif args.command == "lead":
        result = figures_module.section44_control_lead(
            preset=args.preset, seed=args.seed, check_invariants=args.check_invariants
        )
        print(result.format())
    elif args.command == "sweep":
        loads = [float(x) for x in args.loads.split(",")]
        ledger = _ledger(args)
        progress = _progress(args, label=args.config.upper())
        sweep_result = run_load_sweep(
            _config(args.config),
            loads,
            packet_length=args.packet_length,
            seed=args.seed,
            preset=args.preset,
            check_invariants=args.check_invariants,
            attribute=wants_attribution,
            ledger=ledger,
            progress=progress,
            heatmap_out=getattr(args, "heatmap_out", None),
        )
        if progress is not None:
            progress.close(
                f"{sweep_result.cache_hits()}/{len(sweep_result.telemetry)} cache hits"
            )
        print(sweep_result.format_table())
        if wants_heatmap:
            print(f"  heatmap: {args.heatmap_out}")
        if wants_attribution:
            _write_attribution(sweep_result.attribution, args)
        # Sweep health (per-point cache/drops/phase timings) goes to stderr so
        # stdout stays byte-comparable between cold and warm ledger runs.
        if sweep_result.telemetry:
            sys.stderr.write(sweep_result.format_health() + "\n")
        _report_ledger(ledger)
    elif args.command == "heatmap":
        return _heatmap(args, argv)
    elif args.command == "trace":
        print(_trace(args))
    elif args.command == "utilization":
        print(_utilization(args))
    elif args.command == "bench":
        return _bench(args)
    elif args.command == "runs":
        return _runs(args)
    return 0


def _add_run_flags(subparser: argparse.ArgumentParser) -> None:
    """Let `point`/`obs` take the global run flags *after* the subcommand.

    Defaults are suppressed so a flag given before the subcommand (the
    historical position) is not clobbered by the subparser's default.
    """
    suppress = argparse.SUPPRESS
    subparser.add_argument("--preset", default=suppress)
    subparser.add_argument("--seed", type=int, default=suppress)
    subparser.add_argument("--check-invariants", action="store_true", default=suppress)
    subparser.add_argument("--trace-out", default=suppress)
    subparser.add_argument("--metrics-out", default=suppress)
    subparser.add_argument("--events-out", default=suppress)
    subparser.add_argument("--profile", action="store_true", default=suppress)
    subparser.add_argument("--attribution-out", default=suppress)
    subparser.add_argument("--spatial-out", default=suppress)
    subparser.add_argument("--heatmap-out", default=suppress)
    subparser.add_argument("--manifest-out", default=suppress)
    subparser.add_argument("--bench-out", default=suppress)
    subparser.add_argument("--sample-every", type=int, default=suppress)
    subparser.add_argument("--event-capacity", type=int, default=suppress)


def _add_ledger_flags(subparser: argparse.ArgumentParser) -> None:
    """`--ledger [DIR]` and `--progress-out` for point/sweep/saturate."""
    subparser.add_argument(
        "--ledger",
        nargs="?",
        const=".frfc/runs",
        default=None,
        metavar="DIR",
        help="consult/record the content-addressed run ledger before "
        "simulating (verified hits replay byte-identically; default store "
        ".frfc/runs)",
    )
    subparser.add_argument(
        "--progress-out",
        default=None,
        metavar="JSONL",
        help="append machine-readable heartbeat telemetry here (stderr gets "
        "the human lines either way once progress is on)",
    )


def _ledger(args: argparse.Namespace) -> "RunLedger | None":
    store = getattr(args, "ledger", None)
    if store is None:
        return None
    from repro.obs.ledger import RunLedger

    return RunLedger(store)


def _progress(args: argparse.Namespace, label: str) -> "ProgressReporter | None":
    """A heartbeat reporter when --progress-out or --ledger asked for one."""
    jsonl_out = getattr(args, "progress_out", None)
    if jsonl_out is None and getattr(args, "ledger", None) is None:
        return None
    from repro.obs.progress import ProgressReporter

    return ProgressReporter(jsonl_out=jsonl_out or "", label=label)


def _point_obs_session(progress: "ProgressReporter") -> "ObsSession":
    """A minimal session that only carries the progress hook for `point`."""
    from repro.obs.session import ObsSession

    return ObsSession(manifest_out="", bench_out="", progress=progress)


def _report_ledger(ledger: "RunLedger | None") -> None:
    """One stderr line of cache telemetry (stdout stays byte-comparable)."""
    if ledger is not None and ledger.consulted:
        sys.stderr.write(ledger.summary() + "\n")


def _runs(args: argparse.Namespace) -> int:
    """Run `frfc runs`: list / show / diff / gc over one ledger store."""
    from repro.obs.ledger import (
        LedgerError,
        RunLedger,
        describe_record,
        format_run_diff,
    )

    if args.kind is not None and args.action != "list":
        raise SystemExit("--kind applies to `frfc runs list` only")
    ledger = RunLedger(args.store)
    try:
        if args.action == "list":
            records, corrupt = ledger.scan(kind=args.kind)
            if not records and not corrupt:
                where = f"no run records in {ledger.root}"
                if args.kind is not None:
                    where = f"no {args.kind} records in {ledger.root}"
                print(where)
                return 0
            for record in records:
                print(describe_record(record))
            for path in corrupt:
                print(f"{path.stem[:12]}  CORRUPT     (refusing to read {path.name})")
        elif args.action == "show":
            if len(args.hashes) != 1:
                raise SystemExit("`frfc runs show` takes exactly one record hash")
            record = ledger.load(ledger.resolve(args.hashes[0]))
            import json as json_module

            print(json_module.dumps(record, indent=2, sort_keys=True))
        elif args.action == "diff":
            if len(args.hashes) != 2:
                raise SystemExit("`frfc runs diff` takes exactly two record hashes")
            record_a = ledger.load(ledger.resolve(args.hashes[0]))
            record_b = ledger.load(ledger.resolve(args.hashes[1]))
            print(format_run_diff(record_a, record_b))
        elif args.action == "gc":
            kept, evicted = ledger.gc(wipe_all=args.gc_all)
            print(f"{ledger.root}: kept {kept}, evicted {evicted}")
    except LedgerError as error:
        raise SystemExit(f"frfc runs: {error}")
    return 0


def _checker(args: argparse.Namespace) -> InvariantChecker | None:
    return InvariantChecker() if args.check_invariants else None


def _obs_session(args: argparse.Namespace, defaults: bool = False) -> "ObsSession":
    """Build the observability session the flags describe.

    The ``obs`` subcommand (``defaults=True``) always produces a Chrome
    trace, a metrics CSV, and a profile, so a bare ``frfc obs FR6 0.5``
    yields the full artifact set; ``point`` exports only what was asked.
    """
    from repro.obs.session import ObsSession

    trace_out = args.trace_out
    metrics_out = args.metrics_out
    profile = args.profile
    if defaults:
        trace_out = trace_out or "obs_trace.json"
        metrics_out = metrics_out or "obs_metrics.csv"
        profile = True
    return ObsSession(
        events_out=args.events_out,
        trace_out=trace_out,
        metrics_out=metrics_out,
        spatial_out=args.spatial_out,
        heatmap_out=getattr(args, "heatmap_out", None),
        profile=profile,
        attribution_out=args.attribution_out,
        manifest_out=args.manifest_out,
        bench_out=args.bench_out,
        sample_every=args.sample_every,
        capacity=args.event_capacity,
    )


def _finalize_obs(
    session: "ObsSession", args: argparse.Namespace, argv: list[str] | None
) -> None:
    """Write the session's artifacts and report where they went."""
    artifacts = session.finalize(
        config=_config(args.config),
        seed=args.seed,
        preset=args.preset,
        offered_load=args.load,
        packet_length=args.packet_length,
        command="frfc " + " ".join(argv if argv is not None else sys.argv[1:]),
    )
    for kind in sorted(artifacts):
        print(f"  {kind}: {artifacts[kind]}")
    if session.profiler is not None:
        print(f"  simulator: {session.profiler.cycles_per_second:,.0f} cycles/sec")


def _parse_window(spec: str) -> tuple[int, int]:
    """Parse ``A:B`` into the half-open cycle window (A, B)."""
    parts = spec.split(":")
    try:
        start, end = (int(part) for part in parts)
    except ValueError:
        raise SystemExit(f"--window takes A:B cycle bounds, got {spec!r}")
    if start >= end:
        raise SystemExit(f"--window must be half-open [A, B) with A < B, got {spec!r}")
    return start, end


def _heatmap(args: argparse.Namespace, argv: list[str] | None) -> int:
    """Run `frfc heatmap`: simulate (or load) a payload and render it."""
    from repro.obs.heatmap import (
        HeatmapError,
        build_heatmap,
        format_hotspots,
        render_ascii,
        render_svg,
        validate_heatmap,
        write_heatmap_json,
    )

    window = _parse_window(args.window) if args.window else None
    try:
        if args.from_file:
            import json as json_module

            with open(args.from_file, encoding="utf-8") as handle:
                payload = json_module.load(handle)
            validate_heatmap(payload)
        else:
            if args.config is None or args.load is None:
                raise SystemExit(
                    "frfc heatmap needs CFG LOAD to simulate (or --from FILE "
                    "to re-render an existing payload)"
                )
            from repro.obs.session import ObsSession

            session = ObsSession(
                heatmap_out="",
                manifest_out="",
                bench_out="",
                sample_every=args.sample_every,
            )
            result = run_experiment(
                _config(args.config),
                args.load,
                packet_length=args.packet_length,
                seed=args.seed,
                preset=args.preset,
                check_invariants=args.check_invariants,
                obs=session,
            )
            print(result.summary())
            registry = session.spatial
            if registry is None or registry.network is None or not registry.samples:
                raise SystemExit("frfc heatmap: the run sampled no spatial rows")
            select = window
            if select is None and args.at is None:
                # Default to the measurement window, like the session export.
                select = session.window
                if select is not None and not registry.rows_in_window(*select):
                    select = None
            payload = build_heatmap(
                registry,
                registry.network.mesh,
                label=f"{result.config_name} load={args.load:.2f}",
                window=select,
                at=args.at,
                top_k=args.top,
                context={
                    "seed": args.seed,
                    "preset": args.preset,
                    "offered_load": args.load,
                    "packet_length": args.packet_length,
                    "command": "frfc "
                    + " ".join(argv if argv is not None else sys.argv[1:]),
                },
            )
        print(render_ascii(payload, args.metric, frame=args.frame))
        print()
        print(format_hotspots(payload, args.metric, frame=args.frame))
        if args.json_out:
            write_heatmap_json(payload, args.json_out)
            print(f"  heatmap: {args.json_out}")
        if args.svg_out:
            from repro.obs.exporters import atomic_write_text

            atomic_write_text(args.svg_out, render_svg(payload, args.metric, frame=args.frame))
            print(f"  svg: {args.svg_out}")
    except ValueError as error:  # HeatmapError and malformed --from JSON
        raise SystemExit(f"frfc heatmap: {error}")
    except OSError as error:
        raise SystemExit(f"frfc heatmap: {error}")
    return 0


def _attribute(args: argparse.Namespace, argv: list[str] | None) -> None:
    """Run `frfc attribute`: one observed point per config, table + JSON."""
    from repro.obs.report import format_attribution_table, write_attribution_json
    from repro.obs.session import ObsSession

    wants_exports = bool(
        args.trace_out or args.metrics_out or args.events_out or args.profile
    )
    out = args.attribution_out if args.attribution_out is not None else "attribution.json"
    names = [args.config] + ([args.versus] if args.versus else [])
    summaries = []
    for index, name in enumerate(names):
        primary = index == 0
        # The primary config owns the export flags; the --versus run only
        # attributes (attribution_out="" builds the attributor without an
        # auto-written artifact -- one JSON below covers both runs).
        session = ObsSession(
            events_out=args.events_out if primary else None,
            trace_out=args.trace_out if primary else None,
            metrics_out=args.metrics_out if primary else None,
            profile=bool(args.profile) if primary else False,
            attribution_out="",
            manifest_out=args.manifest_out if primary and wants_exports else "",
            bench_out=args.bench_out,
            sample_every=args.sample_every,
            capacity=args.event_capacity,
        )
        result = run_experiment(
            _config(name),
            args.load,
            packet_length=args.packet_length,
            seed=args.seed,
            preset=args.preset,
            check_invariants=args.check_invariants,
            obs=session,
        )
        print(result.summary())
        summary = session.attribution_summary(
            label=f"{result.config_name} load={args.load:.2f}"
        )
        if summary is not None:
            summaries.append(summary)
        if primary and wants_exports:
            _finalize_obs(session, args, argv)
    if not summaries:
        raise SystemExit("no packets were delivered; nothing to attribute")
    print()
    print(format_attribution_table(summaries))
    write_attribution_json(
        summaries,
        out,
        context={
            "seed": args.seed,
            "preset": args.preset,
            "offered_load": args.load,
            "packet_length": args.packet_length,
            "command": "frfc " + " ".join(argv if argv is not None else sys.argv[1:]),
        },
    )
    print(f"  attribution: {out}")


def _write_attribution(
    summaries: list["AttributionSummary"], args: argparse.Namespace
) -> None:
    """Print and write the attribution gathered across a sweep/saturate run."""
    from repro.obs.report import format_attribution_table, write_attribution_json

    if not summaries:
        print("  attribution: no packets were delivered; nothing to attribute")
        return
    print()
    print(format_attribution_table(summaries))
    write_attribution_json(
        summaries,
        args.attribution_out,
        context={"seed": args.seed, "preset": args.preset},
    )
    print(f"  attribution: {args.attribution_out}")


def _load_bench_gate():
    """Load tools/bench_gate.py by file path (it is not part of the package).

    The tool lives outside ``src`` because it owns the committed baseline
    paths; that makes it reachable only from a source checkout.
    """
    import importlib.util
    from pathlib import Path

    tool = Path(__file__).resolve().parents[3] / "tools" / "bench_gate.py"
    if not tool.exists():
        raise SystemExit(
            "frfc bench wraps tools/bench_gate.py, which was not found next "
            "to this package -- run it from a source checkout"
        )
    spec = importlib.util.spec_from_file_location("bench_gate_cli", tool)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _bench(args: argparse.Namespace) -> int:
    """Run `frfc bench`: the trajectory gate (tools/bench_gate.py) by another door."""
    if args.action != "check" and (args.models or args.min_ratio is not None):
        raise SystemExit("--min-ratio/--models apply to `frfc bench check` only")
    argv = [args.action]
    if args.action == "check":
        if args.min_ratio is not None:
            argv += ["--min-ratio", str(args.min_ratio)]
        if args.models:
            argv.append("--models")
    return _load_bench_gate().main(argv)


def _run_analysis_gates() -> None:
    """Abort unless the model passes the static-analysis gates.

    Gate 1: the shipped routing function induces an acyclic channel
    dependency graph on the experiment mesh (deadlock freedom).  Gate 2:
    every network's ``step()`` phase loops are actor-order independent
    (no same-cycle races).  Gate 3: every ``run_experiment``/
    ``run_load_sweep`` entry point certifies isolated -- a pure function
    of (config, seed, load), no shared mutable state, traceable RNG
    provenance, ordered iteration.  All three gates are pure analysis --
    no simulation runs, so the cost is a fraction of a second.
    """
    from repro.analysis import (
        analyze_entry_points,
        analyze_known_networks,
        prove_deadlock_freedom,
    )
    from repro.topology.mesh import Mesh2D
    from repro.topology.routing import DimensionOrderRouting

    mesh = Mesh2D(8, 8)
    cdg = prove_deadlock_freedom(DimensionOrderRouting(mesh), mesh, routing_name="xy")
    if not cdg.deadlock_free:
        raise SystemExit(f"--analyze: routing is not deadlock-free\n{cdg.format()}")
    for report in analyze_known_networks():
        if not report.clean:
            raise SystemExit(f"--analyze: phase races detected\n{report.format()}")
    for entry in analyze_entry_points():
        if entry.findings:
            raise SystemExit(f"--analyze: isolation violated\n{entry.render()}")
    print(
        "analyze: xy routing deadlock-free on 8x8; FR/VC/WH phases race-free; "
        "entry points isolation-certified"
    )


def _trace(args: argparse.Namespace) -> str:
    from repro.harness.experiment import build_network
    from repro.obs.trace import TraceLog
    from repro.sim.kernel import Simulator

    # Tracing rides on the unified event bus, so every flow-control scheme
    # (FR, VC, wormhole) can be traced.
    network = build_network(_config(args.config), args.load, seed=args.seed)
    log = TraceLog().attach(network)
    Simulator(network, checker=_checker(args)).step(args.cycles)
    return log.format_packet(args.packet)


def _utilization(args: argparse.Namespace) -> str:
    from repro.harness.experiment import build_network
    from repro.sim.kernel import Simulator
    from repro.stats.utilization import measure_channel_utilization

    network = build_network(_config(args.config), args.load, seed=args.seed)
    simulator = Simulator(network, checker=_checker(args))
    simulator.step(max(500, args.cycles // 4))  # warm up
    report = measure_channel_utilization(network, simulator, args.cycles)
    return report.format(count=8)


if __name__ == "__main__":
    sys.exit(main())
