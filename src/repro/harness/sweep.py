"""Load sweeps: the latency-versus-offered-traffic curves of Figures 5-9."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.harness.experiment import AnyConfig, ExperimentResult, run_experiment
from repro.harness.presets import MeasurementPreset

if TYPE_CHECKING:
    from repro.obs.report import AttributionSummary
    from repro.obs.session import ObsSession


@dataclass
class LoadSweepResult:
    """One latency-throughput curve: a configuration swept over loads."""

    config_name: str
    packet_length: int
    points: list[ExperimentResult] = field(default_factory=list)
    #: One attribution rollup per point (populated when ``attribute`` was
    #: requested) -- where each added cycle of latency goes as load rises.
    attribution: list["AttributionSummary"] = field(default_factory=list)

    def offered_loads(self) -> list[float]:
        return [point.offered_load for point in self.points]

    def latencies(self) -> list[float]:
        return [point.mean_latency for point in self.points]

    def accepted_loads(self) -> list[float]:
        return [point.accepted_load for point in self.points]

    def latency_at(self, load: float) -> float:
        """Mean latency at the sweep point closest to ``load``."""
        if not self.points:
            raise ValueError("empty sweep")
        closest = min(self.points, key=lambda p: abs(p.offered_load - load))
        return closest.mean_latency

    def rows(self) -> list[tuple[float, float, float]]:
        """(offered, accepted, latency) triples, ready for printing."""
        return [
            (p.offered_load, p.accepted_load, p.mean_latency) for p in self.points
        ]

    def format_table(self) -> str:
        lines = [
            f"{self.config_name} ({self.packet_length}-flit packets)",
            f"{'offered':>8} {'accepted':>9} {'latency':>9}",
        ]
        for offered, accepted, latency in self.rows():
            lines.append(f"{offered:>8.2f} {accepted:>9.3f} {latency:>9.1f}")
        return "\n".join(lines)


def run_load_sweep(
    config: AnyConfig,
    loads: list[float],
    packet_length: int = 5,
    seed: int = 1,
    preset: str | MeasurementPreset = "standard",
    stop_when_saturated: bool = True,
    attribute: bool = False,
    **kwargs: Any,
) -> LoadSweepResult:
    """Measure one configuration across ascending offered loads.

    When ``stop_when_saturated`` is set, the sweep records one point past
    saturation (so the curve shows the blow-up) and stops, saving the cost
    of deeply oversaturated runs that add nothing to the figure.

    With ``attribute`` each point runs with a latency attributor attached
    and the result carries one attribution summary per point, so the sweep
    shows which component absorbs the added latency as load rises.
    """
    result = LoadSweepResult(config_name="", packet_length=packet_length)
    for load in sorted(loads):
        session = _attribution_session() if attribute else None
        point = run_experiment(
            config,
            load,
            packet_length=packet_length,
            seed=seed,
            preset=preset,
            obs=session,
            **kwargs,
        )
        result.config_name = point.config_name
        result.points.append(point)
        if session is not None:
            summary = session.attribution_summary(
                label=f"{point.config_name} load={load:.2f}"
            )
            if summary is not None:
                result.attribution.append(summary)
        if stop_when_saturated and point.saturated:
            break
    return result


def _attribution_session() -> "ObsSession":
    """An ObsSession that only attributes: no artifacts, no manifest."""
    from repro.obs.session import ObsSession

    return ObsSession(attribution_out="", manifest_out="")
