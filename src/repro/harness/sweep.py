"""Load sweeps: the latency-versus-offered-traffic curves of Figures 5-9."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.harness.experiment import AnyConfig, ExperimentResult, run_experiment
from repro.harness.presets import MeasurementPreset

if TYPE_CHECKING:
    from repro.obs.ledger import RunLedger
    from repro.obs.progress import ProgressReporter
    from repro.obs.report import AttributionSummary
    from repro.obs.session import ObsSession


@dataclass
class PointTelemetry:
    """Per-point health facts a multi-point run must not hide.

    ``events_dropped`` > 0 means an observer's capacity bound truncated its
    stream for that point; ``profile`` is the point's SimProfiler report
    (phase wall times) when one ran; ``cache_hit`` marks points replayed
    from the run ledger instead of simulated.
    """

    offered_load: float
    cache_hit: bool = False
    events_dropped: int = 0
    profile: Optional[dict[str, Any]] = None


@dataclass
class LoadSweepResult:
    """One latency-throughput curve: a configuration swept over loads."""

    config_name: str
    packet_length: int
    points: list[ExperimentResult] = field(default_factory=list)
    #: One attribution rollup per point (populated when ``attribute`` was
    #: requested) -- where each added cycle of latency goes as load rises.
    attribution: list["AttributionSummary"] = field(default_factory=list)
    #: One health record per point (cache hits, dropped events, phase
    #: timings); populated whenever the sweep ran observed or ledgered.
    telemetry: list[PointTelemetry] = field(default_factory=list)

    def offered_loads(self) -> list[float]:
        return [point.offered_load for point in self.points]

    def latencies(self) -> list[float]:
        return [point.mean_latency for point in self.points]

    def accepted_loads(self) -> list[float]:
        return [point.accepted_load for point in self.points]

    def latency_at(self, load: float) -> float:
        """Mean latency at the sweep point closest to ``load``."""
        if not self.points:
            raise ValueError("empty sweep")
        closest = min(self.points, key=lambda p: abs(p.offered_load - load))
        return closest.mean_latency

    def rows(self) -> list[tuple[float, float, float]]:
        """(offered, accepted, latency) triples, ready for printing."""
        return [
            (p.offered_load, p.accepted_load, p.mean_latency) for p in self.points
        ]

    def format_table(self) -> str:
        lines = [
            f"{self.config_name} ({self.packet_length}-flit packets)",
            f"{'offered':>8} {'accepted':>9} {'latency':>9}",
        ]
        for offered, accepted, latency in self.rows():
            lines.append(f"{offered:>8.2f} {accepted:>9.3f} {latency:>9.1f}")
        return "\n".join(lines)

    def cache_hits(self) -> int:
        return sum(1 for record in self.telemetry if record.cache_hit)

    def events_dropped(self) -> int:
        """Total events lost across every point -- zero means lossless."""
        return sum(record.events_dropped for record in self.telemetry)

    def format_health(self) -> str:
        """Per-point source (cache/simulated), drops, and phase timings.

        The sweep-level view of what used to be buried in per-point
        manifests: a lossy or slow point is visible at a glance.
        """
        lines = [
            f"{self.config_name} sweep health "
            f"({self.cache_hits()}/{len(self.telemetry)} cache hits, "
            f"{self.events_dropped()} events dropped)",
            f"{'offered':>8} {'source':>10} {'dropped':>8} {'c/s':>9}  phases",
        ]
        for record in self.telemetry:
            source = "cache" if record.cache_hit else "simulated"
            rate = ""
            phases = ""
            if record.profile:
                rate = f"{record.profile.get('cycles_per_second', 0.0):.0f}"
                phase_map = record.profile.get("phases", {})
                phases = " ".join(
                    f"{name}={phase_map[name]['wall_seconds']:.2f}s"
                    for name in ("warmup", "sample", "drain")
                    if name in phase_map
                )
            lines.append(
                f"{record.offered_load:>8.2f} {source:>10} "
                f"{record.events_dropped:>8d} {rate:>9}  {phases}"
            )
        return "\n".join(lines)


def run_load_sweep(
    config: AnyConfig,
    loads: list[float],
    packet_length: int = 5,
    seed: int = 1,
    preset: str | MeasurementPreset = "standard",
    stop_when_saturated: bool = True,
    attribute: bool = False,
    ledger: Optional["RunLedger"] = None,
    progress: Optional["ProgressReporter"] = None,
    heatmap_out: Optional[str] = None,
    **kwargs: Any,
) -> LoadSweepResult:
    """Measure one configuration across ascending offered loads.

    When ``stop_when_saturated`` is set, the sweep records one point past
    saturation (so the curve shows the blow-up) and stops, saving the cost
    of deeply oversaturated runs that add nothing to the figure.

    With ``attribute`` each point runs with a latency attributor attached
    and the result carries one attribution summary per point, so the sweep
    shows which component absorbs the added latency as load rises.

    With ``ledger`` each point consults the content-addressed run ledger
    first: verified hits replay recorded results byte-identically (zero
    simulation), misses simulate and record -- an interrupted sweep rerun
    against the same store resumes exactly where it stopped.  ``progress``
    attaches a heartbeat reporter to every simulated point and brackets
    points for ETA accounting; both leave results bit-identical to a bare
    sweep.

    With ``heatmap_out`` every simulated point runs with a spatial metrics
    registry attached and the sweep writes one ``frfc-heatmap/1`` payload
    with one frame per point (the spatial evolution of congestion as load
    rises).  Points replayed from the ledger were never simulated, so they
    contribute no frame.
    """
    result = LoadSweepResult(config_name="", packet_length=packet_length)
    ordered = sorted(loads)
    observed = (
        attribute or ledger is not None or progress is not None
        or heatmap_out is not None
    )
    frames: list[dict[str, Any]] = []
    frame_registry = None
    for index, load in enumerate(ordered):
        session = (
            _point_session(
                attribute=attribute,
                progress=progress,
                spatial=heatmap_out is not None,
            )
            if observed
            else None
        )
        if progress is not None:
            progress.begin_point(
                index=index + 1, total=len(ordered), label=f"load={load:.2f}"
            )
        point = run_experiment(
            config,
            load,
            packet_length=packet_length,
            seed=seed,
            preset=preset,
            obs=session,
            ledger=ledger,
            **kwargs,
        )
        hit = ledger is not None and ledger.last_hit
        result.config_name = point.config_name
        result.points.append(point)
        if observed:
            result.telemetry.append(_point_telemetry(load, hit, session, ledger))
        if attribute:
            summary = (
                ledger.last_attribution()
                if hit and ledger is not None
                else session.attribution_summary(
                    label=f"{point.config_name} load={load:.2f}"
                )
                if session is not None
                else None
            )
            if summary is not None:
                result.attribution.append(summary)
        if (
            heatmap_out is not None
            and session is not None
            and session.spatial is not None
            and session.spatial.samples
            and session.spatial.network is not None
        ):
            from repro.obs.heatmap import build_frame

            window = session.window
            if window is not None and not session.spatial.rows_in_window(*window):
                window = None
            frames.append(
                build_frame(
                    session.spatial,
                    session.spatial.network.mesh,
                    label=f"{point.config_name} load={load:.2f}",
                    window=window,
                )
            )
            frame_registry = session.spatial
        if progress is not None:
            progress.end_point(cache_hit=hit, summary=point.summary())
        if stop_when_saturated and point.saturated:
            break
    if heatmap_out and frames and frame_registry is not None:
        from repro.obs.heatmap import assemble_heatmap, write_heatmap_json

        network = frame_registry.network
        if network is not None:
            payload = assemble_heatmap(
                frame_registry,
                network.mesh,
                frames,
                context={"seed": seed, "packet_length": packet_length},
            )
            write_heatmap_json(payload, heatmap_out)
    return result


def _point_telemetry(
    load: float,
    hit: bool,
    session: "ObsSession | None",
    ledger: "RunLedger | None",
) -> PointTelemetry:
    """Health facts for one point, from the ledger record on a hit and the
    live session on a miss."""
    if hit and ledger is not None:
        return PointTelemetry(
            offered_load=load,
            cache_hit=True,
            events_dropped=ledger.last_events_dropped(),
            profile=ledger.last_profile(),
        )
    return PointTelemetry(
        offered_load=load,
        cache_hit=False,
        events_dropped=session.events_dropped if session is not None else 0,
        profile=session.profiler.report()
        if session is not None and session.profiler is not None
        else None,
    )


def _attribution_session() -> "ObsSession":
    """An ObsSession that only attributes: no artifacts, no manifest."""
    from repro.obs.session import ObsSession

    return ObsSession(attribution_out="", manifest_out="")


def _point_session(
    attribute: bool = False,
    progress: Optional["ProgressReporter"] = None,
    spatial: bool = False,
) -> "ObsSession":
    """The per-point session of an observed sweep: profiled, artifact-free,
    attributing/spatially sampling when asked, forwarding heartbeats when a
    reporter is given."""
    from repro.obs.session import ObsSession

    return ObsSession(
        attribution_out="" if attribute else None,
        heatmap_out="" if spatial else None,
        manifest_out="",
        bench_out="",
        profile=True,
        progress=progress,
    )
