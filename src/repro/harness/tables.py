"""Regenerate the paper's tables.

* :func:`table1` -- storage overhead (analytical, exact);
* :func:`table2` -- bandwidth overhead per data flit (analytical, exact);
* :func:`table3` -- the experimental summary: base latency, latency at 50%
  capacity, and saturation throughput for every configuration in both the
  fast-control and leading-control regimes.  Table 3 is simulation-driven
  and accepts a measurement preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.vc.config import VC8, VC16, VC32
from repro.core.config import FR6, FR13
from repro.harness.experiment import AnyConfig, run_experiment
from repro.harness.presets import MeasurementPreset
from repro.harness.saturation import find_saturation
from repro.overhead.bandwidth import BandwidthOverhead, fr_bandwidth, vc_bandwidth
from repro.overhead.storage import FRStorageModel, StorageBreakdown, VCStorageModel


def table1(flit_bits: int = 256, type_bits: int = 2) -> dict[str, dict[str, float]]:
    """Storage overhead per node for VC8/VC16/VC32 and FR6/FR13 (Table 1)."""
    vc_model = VCStorageModel(flit_bits=flit_bits, type_bits=type_bits)
    fr_model = FRStorageModel(flit_bits=flit_bits, type_bits=type_bits)
    rows: dict[str, dict[str, float]] = {}
    for config in (VC8, VC16, VC32):
        breakdown = vc_model.breakdown(config)
        rows[breakdown.name] = _storage_row(breakdown)
    for config in (FR6, FR13):
        breakdown = fr_model.breakdown(config)
        rows[breakdown.name] = _storage_row(breakdown)
    return rows


def _storage_row(breakdown: StorageBreakdown) -> dict[str, float]:
    return {
        "data_buffers": breakdown.data_buffers,
        "control_buffers": breakdown.control_buffers,
        "queue_pointers": breakdown.queue_pointers,
        "output_reservation_table": breakdown.output_reservation_table,
        "input_reservation_table": breakdown.input_reservation_table,
        "bits_per_node": breakdown.bits_per_node,
        "flits_per_input_channel": round(breakdown.flits_per_input_channel, 2),
    }


def format_table1(rows: dict[str, dict[str, float]]) -> str:
    components = [
        "data_buffers",
        "control_buffers",
        "queue_pointers",
        "output_reservation_table",
        "input_reservation_table",
        "bits_per_node",
        "flits_per_input_channel",
    ]
    names = list(rows)
    lines = ["Table 1: storage overhead (bits per node)"]
    header = f"{'component':<26}" + "".join(f"{name:>9}" for name in names)
    lines.append(header)
    for component in components:
        line = f"{component:<26}"
        for name in names:
            value = rows[name][component]
            line += f"{value:>9g}"
        lines.append(line)
    return "\n".join(lines)


def table2(
    packet_length: int = 5, destination_bits: int = 6, flit_bits: int = 256
) -> dict[str, dict[str, float]]:
    """Bandwidth overhead per data flit (Table 2), for the paper's pairings."""
    rows: dict[str, dict[str, float]] = {}
    for config in (VC8, VC16, VC32):
        overhead = vc_bandwidth(config, packet_length, destination_bits)
        rows[overhead.name] = _bandwidth_row(overhead, flit_bits)
    for config in (FR6, FR13):
        overhead = fr_bandwidth(config, packet_length, destination_bits)
        rows[overhead.name] = _bandwidth_row(overhead, flit_bits)
    return rows


def _bandwidth_row(overhead: BandwidthOverhead, flit_bits: int) -> dict[str, float]:
    return {
        "destination": round(overhead.destination, 3),
        "vcid": round(overhead.vcid, 3),
        "arrival_times": round(overhead.arrival_times, 3),
        "bits_per_data_flit": round(overhead.bits_per_data_flit, 3),
        "fraction_of_flit": round(overhead.fraction_of_flit(flit_bits), 4),
    }


def format_table2(rows: dict[str, dict[str, float]]) -> str:
    lines = ["Table 2: bandwidth overhead per data flit (bits)"]
    names = list(rows)
    header = f"{'component':<20}" + "".join(f"{name:>9}" for name in names)
    lines.append(header)
    for component in (
        "destination",
        "vcid",
        "arrival_times",
        "bits_per_data_flit",
        "fraction_of_flit",
    ):
        line = f"{component:<20}"
        for name in names:
            line += f"{rows[name][component]:>9g}"
        lines.append(line)
    return "\n".join(lines)


# -- Table 3: the experimental summary -------------------------------------------


@dataclass
class Table3Row:
    """One configuration's summary in one regime."""

    regime: str  # "fast" | "leading"
    config_name: str
    packet_length: int
    base_latency: float
    latency_at_50pct: float
    saturation: float


@dataclass
class Table3Result:
    rows: list[Table3Row] = field(default_factory=list)

    def find(self, regime: str, config_name: str, packet_length: int) -> Table3Row:
        for row in self.rows:
            if (
                row.regime == regime
                and row.config_name == config_name
                and row.packet_length == packet_length
            ):
                return row
        raise KeyError((regime, config_name, packet_length))

    def format(self) -> str:
        lines = [
            "Table 3: summary of experimental results",
            f"{'regime':<9}{'config':<8}{'pkt len':>8}{'base lat':>10}"
            f"{'lat@50%':>9}{'sat %cap':>10}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.regime:<9}{row.config_name:<8}{row.packet_length:>8}"
                f"{row.base_latency:>10.1f}{row.latency_at_50pct:>9.1f}"
                f"{row.saturation * 100:>9.0f}%"
            )
        return "\n".join(lines)


def fast_control_configs() -> list[AnyConfig]:
    """The paper's five fast-control configurations."""
    return [FR6, FR13, VC8, VC16, VC32]


def leading_control_configs(lead: int = 1) -> list[AnyConfig]:
    """The leading-control (1-cycle wire) variants of the same five."""
    fr_configs: list[AnyConfig] = [
        FR6.with_leading_control(lead),
        FR13.with_leading_control(lead),
    ]
    vc_configs: list[AnyConfig] = [
        VC8.with_unit_links(),
        VC16.with_unit_links(),
        VC32.with_unit_links(),
    ]
    return fr_configs + vc_configs


def table3(
    preset: str | MeasurementPreset = "standard",
    seed: int = 1,
    base_load: float = 0.05,
    packet_lengths: tuple[int, ...] = (5, 21),
    include_leading: bool = True,
    saturation_low: float = 0.25,
    check_invariants: bool = False,
) -> Table3Result:
    """Measure every Table 3 cell.

    ``base_load`` is the near-zero offered load used for base latency (the
    paper reads it off the flat left end of each curve).
    """
    result = Table3Result()
    for length in packet_lengths:
        for config in fast_control_configs():
            result.rows.append(
                _table3_row(
                    "fast", config, length, base_load, preset, seed,
                    saturation_low, check_invariants,
                )
            )
    if include_leading:
        for config in leading_control_configs(lead=1):
            result.rows.append(
                _table3_row(
                    "leading", config, 5, base_load, preset, seed,
                    saturation_low, check_invariants,
                )
            )
    return result


def _table3_row(
    regime: str,
    config: AnyConfig,
    packet_length: int,
    base_load: float,
    preset: str | MeasurementPreset,
    seed: int,
    saturation_low: float,
    check_invariants: bool = False,
) -> Table3Row:
    base = run_experiment(
        config,
        base_load,
        packet_length=packet_length,
        seed=seed,
        preset=preset,
        check_invariants=check_invariants,
    )
    mid = run_experiment(
        config,
        0.50,
        packet_length=packet_length,
        seed=seed,
        preset=preset,
        check_invariants=check_invariants,
    )
    saturation = find_saturation(
        config,
        packet_length=packet_length,
        seed=seed,
        preset=preset,
        low=saturation_low,
        check_invariants=check_invariants,
    )
    return Table3Row(
        regime=regime,
        config_name=base.config_name,
        packet_length=packet_length,
        base_latency=base.mean_latency,
        latency_at_50pct=mid.mean_latency,
        saturation=saturation.saturation,
    )
