"""Deterministic dimension-ordered (XY) routing.

The paper's simulated network uses deterministic dimension-ordered routing,
which is deadlock-free on a mesh without extra virtual channels: packets
first travel east/west until the destination column, then north/south until
the destination row, then eject.
"""

from __future__ import annotations

from typing import Protocol

from repro.topology.mesh import EAST, EJECT, NORTH, SOUTH, WEST, Mesh2D


class RoutingFunction(Protocol):
    """A deterministic single-path routing function."""

    def output_port(self, node: int, destination: int) -> int:
        """The output port a packet at ``node`` bound for ``destination`` takes."""


class DimensionOrderRouting:
    """XY routing on a 2-D mesh, with a precomputed lookup table.

    The table is ``num_nodes x num_nodes`` small integers; on an 8x8 mesh
    that is 4096 entries, and it turns the per-flit routing decision in the
    simulation hot loop into a list index.
    """

    __slots__ = ("mesh", "_table")

    def __init__(self, mesh: Mesh2D) -> None:
        self.mesh = mesh
        n = mesh.num_nodes
        self._table = [bytearray(n) for _ in range(n)]
        for node in range(n):
            for destination in range(n):
                self._table[node][destination] = self._compute(node, destination)

    def _compute(self, node: int, destination: int) -> int:
        x, y = self.mesh.coordinates(node)
        dx, dy = self.mesh.coordinates(destination)
        if x < dx:
            return EAST
        if x > dx:
            return WEST
        if y < dy:
            return SOUTH
        if y > dy:
            return NORTH
        return EJECT

    def output_port(self, node: int, destination: int) -> int:
        """The port (EAST/WEST/SOUTH/NORTH/EJECT) to take at ``node``."""
        return self._table[node][destination]


class RoutingLoopError(ValueError):
    """A routing function revisited a node, so the packet can never arrive.

    Carries the offending ``cycle`` (the node sequence from the first visit
    of the repeated node back to itself) so analysis tools -- notably the
    channel-dependency-graph builder in :mod:`repro.analysis.cdg` -- can
    report the exact livelock instead of a generic hop-count overflow.
    """

    def __init__(self, src: int, dst: int, cycle: list[int]) -> None:
        loop = " -> ".join(str(node) for node in cycle)
        super().__init__(
            f"routing loop between {src} and {dst}: packet revisits node "
            f"{cycle[-1]} via {loop}"
        )
        self.src = src
        self.dst = dst
        self.cycle = cycle


def route_path(routing: RoutingFunction, mesh: Mesh2D, src: int, dst: int) -> list[int]:
    """The full node sequence a packet visits from ``src`` to ``dst``.

    Used by tests and analysis tools; the simulators themselves route hop by
    hop.  A deterministic routing function that revisits any node can never
    deliver the packet, so the walk keeps a visited set and raises
    :class:`RoutingLoopError` naming the exact node cycle on the first
    revisit, rather than only after ``num_nodes`` hops.
    """
    path = [src]
    visited = {src}
    node = src
    while node != dst:
        port = routing.output_port(node, dst)
        next_node = mesh.neighbor(node, port)
        if next_node is None:
            raise ValueError(
                f"routing sent a packet off the mesh edge at node {node} port {port}"
            )
        node = next_node
        if node in visited:
            cycle = path[path.index(node) :] + [node]
            raise RoutingLoopError(src, dst, cycle)
        visited.add(node)
        path.append(node)
    return path
