"""Deterministic dimension-ordered (XY) routing.

The paper's simulated network uses deterministic dimension-ordered routing,
which is deadlock-free on a mesh without extra virtual channels: packets
first travel east/west until the destination column, then north/south until
the destination row, then eject.
"""

from __future__ import annotations

from typing import Protocol

from repro.topology.mesh import EAST, EJECT, NORTH, SOUTH, WEST, Mesh2D


class RoutingFunction(Protocol):
    """A deterministic single-path routing function."""

    def output_port(self, node: int, destination: int) -> int:
        """The output port a packet at ``node`` bound for ``destination`` takes."""


class DimensionOrderRouting:
    """XY routing on a 2-D mesh, with a precomputed lookup table.

    The table is ``num_nodes x num_nodes`` small integers; on an 8x8 mesh
    that is 4096 entries, and it turns the per-flit routing decision in the
    simulation hot loop into a list index.
    """

    def __init__(self, mesh: Mesh2D) -> None:
        self.mesh = mesh
        n = mesh.num_nodes
        self._table = [bytearray(n) for _ in range(n)]
        for node in range(n):
            for destination in range(n):
                self._table[node][destination] = self._compute(node, destination)

    def _compute(self, node: int, destination: int) -> int:
        x, y = self.mesh.coordinates(node)
        dx, dy = self.mesh.coordinates(destination)
        if x < dx:
            return EAST
        if x > dx:
            return WEST
        if y < dy:
            return SOUTH
        if y > dy:
            return NORTH
        return EJECT

    def output_port(self, node: int, destination: int) -> int:
        """The port (EAST/WEST/SOUTH/NORTH/EJECT) to take at ``node``."""
        return self._table[node][destination]


def route_path(routing: RoutingFunction, mesh: Mesh2D, src: int, dst: int) -> list[int]:
    """The full node sequence a packet visits from ``src`` to ``dst``.

    Used by tests and analysis tools; the simulators themselves route hop by
    hop.  Raises if the routing function livelocks (visits more nodes than
    exist).
    """
    path = [src]
    node = src
    while node != dst:
        port = routing.output_port(node, dst)
        next_node = mesh.neighbor(node, port)
        if next_node is None:
            raise ValueError(
                f"routing sent a packet off the mesh edge at node {node} port {port}"
            )
        node = next_node
        path.append(node)
        if len(path) > mesh.num_nodes:
            raise ValueError(f"routing loop detected between {src} and {dst}")
    return path
