"""Two-dimensional mesh topology.

Nodes are numbered row-major: node ``y * width + x`` sits at coordinate
``(x, y)``.  Each router has up to four mesh ports (north/east/south/west)
plus an injection port from and an ejection port to the local node interface.
Port constants are small integers so they can index plain lists in the hot
simulation loops.
"""

from __future__ import annotations

from typing import Iterator, Optional

NORTH = 0
EAST = 1
SOUTH = 2
WEST = 3
INJECT = 4  # from the local node interface into the router
EJECT = 4  # from the router to the local node interface

MESH_PORTS = (NORTH, EAST, SOUTH, WEST)
PORT_NAMES = {NORTH: "north", EAST: "east", SOUTH: "south", WEST: "west", INJECT: "local"}

_OPPOSITE = {NORTH: SOUTH, SOUTH: NORTH, EAST: WEST, WEST: EAST}


def opposite_port(port: int) -> int:
    """The port on the neighbouring router that faces ``port`` back."""
    return _OPPOSITE[port]


class Mesh2D:
    """A ``width x height`` mesh and its structural queries.

    The class is pure topology: which nodes exist, who neighbours whom, hop
    distances, and the uniform-traffic capacity used to express offered load
    as a fraction of bisection bandwidth (the paper's x-axis).
    """

    __slots__ = ("width", "height", "num_nodes")

    def __init__(self, width: int = 8, height: int = 8) -> None:
        if width < 2 or height < 2:
            raise ValueError(
                f"mesh must be at least 2x2 to have a bisection, got {width}x{height}"
            )
        self.width = width
        self.height = height
        self.num_nodes = width * height

    def coordinates(self, node: int) -> tuple[int, int]:
        """``(x, y)`` coordinate of ``node``."""
        self._check_node(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Node id at coordinate ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinate ({x}, {y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def neighbor(self, node: int, port: int) -> Optional[int]:
        """Neighbour of ``node`` through mesh ``port``, or None at an edge."""
        x, y = self.coordinates(node)
        if port == NORTH:
            return self.node_at(x, y - 1) if y > 0 else None
        if port == SOUTH:
            return self.node_at(x, y + 1) if y < self.height - 1 else None
        if port == EAST:
            return self.node_at(x + 1, y) if x < self.width - 1 else None
        if port == WEST:
            return self.node_at(x - 1, y) if x > 0 else None
        raise ValueError(f"port {port} is not a mesh port")

    def mesh_ports(self, node: int) -> list[int]:
        """The mesh ports of ``node`` that actually have a neighbour."""
        return [port for port in MESH_PORTS if self.neighbor(node, port) is not None]

    def nodes(self) -> Iterator[int]:
        """Iterate over all node ids."""
        return iter(range(self.num_nodes))

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan distance in hops between two nodes."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def mean_hop_distance(self) -> float:
        """Exact mean hop count of uniform random traffic (dest != src).

        For a ``k``-node line the mean |x_s - x_d| over all ordered pairs is
        ``(k^2 - 1) / (3k)``; the mesh sums the two dimensions and the
        dest != src restriction rescales by ``N / (N - 1)``.
        """
        line_mean_x = (self.width**2 - 1) / (3 * self.width)
        line_mean_y = (self.height**2 - 1) / (3 * self.height)
        n = self.num_nodes
        return (line_mean_x + line_mean_y) * n / (n - 1)

    def bisection_channels(self) -> int:
        """Channels crossing the bisection in one direction.

        The mesh is cut across its longer dimension (for the paper's square
        mesh, either cut gives the same count).
        """
        if self.width >= self.height:
            return self.height
        return self.width

    def capacity_flits_per_node(self) -> float:
        """Injection rate (flits/node/cycle) that loads the bisection to 1.

        Under uniform random traffic on a width-``k`` mesh cut down the
        middle, each direction of the bisection carries
        ``N * rate * p_cross / 2`` flits per cycle over
        ``bisection_channels()`` wires, where ``p_cross`` is the probability
        a packet crosses the cut.  For an even-width mesh ``p_cross`` is 1/2
        (times the dest != src correction), giving the familiar ``4/k``.
        """
        n = self.num_nodes
        if self.width >= self.height:
            near = (self.width // 2) * self.height
        else:
            near = (self.height // 2) * self.width
        far = n - near
        # Ordered (src, dst) pairs crossing the cut, dest != src.
        crossing_pairs = 2 * near * far
        total_pairs = n * (n - 1)
        p_cross = crossing_pairs / total_pairs
        per_direction_load = (n * p_cross / 2) / self.bisection_channels()
        return 1.0 / per_direction_load

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} outside mesh of {self.num_nodes} nodes")

    def __repr__(self) -> str:
        return f"Mesh2D({self.width}x{self.height})"
