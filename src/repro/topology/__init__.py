"""Network topology and routing.

The paper evaluates an 8x8 two-dimensional mesh with deterministic
dimension-ordered (XY) routing; this subpackage provides that topology in a
general ``width x height`` form plus the routing function and the capacity
model used to normalise offered load.
"""

from repro.topology.mesh import (
    EJECT,
    EAST,
    INJECT,
    NORTH,
    PORT_NAMES,
    SOUTH,
    WEST,
    Mesh2D,
    opposite_port,
)
from repro.topology.routing import (
    DimensionOrderRouting,
    RoutingFunction,
    RoutingLoopError,
    route_path,
)

__all__ = [
    "DimensionOrderRouting",
    "EAST",
    "EJECT",
    "INJECT",
    "Mesh2D",
    "NORTH",
    "PORT_NAMES",
    "RoutingFunction",
    "RoutingLoopError",
    "SOUTH",
    "WEST",
    "opposite_port",
    "route_path",
]
