"""frfc-lint: simulator-specific static analysis for this repository.

A thin, dependency-free AST linter with rules tuned to the hazards of a
deterministic cycle-stepped network simulator (see :mod:`repro.lint.rules`
for the rule catalogue and :mod:`repro.lint.engine` for suppression and
reporting).  Invoked from the command line via ``tools/frfc_lint.py`` and
from the test suite directly.
"""

from repro.lint.engine import (
    Finding,
    LintConfigurationError,
    iter_python_files,
    lint_paths,
    lint_source,
    suppressed_rules_by_line,
)
from repro.lint.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintConfigurationError",
    "Rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "suppressed_rules_by_line",
]
