"""The frfc-lint engine: file walking, suppression, and reporting.

The linter parses each file once into an :mod:`ast` tree and hands it to
every registered rule (see :mod:`repro.lint.rules`).  Findings are plain
records; the engine subtracts those the source suppresses with an inline
marker and formats the rest like a compiler diagnostic::

    src/repro/core/router.py:42:8: D004 mutable default argument `history`

A finding on line ``L`` is suppressed when line ``L`` carries the comment
``# frfc-lint: disable=D001`` (several rule ids may be listed, separated by
commas; ``disable=all`` silences every rule for that line).  For statements
too long to carry a trailing comment (wrapped calls, multi-line literals)
the spelling ``# frfc-lint: disable-next-line=D001`` on its own line
suppresses the rule on the *following* line instead.  Suppression is
deliberately line-scoped -- blanket file- or block-level waivers would
defeat the point of simulator-specific rules.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

_DISABLE_RE = re.compile(r"#\s*frfc-lint:\s*disable(?P<next>-next-line)?=(?P<rules>[A-Za-z0-9,\s]+)")


class LintConfigurationError(Exception):
    """Raised when the linter is invoked on paths it cannot analyse."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    column: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule_id} {self.message}"


def suppressed_rules_by_line(source: str) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule ids disabled on that line.

    Both marker spellings contribute: ``disable=`` targets its own line,
    ``disable-next-line=`` targets the line after the comment.
    """
    suppressions: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _DISABLE_RE.search(line)
        if match is None:
            continue
        rules = {
            token.strip() for token in match.group("rules").split(",") if token.strip()
        }
        target = lineno + 1 if match.group("next") else lineno
        suppressions.setdefault(target, set()).update(rules)
    return suppressions


def lint_source(source: str, path: str) -> list[Finding]:
    """Run every rule over one file's source text."""
    from repro.lint.rules import ALL_RULES

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 1) - 1,
                rule_id="E000",
                message=f"syntax error: {error.msg}",
            )
        ]
    suppressions = suppressed_rules_by_line(source)
    findings: list[Finding] = []
    for rule in ALL_RULES:
        for finding in rule.check(tree, path):
            disabled = suppressions.get(finding.line, set())
            if finding.rule_id in disabled or "all" in disabled:
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule_id))
    return findings


def iter_python_files(paths: Sequence[str | Path]) -> Iterable[Path]:
    """Expand files and directories into the .py files to lint.

    Overlapping arguments (``src src/repro``, a file listed twice, a file
    inside an already-given directory) yield each file exactly once, keyed
    by resolved path; the first spelling encountered is the one yielded.
    """
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = (path,)
        else:
            raise LintConfigurationError(f"not a python file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def lint_paths(paths: Sequence[str | Path]) -> list[Finding]:
    """Lint every python file reachable from ``paths``.

    A file that cannot be read (permissions, vanished mid-walk) or is not
    UTF-8 text produces an ``E001`` finding instead of an unhandled
    traceback, so one bad file cannot take down a whole CI lint sweep.
    """
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            findings.append(
                Finding(
                    path=str(file_path),
                    line=1,
                    column=0,
                    rule_id="E001",
                    message=f"file could not be read as UTF-8 text: {error}",
                )
            )
            continue
        findings.extend(lint_source(source, str(file_path)))
    return findings
