"""The frfc-lint rules (D001-D014).

These are *simulator-specific* checks: each one fences off a class of bug
that has silently corrupted cycle-accurate models in practice.

=====  ======================================================================
D001   No wall-clock reads or global ``random`` in ``src/repro``.  Every
       stochastic draw must flow through :class:`repro.sim.rng.DeterministicRng`
       so a run is exactly reproducible from one integer seed; wall-clock
       values make results unrepeatable by construction.
D002   No iteration over bare ``set`` expressions.  Set iteration order
       depends on element hashes, so a router that walks a set makes
       hash-order-dependent (hence irreproducible) arbitration decisions.
D003   Every ``*Error``/``*Violation`` exception must be raised with a
       message.  Protocol-violation exceptions are the simulator's crash
       dumps; a bare ``raise BufferPoolError()`` loses the router, port, and
       cycle that make the report actionable.
D004   No mutable default arguments.  A shared default list/dict aliases
       state across router instances -- precisely the cross-node coupling a
       cycle-stepped model must never have.
D005   Public functions in ``core/``, ``sim/``, and ``baselines/`` must be
       fully type-annotated (every parameter and the return type), keeping
       the ``mypy --strict`` gate airtight where the flit accounting lives.
D006   No reaching into another object's private state.  Writing
       ``other._x`` (or reading a ``Link``'s pipeline internals outside
       ``sim/link.py``) bypasses the API that keeps cross-router coupling
       inside Link pipeline stages, the invariant the whole cycle model
       rests on.
D007   No same-cycle cross-actor races in a network ``step()`` phase loop:
       the per-file slice of the :mod:`repro.analysis.phases` detector.
       Flags writes to shared state and non-API channel access inside a
       phase loop when the model's actor classes live in the same file;
       the whole-model pass runs as ``frfc_analyze races``.
D008   No direct ``print`` in simulator code.  Only the CLI front-ends may
       write to stdout; everything else reports through return values,
       exceptions, or the observability layer (:mod:`repro.obs`), so
       library callers and the event exporters own the output stream.
D009   No avoidable allocation on the per-cycle hot path: the per-file
       slice of the :mod:`repro.analysis.hotpath` analyzer.  Flags
       list/dict/set displays, comprehensions, generator expressions,
       object construction, closures, and string concatenation inside
       functions reachable from a local model's ``step()``; the
       whole-model pass runs as ``frfc_analyze hotpath`` and its counts
       are CI-gated by ``benchmarks/results/HOTPATH_baseline.json``.
D010   Classes reachable from a local model's per-cycle hot path must
       declare ``__slots__``.  A slotless instance drags a ``__dict__``
       through every cycle: more memory traffic and slower attribute
       lookups exactly where the simulator spends its time.
D011   No writes to (or escapes of) module-level or class-level mutable
       state: the per-file slice of the :mod:`repro.analysis.isolation`
       prover's pass 1.  A module dict written from a method, a
       class-level list shared by every instance, or a ``functools``
       cache couples sweep points that must be independent; the
       whole-program pass runs as ``frfc_analyze isolation`` and is
       CI-gated by ``benchmarks/results/ISOLATION_baseline.json``.
D012   Every stochastic draw must have traceable seed provenance: the
       receiver of a draw call has to trace to a
       :class:`repro.sim.rng.DeterministicRng` -- an annotated parameter,
       an explicit construction, a ``.spawn(...)``, or a ``self`` attr
       assigned one of those (isolation prover pass 2).  D001 bans the
       ambient ``random`` module; D012 additionally rejects draws whose
       generator cannot be traced to an explicit seed.
D013   No digest-reaching unordered iteration: iterating set-typed
       names/attributes, keying containers by ``id()``/``hash()``, or
       sorting with identity-based keys (isolation prover pass 3).  D002
       bans bare set *expressions*; D013 follows set-typed values and
       identity keys, whose order leaks the process hash seed into
       simulated state or exported artifacts.
D014   No direct truncating writes (``open(..., "w")``/``"x"`` or
       ``Path.write_text``/``write_bytes``) in ``src/repro`` outside
       ``obs/exporters.py``, ``obs/ledger.py``, and the CLI front-ends.
       Result-bearing files must flow through the atomic (temp + rename),
       hash-verified writers so a crashed run can never leave a torn
       artifact that a later ledger lookup would trust.
=====  ======================================================================

Any rule can be silenced on a single line with ``# frfc-lint: disable=Dxxx``
or on the following line with ``# frfc-lint: disable-next-line=Dxxx``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.engine import Finding

#: Modules whose import (in simulator code) defeats seeded reproducibility.
FORBIDDEN_MODULES = ("random",)

#: Dotted call suffixes that read the wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

#: Constructors whose call (or literal form) produces a mutable object.
MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter", "OrderedDict"}
)

#: Subpackages whose public functions D005 requires to be fully annotated.
ANNOTATED_SUBPACKAGES = frozenset({"core", "sim", "baselines"})

#: Path suffixes (as ``/``-joined parts) of the CLI front-ends D008 exempts:
#: the only modules in the package whose job is writing to stdout.
CLI_MODULE_SUFFIXES = ("harness/runner.py",)

#: Modules allowed to open files for (truncating) writing: the atomic-writer
#: home, the ledger built on it, and the CLI front-ends (D014 exempts them).
ATOMIC_WRITER_SUFFIXES = ("obs/exporters.py", "obs/ledger.py") + CLI_MODULE_SUFFIXES


def _dotted_name(node: ast.expr) -> str | None:
    """Best-effort dotted name of an attribute chain (``a.b.c``)."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """One lint rule: an id, a one-line summary, and an AST check."""

    rule_id: str = ""
    summary: str = ""

    def check(self, tree: ast.Module, path: str) -> Iterable[Finding]:
        raise NotImplementedError(f"rule {self.rule_id} does not implement check()")

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


class NoAmbientNondeterminism(Rule):
    """D001: no wall-clock reads, no global ``random`` module."""

    rule_id = "D001"
    summary = "wall-clock or global `random` use; randomness must flow through repro.sim.rng"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in FORBIDDEN_MODULES:
                        yield self.finding(
                            path,
                            node,
                            f"module `{alias.name}` imported; draw randomness "
                            "through repro.sim.rng.DeterministicRng instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = (node.module or "").split(".")[0]
                if module in FORBIDDEN_MODULES:
                    yield self.finding(
                        path,
                        node,
                        f"import from `{node.module}`; draw randomness "
                        "through repro.sim.rng.DeterministicRng instead",
                    )
                elif module in ("time", "datetime"):
                    for alias in node.names:
                        dotted = f"{module}.{alias.name}"
                        if dotted in WALL_CLOCK_CALLS or alias.name in ("datetime", "date"):
                            yield self.finding(
                                path,
                                node,
                                f"wall-clock import `{dotted}`: simulator results "
                                "must not depend on real time",
                            )
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                tail = ".".join(dotted.split(".")[-2:])
                if tail in WALL_CLOCK_CALLS:
                    yield self.finding(
                        path,
                        node,
                        f"wall-clock call `{dotted}()`: simulator results "
                        "must not depend on real time",
                    )


class NoBareSetIteration(Rule):
    """D002: iteration order over a set depends on hashes -- a determinism hazard."""

    rule_id = "D002"
    summary = "iteration over a bare set (hash-order nondeterminism)"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            iterables: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables.extend(generator.iter for generator in node.generators)
            for iterable in iterables:
                if self._is_bare_set(iterable):
                    yield self.finding(
                        path,
                        iterable,
                        "iteration over a bare set is hash-order nondeterministic; "
                        "iterate a list/tuple or wrap in sorted()",
                    )

    @staticmethod
    def _is_bare_set(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)):
            # Set algebra (union/intersection/difference) of sets is a set.
            return NoBareSetIteration._is_bare_set(node.left) or NoBareSetIteration._is_bare_set(
                node.right
            )
        return False


class ErrorsCarryMessages(Rule):
    """D003: protocol-violation exceptions must name what went wrong."""

    rule_id = "D003"
    summary = "`*Error` exception raised without a message"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, (ast.Name, ast.Attribute)):
                name = _dotted_name(exc)
                if name is not None and self._is_error_name(name.split(".")[-1]):
                    yield self.finding(
                        path, node, f"exception `{name}` raised without a message"
                    )
            elif isinstance(exc, ast.Call):
                name = _dotted_name(exc.func)
                if name is None:
                    continue
                short = name.split(".")[-1]
                if self._is_error_name(short) and not exc.args:
                    yield self.finding(
                        path, node, f"exception `{short}` raised without a message"
                    )

    @staticmethod
    def _is_error_name(name: str) -> bool:
        return name.endswith("Error") or name.endswith("Violation")


class NoMutableDefaults(Rule):
    """D004: a mutable default is shared across every call and every instance."""

    rule_id = "D004"
    summary = "mutable default argument"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            positional = args.posonlyargs + args.args
            for arg, default in zip(positional[len(positional) - len(args.defaults) :], args.defaults):
                if self._is_mutable(default):
                    yield self.finding(
                        path, default, f"mutable default argument `{arg.arg}`"
                    )
            for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
                if kw_default is not None and self._is_mutable(kw_default):
                    yield self.finding(
                        path, kw_default, f"mutable default argument `{arg.arg}`"
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in MUTABLE_FACTORIES
        return False


class PublicFunctionsAnnotated(Rule):
    """D005: the flit-accounting subpackages keep a fully annotated surface."""

    rule_id = "D005"
    summary = "public function in core/, sim/, or baselines/ missing type annotations"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        parts = set(Path(path).parts)
        if not parts & ANNOTATED_SUBPACKAGES:
            return
        yield from self._check_body(tree.body, path)

    def _check_body(self, body: list[ast.stmt], path: str) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_body(node.body, path)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                missing = self._missing_annotations(node)
                if missing:
                    yield self.finding(
                        path,
                        node,
                        f"public function `{node.name}` missing type annotations: "
                        + ", ".join(missing),
                    )

    @staticmethod
    def _missing_annotations(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
        args = node.args
        missing: list[str] = []
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None and arg.arg not in ("self", "cls"):
                missing.append(arg.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        if node.returns is None:
            missing.append("return")
        return missing


class NoForeignPrivateState(Rule):
    """D006: another object's underscore attributes are not your state."""

    rule_id = "D006"
    summary = "access to another object's private (underscore) state"

    #: Link's pipeline internals; reading them outside sim/link.py couples
    #: an observer to sub-cycle link state the pipeline API hides.
    LINK_PRIVATE_NAMES = frozenset({"_slots", "_sent_this_cycle", "_last_send_cycle"})

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        in_link_module = Path(path).name == "link.py" and "sim" in Path(path).parts
        for node in ast.walk(tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                yield from self._check_write(target, path)
            if (
                not in_link_module
                and isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and node.attr in self.LINK_PRIVATE_NAMES
                and not self._receiver_is_self(node)
            ):
                yield self.finding(
                    path,
                    node,
                    f"read of Link pipeline internals `{node.attr}`; use the "
                    "Link API (send/receive/capacity_remaining/in_flight) or "
                    "suppress with a justification",
                )

    def _check_write(self, target: ast.expr, path: str) -> Iterator[Finding]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_write(element, path)
        elif isinstance(target, ast.Starred):
            yield from self._check_write(target.value, path)
        elif (
            isinstance(target, ast.Attribute)
            and target.attr.startswith("_")
            and not self._receiver_is_self(target)
        ):
            yield self.finding(
                path,
                target,
                f"write to private attribute `{target.attr}` of another "
                "object; go through its public API so cross-object coupling "
                "stays visible",
            )

    @staticmethod
    def _receiver_is_self(node: ast.Attribute) -> bool:
        return isinstance(node.value, ast.Name) and node.value.id in ("self", "cls")


class NoPhaseRaces(Rule):
    """D007: a step() phase loop must be actor-order-independent."""

    rule_id = "D007"
    summary = "same-cycle cross-actor race in a network step() phase loop"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        # Imported lazily: the analyzer lives in repro.analysis, which pulls
        # in the network models; plain lint runs should not pay that unless
        # a file actually gets here.
        from repro.analysis.phases import analyze_module_ast

        for hazard in analyze_module_ast(tree, path):
            yield Finding(
                path=path,
                line=hazard.line,
                column=0,
                rule_id=self.rule_id,
                message=f"[{hazard.phase}] {hazard.message} (via {hazard.location})",
            )


class NoHotPathAllocation(Rule):
    """D009: no avoidable allocation inside a per-cycle hot path."""

    rule_id = "D009"
    summary = "allocation on the per-cycle hot path"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        # Lazy for the same reason as D007: repro.analysis is heavyweight.
        from repro.analysis.hotpath import (
            ALLOCATION_CATEGORIES,
            analyze_module_hotpath_ast,
        )

        for hit in analyze_module_hotpath_ast(tree, path):
            if hit.category not in ALLOCATION_CATEGORIES:
                continue
            loop = " [in loop]" if hit.in_loop else ""
            yield Finding(
                path=path,
                line=hit.line,
                column=0,
                rule_id=self.rule_id,
                message=f"{hit.category} in hot function {hit.qualname}: "
                f"{hit.detail}{loop}",
            )


class HotPathClassesHaveSlots(Rule):
    """D010: classes on the per-cycle hot path must declare __slots__."""

    rule_id = "D010"
    summary = "hot-path class without __slots__"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        from repro.analysis.hotpath import analyze_module_hotpath_ast

        for hit in analyze_module_hotpath_ast(tree, path):
            if hit.category != "slotless_class":
                continue
            yield Finding(
                path=path,
                line=hit.line,
                column=0,
                rule_id=self.rule_id,
                message=hit.detail,
            )


class NoPrintInSimulator(Rule):
    """D008: only the CLI front-ends may write to stdout."""

    rule_id = "D008"
    summary = "direct print() in simulator code; only CLI modules own stdout"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        parts = Path(path).parts
        if "repro" not in parts:
            return  # tests, tools, and scripts print freely
        posix = Path(path).as_posix()
        if any(posix.endswith(suffix) for suffix in CLI_MODULE_SUFFIXES):
            return
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    path,
                    node,
                    "print() in simulator code: return the value, raise, or "
                    "emit through repro.obs; only CLI modules write to stdout",
                )


#: Finding categories from the isolation analyzer, split per rule.  The
#: ``default-alias`` category is deliberately absent: D004 already owns
#: mutable default arguments per-file.
_D011_CATEGORIES = frozenset(
    {"global-write", "global-escape", "class-mutable-write", "functools-cache"}
)
_D013_CATEGORIES = frozenset({"unordered-iteration", "id-keyed"})


class NoSharedMutableState(Rule):
    """D011: no writes to or escapes of module/class-level mutable state."""

    rule_id = "D011"
    summary = "module/class-level mutable state written or escaping"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        # Lazy for the same reason as D007/D009: repro.analysis is heavyweight.
        from repro.analysis.isolation import analyze_module_isolation_ast

        for hit in analyze_module_isolation_ast(tree, path):
            if hit.category not in _D011_CATEGORIES:
                continue
            yield Finding(
                path=path,
                line=hit.line,
                column=0,
                rule_id=self.rule_id,
                message=f"[{hit.category}] in {hit.qualname}: {hit.detail}",
            )


class RngProvenanceTraceable(Rule):
    """D012: every stochastic draw must trace to a seeded DeterministicRng."""

    rule_id = "D012"
    summary = "RNG draw with untraceable seed provenance"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        from repro.analysis.isolation import analyze_module_isolation_ast

        for hit in analyze_module_isolation_ast(tree, path):
            if hit.category != "rng-untraced":
                continue
            yield Finding(
                path=path,
                line=hit.line,
                column=0,
                rule_id=self.rule_id,
                message=f"in {hit.qualname}: {hit.detail}",
            )


class NoUnorderedIterationToDigest(Rule):
    """D013: no hash/identity-ordered iteration that can reach a digest."""

    rule_id = "D013"
    summary = "digest-hazardous unordered iteration or identity-keyed container"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        from repro.analysis.isolation import analyze_module_isolation_ast

        for hit in analyze_module_isolation_ast(tree, path):
            if hit.category not in _D013_CATEGORIES:
                continue
            yield Finding(
                path=path,
                line=hit.line,
                column=0,
                rule_id=self.rule_id,
                message=f"[{hit.category}] in {hit.qualname}: {hit.detail}",
            )


class ResultWritesAreAtomic(Rule):
    """D014: result-bearing writes flow through the atomic writers."""

    rule_id = "D014"
    summary = "direct truncating write; route through the atomic hash-verified writers"

    #: ``Path`` write methods that truncate in place.
    PATH_WRITE_METHODS = frozenset({"write_text", "write_bytes"})

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        parts = Path(path).parts
        if "repro" not in parts:
            return  # tests, tools, and scripts write freely
        posix = Path(path).as_posix()
        if any(posix.endswith(suffix) for suffix in ATOMIC_WRITER_SUFFIXES):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                mode = self._open_mode(node)
                if mode is not None and ("w" in mode or "x" in mode):
                    yield self.finding(
                        path,
                        node,
                        f"open(..., {mode!r}) truncates in place; write results "
                        "through repro.obs.exporters.atomic_write_text/json so "
                        "readers never see a torn file",
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self.PATH_WRITE_METHODS
            ):
                yield self.finding(
                    path,
                    node,
                    f"`.{node.func.attr}()` truncates in place; write results "
                    "through repro.obs.exporters.atomic_write_text/json so "
                    "readers never see a torn file",
                )

    @staticmethod
    def _open_mode(node: ast.Call) -> str | None:
        """The literal mode of an ``open`` call, or None when read/unknown."""
        mode: ast.expr | None = None
        if len(node.args) >= 2:
            mode = node.args[1]
        else:
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None


#: Every rule the engine runs, in report order.
ALL_RULES: tuple[Rule, ...] = (
    NoAmbientNondeterminism(),
    NoBareSetIteration(),
    ErrorsCarryMessages(),
    NoMutableDefaults(),
    PublicFunctionsAnnotated(),
    NoForeignPrivateState(),
    NoPhaseRaces(),
    NoPrintInSimulator(),
    NoHotPathAllocation(),
    HotPathClassesHaveSlots(),
    NoSharedMutableState(),
    RngProvenanceTraceable(),
    NoUnorderedIterationToDigest(),
    ResultWritesAreAtomic(),
)
