"""Watch flit-reservation flow control work, one packet at a time.

Attaches a trace log to an FR6 network under moderate load and prints a
packet's event timeline -- the programmatic version of the paper's Figure
4(d).  You can see the control flits arrive at each router ahead of the
data flits, and data flits bypass straight to ejection (arrival and
ejection in the same cycle) once the reservations are in place.  A channel
utilization report shows where the network is actually working.

Run:  python examples/trace_a_packet.py [--load 0.4] [--packet 5]
"""

import argparse

from repro import FR6, Simulator, build_network
from repro.sim.tracelog import TraceLog
from repro.stats.utilization import measure_channel_utilization


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=0.40)
    parser.add_argument("--packet", type=int, default=5)
    parser.add_argument("--cycles", type=int, default=500)
    args = parser.parse_args()

    network = build_network(FR6, args.load, seed=7)
    log = TraceLog().attach(network)
    simulator = Simulator(network)
    simulator.step(args.cycles)

    print(log.format_packet(args.packet))
    events = log.packet_events(args.packet)
    bypasses = sum(
        1
        for eject in events
        if eject.kind == "data_eject"
        and any(
            arrival.kind == "data_arrival"
            and arrival.cycle == eject.cycle
            and arrival.detail == eject.detail
            for arrival in events
        )
    )
    print(f"\n{bypasses} flit(s) of this packet bypassed buffering at the "
          "destination (ejected the cycle they arrived).")

    print("\nWhere the data network is working:")
    report = measure_channel_utilization(network, simulator, cycles=1_000)
    print(report.format(count=6))


if __name__ == "__main__":
    main()
