"""Quickstart: flit-reservation vs virtual-channel flow control in ~20 lines.

Runs the paper's FR6 and VC8 configurations (equal storage budgets, Table 1)
on the 8x8 mesh at half of network capacity and prints what the paper's
abstract promises: lower latency and headroom for more throughput.

Run:  python examples/quickstart.py
"""

from repro import FR6, VC8, run_experiment


def main() -> None:
    load = 0.50  # offered traffic as a fraction of bisection capacity
    print(f"8x8 mesh, uniform random traffic, 5-flit packets, {load:.0%} load\n")

    fr = run_experiment(FR6, load, preset="quick", seed=1)
    vc = run_experiment(VC8, load, preset="quick", seed=1)

    print(f"{'':24}{'FR6 (flit-reservation)':>24}{'VC8 (virtual-channel)':>24}")
    print(f"{'mean latency (cycles)':24}{fr.mean_latency:>24.1f}{vc.mean_latency:>24.1f}")
    print(f"{'95th percentile':24}{fr.p95_latency:>24.1f}{vc.p95_latency:>24.1f}")
    print(f"{'accepted / capacity':24}{fr.accepted_load:>24.3f}{vc.accepted_load:>24.3f}")
    print(f"{'packets measured':24}{fr.packets_measured:>24}{vc.packets_measured:>24}")
    bypass = fr.extras["bypass_fraction"]
    print(f"\nFR6 moved {bypass:.0%} of data flits through routers with zero")
    print("buffering -- reservations made by control flits racing ahead.")
    saving = 1 - fr.mean_latency / vc.mean_latency
    print(f"Latency saving vs virtual channels: {saving:.1%} (paper: ~15.6%)")


if __name__ == "__main__":
    main()
