"""Reproduce a miniature Figure 5: latency-throughput curves for the paper's
equal-storage pairings (FR6 vs VC8, FR13 vs VC16) on the 8x8 mesh.

This is the paper's central result: with the same storage budget,
flit-reservation flow control holds low latency deeper into the load range
and saturates at a higher fraction of bisection bandwidth, because buffers
are reserved for exactly their occupancy interval and recycled with zero
turnaround.

Run:  python examples/latency_throughput_curves.py
      (about two minutes; pass --loads to change the sweep)
"""

import argparse

from repro import FR6, FR13, VC8, VC16, run_load_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--loads",
        default="0.1,0.3,0.5,0.63,0.72,0.8",
        help="comma-separated offered loads (fraction of capacity)",
    )
    parser.add_argument("--preset", default="quick", help="quick|standard|paper")
    args = parser.parse_args()
    loads = [float(x) for x in args.loads.split(",")]

    print("Latency vs offered traffic, 5-flit packets, fast control wires")
    print("(paper Figure 5; latencies in cycles, loads as capacity fractions)\n")
    curves = []
    for config in (VC8, FR6, VC16, FR13):
        sweep = run_load_sweep(config, loads, preset=args.preset, seed=1)
        curves.append(sweep)
        print(sweep.format_table())
        print()

    vc8, fr6 = curves[0], curves[1]
    fr6_deepest = max(p.offered_load for p in fr6.points if not p.saturated)
    vc8_deepest = max(p.offered_load for p in vc8.points if not p.saturated)
    print(
        f"FR6 sustained {fr6_deepest:.0%} of capacity vs VC8's {vc8_deepest:.0%} "
        "with two fewer buffers per input"
    )
    print("(the paper reports 77% vs 63% at full fidelity).")


if __name__ == "__main__":
    main()
