"""A domain scenario from the paper's introduction: an on-chip network
carrying processor-to-memory traffic.

The paper motivates flit-reservation flow control with emerging VLSI
on-chip networks where a few memory controllers serve many cores.  We model
that as hotspot traffic: every node sends a share of its packets to four
memory-controller nodes on the mesh's rim, the rest uniformly (cache-to-
cache).  Hotspots congest the network well below uniform capacity, so flow
control quality shows up at realistic loads.

The example also exercises the leading-control regime: memory *reply*
packets know their destination while DRAM is being accessed, so control
flits can be injected ahead of the data for free -- the paper's own example
of how to exploit leading control off-chip.

Run:  python examples/onchip_memory_traffic.py
"""

from repro import FR6, VC8, Mesh2D
from repro.harness.experiment import build_network
from repro.sim.kernel import Simulator
from repro.traffic.patterns import HotspotTraffic

MEMORY_CONTROLLERS = [0, 7, 56, 63]  # the four corners of the 8x8 mesh


def run_scenario(config, load: float, lead: int = 0, seed: int = 3):
    mesh = Mesh2D(8, 8)
    pattern = HotspotTraffic(mesh, hotspots=MEMORY_CONTROLLERS, hotspot_fraction=0.2)
    network = build_network(
        config, load, packet_length=5, seed=seed, mesh=mesh, traffic=pattern
    )
    simulator = Simulator(network)
    simulator.step(1_500)  # warm up
    network.set_measure_window(1_500, 4_500)
    simulator.step(3_000)
    deadline = 40_000
    while network.measured_outstanding and simulator.cycle < deadline:
        simulator.step()
    stats = network.latency_stats
    return stats.mean, stats.percentile(95), network.measured_outstanding == 0


def main() -> None:
    load = 0.28  # hotspots congest well below uniform capacity
    print("On-chip memory traffic: 20% of packets target 4 memory controllers")
    print(f"offered load {load:.0%} of uniform capacity, 5-flit packets\n")

    print(f"{'scheme':34}{'mean lat':>10}{'p95 lat':>10}{'stable':>8}")
    for label, config in [
        ("VC8 (virtual channels)", VC8),
        ("FR6 (fast control wires)", FR6),
        ("FR6 (leading control, 2-cy lead)", FR6.with_leading_control(2)),
        ("VC8 (1-cycle wires)", VC8.with_unit_links()),
    ]:
        mean, p95, stable = run_scenario(config, load)
        print(f"{label:34}{mean:>10.1f}{p95:>10.1f}{str(stable):>8}")

    print(
        "\nUnder hotspot congestion the reservation network keeps scheduling"
        "\nahead of the data flits, so FR holds lower mean and tail latency"
        "\nat the same storage budget."
    )


if __name__ == "__main__":
    main()
