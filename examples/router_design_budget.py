"""Design-space exploration with the paper's cost models (Tables 1 and 2).

A router architect has a per-node storage budget and must pick a flow
control scheme and buffer sizing.  This example sweeps both design spaces
with the analytical models, prints the configurations that fit the budget,
and then simulates the best candidates head-to-head -- the workflow the
paper's own evaluation followed when it paired FR6 with VC8 and FR13 with
VC16.

Run:  python examples/router_design_budget.py [--budget-bits 12000]
"""

import argparse

from repro import FRConfig, VCConfig, measure_throughput
from repro.overhead.bandwidth import fr_bandwidth, vc_bandwidth
from repro.overhead.storage import FRStorageModel, VCStorageModel


def enumerate_vc_designs(budget_bits: int) -> list[VCConfig]:
    model = VCStorageModel()
    designs = []
    for num_vcs in (1, 2, 4, 8):
        for buffers_per_vc in (2, 3, 4, 6, 8):
            config = VCConfig(num_vcs=num_vcs, buffers_per_vc=buffers_per_vc)
            if model.breakdown(config).bits_per_node <= budget_bits:
                designs.append(config)
    return designs


def enumerate_fr_designs(budget_bits: int) -> list[FRConfig]:
    model = FRStorageModel()
    designs = []
    for control_vcs in (2, 4):
        for data_buffers in (4, 5, 6, 8, 10, 13):
            config = FRConfig(
                data_buffers_per_input=data_buffers, control_vcs=control_vcs
            )
            if model.breakdown(config).bits_per_node <= budget_bits:
                designs.append(config)
    return designs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget-bits", type=int, default=11_000)
    parser.add_argument("--probe-load", type=float, default=0.70)
    args = parser.parse_args()

    vc_model, fr_model = VCStorageModel(), FRStorageModel()
    vc_designs = enumerate_vc_designs(args.budget_bits)
    fr_designs = enumerate_fr_designs(args.budget_bits)
    print(f"Storage budget: {args.budget_bits} bits per node (f=256-bit flits)\n")

    print("Virtual-channel designs within budget:")
    for config in vc_designs:
        bits = vc_model.breakdown(config).bits_per_node
        bandwidth = vc_bandwidth(config, packet_length=5).bits_per_data_flit
        print(
            f"  {config.name:6} v={config.num_vcs} bpv={config.buffers_per_vc}"
            f"  storage {bits:>6} bits  bandwidth {bandwidth:.1f} bits/flit"
        )
    print("Flit-reservation designs within budget:")
    for config in fr_designs:
        bits = fr_model.breakdown(config).bits_per_node
        bandwidth = fr_bandwidth(config, packet_length=5).bits_per_data_flit
        print(
            f"  {config.name:6} v_c={config.control_vcs} b_d={config.data_buffers_per_input}"
            f"  storage {bits:>6} bits  bandwidth {bandwidth:.1f} bits/flit"
        )

    best_vc = max(vc_designs, key=lambda c: c.buffers_per_input)
    best_fr = max(fr_designs, key=lambda c: c.data_buffers_per_input)
    print(
        f"\nSimulating the largest designs at {args.probe_load:.0%} offered load"
        " (uniform traffic, 5-flit packets)..."
    )
    vc_accepted = measure_throughput(best_vc, args.probe_load, preset="quick", seed=1)
    fr_accepted = measure_throughput(best_fr, args.probe_load, preset="quick", seed=1)
    print(f"  {best_vc.name}: accepted {vc_accepted:.3f} of capacity")
    print(f"  {best_fr.name}: accepted {fr_accepted:.3f} of capacity")
    winner = best_fr.name if fr_accepted > vc_accepted else best_vc.name
    print(f"\nAt this budget, {winner} delivers more of the offered load --")
    print("the Table 1 pairing logic, automated.")


if __name__ == "__main__":
    main()
