"""Setuptools shim so editable installs work on offline hosts without the
``wheel`` package (pip's legacy ``--no-use-pep517`` path needs a setup.py).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
