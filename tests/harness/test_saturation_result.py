"""Tests for the SaturationResult value object."""

from repro.harness.saturation import SaturationResult


class TestSaturationResult:
    def test_saturation_is_max_of_knee_and_plateau(self):
        result = SaturationResult("VC8", 5, knee=0.62, plateau=0.65)
        assert result.saturation == 0.65
        result = SaturationResult("VC8", 5, knee=0.70, plateau=0.66)
        assert result.saturation == 0.70

    def test_probes_default_empty(self):
        result = SaturationResult("FR6", 5, knee=0.5, plateau=0.5)
        assert result.probes == []
