"""Tests for the table generators and the CLI front end."""

import pytest

from repro.harness.runner import main
from repro.harness.tables import (
    fast_control_configs,
    format_table1,
    format_table2,
    leading_control_configs,
    table1,
    table2,
)


class TestTable1:
    def test_totals_match_paper(self):
        rows = table1()
        assert rows["VC8"]["bits_per_node"] == 10452
        assert rows["VC16"]["bits_per_node"] == 21040
        assert rows["VC32"]["bits_per_node"] == 42352
        assert rows["FR6"]["bits_per_node"] == 10762

    def test_format(self):
        text = format_table1(table1())
        assert "Table 1" in text
        assert "10452" in text
        assert "FR6" in text


class TestTable2:
    def test_fr_minus_vc_is_five_bits(self):
        rows = table2(packet_length=5)
        assert rows["FR6"]["bits_per_data_flit"] - rows["VC8"][
            "bits_per_data_flit"
        ] == pytest.approx(5.0)

    def test_format(self):
        text = format_table2(table2())
        assert "Table 2" in text
        assert "arrival_times" in text


class TestConfigLists:
    def test_fast_control_has_five_configs(self):
        names = [c.name for c in fast_control_configs()]
        assert names == ["FR6", "FR13", "VC8", "VC16", "VC32"]

    def test_leading_control_uses_unit_links(self):
        for config in leading_control_configs(lead=1):
            assert config.data_link_delay == 1


class TestRunnerCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "10452" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_point(self, capsys):
        assert main(["--preset", "quick", "point", "VC8", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "VC8" in out and "load=0.20" in out

    def test_unknown_config(self):
        with pytest.raises(SystemExit):
            main(["point", "XYZ", "0.2"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
