"""CLI tests for `frfc attribute` and the --attribution-out plumbing."""

from __future__ import annotations

import json

import pytest

from repro.harness import runner
from repro.obs.report import validate_attribution


class TestAttributeCommand:
    def test_attribute_versus_prints_table_and_writes_json(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert (
            runner.main(
                [
                    "--preset",
                    "quick",
                    "attribute",
                    "FR6",
                    "0.3",
                    "--versus",
                    "VC8",
                    "--attribution-out",
                    "attribution.json",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # One summary line per config, then the side-by-side table.
        assert "FR6 load=0.30" in out and "VC8 load=0.30" in out
        assert "reservation_wait" in out and "turnaround_stall" in out
        assert "total" in out
        payload = json.loads((tmp_path / "attribution.json").read_text())
        validate_attribution(payload)
        fr, vc = payload["summaries"]
        assert fr["model"] == "fr" and vc["model"] == "vc"
        # The paper's mechanism, as exported numbers.
        assert fr["components"]["turnaround_stall"]["mean"] == 0
        assert fr["components"]["routing_arbitration"]["mean"] == 0
        assert vc["components"]["turnaround_stall"]["mean"] > 0
        assert vc["components"]["reservation_wait"]["mean"] == 0

    def test_point_attribution_out_adds_artifact(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert (
            runner.main(
                [
                    "--preset",
                    "quick",
                    "point",
                    "FR6",
                    "0.3",
                    "--attribution-out",
                    "pt.json",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "attribution: pt.json" in out
        payload = json.loads((tmp_path / "pt.json").read_text())
        validate_attribution(payload)
        manifest = json.loads((tmp_path / "obs_manifest.json").read_text())
        assert manifest["artifacts"]["attribution"] == "pt.json"

    def test_attribution_out_rejected_on_unrelated_commands(self):
        with pytest.raises(SystemExit, match="attribution-out"):
            runner.main(["--attribution-out", "x.json", "table1"])
