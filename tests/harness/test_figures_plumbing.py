"""Plumbing tests for the figure generators (simulation stubbed out).

The real curves are exercised by the benchmarks; here we verify each figure
function sweeps the right configurations with the right parameters, without
paying for simulations.
"""

import math

import pytest

from repro.harness import figures
from repro.harness.experiment import ExperimentResult
from repro.harness.sweep import LoadSweepResult


def fake_point(config_name, load, packet_length):
    return ExperimentResult(
        config_name=config_name,
        offered_load=load,
        injection_rate=0.01,
        packet_length=packet_length,
        seed=1,
        accepted_load=load,
        mean_latency=30.0 + 100 * load,
        latency_ci_halfwidth=0.5,
        p95_latency=40.0,
        packets_measured=100,
        cycles_simulated=1_000,
        warmup_cycles=500,
        saturated=False,
    )


@pytest.fixture
def capture(monkeypatch):
    calls = []

    def fake_sweep(config, loads, packet_length=5, seed=1, preset="standard", **kwargs):
        calls.append((config, tuple(loads), packet_length))
        sweep = LoadSweepResult(config_name=config.name, packet_length=packet_length)
        sweep.points = [fake_point(config.name, load, packet_length) for load in loads]
        return sweep

    monkeypatch.setattr(figures, "run_load_sweep", fake_sweep)
    return calls


class TestFigurePlumbing:
    def test_figure5_sweeps_four_configs(self, capture):
        result = figures.figure5(loads=[0.1, 0.5])
        assert [c.config_name for c in result.curves] == ["VC8", "VC16", "FR6", "FR13"]
        assert all(packet_length == 5 for _, _, packet_length in capture)

    def test_figure6_uses_21_flit_packets(self, capture):
        figures.figure6(loads=[0.1])
        assert all(packet_length == 21 for _, _, packet_length in capture)

    def test_figure7_sweeps_horizons(self, capture):
        result = figures.figure7(loads=[0.1], horizons=(16, 64))
        assert [c.config_name for c in result.curves] == ["FR6/s=16", "FR6/s=64"]
        horizons = [config.scheduling_horizon for config, _, _ in capture]
        assert horizons == [16, 64]

    def test_figure8_sweeps_leads_on_unit_links(self, capture):
        result = figures.figure8(loads=[0.1], leads=(1, 4))
        assert [c.config_name for c in result.curves] == ["FR6/lead=1", "FR6/lead=4"]
        for config, _, _ in capture:
            assert config.data_link_delay == 1
        assert [c.injection_lead for c, _, _ in capture] == [1, 4]

    def test_figure9_compares_fr_lead1_with_unit_vc(self, capture):
        result = figures.figure9(loads=[0.1])
        names = [c.config_name for c in result.curves]
        assert names == ["FR6/lead=1", "VC8", "VC16"]
        vc_configs = [c for c, _, _ in capture if c.name.startswith("VC")]
        assert all(c.data_link_delay == 1 for c in vc_configs)

    def test_figure_result_lookup_and_format(self, capture):
        result = figures.figure5(loads=[0.1])
        assert result.curve("FR6").config_name == "FR6"
        with pytest.raises(KeyError):
            result.curve("nope")
        text = result.format()
        assert "Figure 5" in text and "FR13" in text
