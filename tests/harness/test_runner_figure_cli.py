"""CLI tests for the figure/saturate/occupancy subcommands (stubbed sims)."""

import pytest

from repro.harness import runner
from repro.harness.figures import FigureResult
from repro.harness.saturation import SaturationResult


class TestFigureCommand:
    def test_figure_dispatch(self, monkeypatch, capsys):
        calls = {}

        def fake_figure(preset="standard", seed=1, check_invariants=False):
            calls["args"] = (preset, seed)
            return FigureResult("Figure 5", "stub title")

        monkeypatch.setitem(runner.FIGURES, "5", fake_figure)
        assert runner.main(["--preset", "quick", "--seed", "9", "figure", "5"]) == 0
        assert calls["args"] == ("quick", 9)
        assert "Figure 5" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["figure", "99"])


class TestSaturateCommand:
    def test_saturate_prints_probes(self, monkeypatch, capsys):
        def fake_find(
            config, packet_length=5, seed=1, preset="standard", low=0.3, **kwargs
        ):
            return SaturationResult(
                config_name=config.name,
                packet_length=packet_length,
                knee=0.62,
                plateau=0.64,
                probes=[(0.3, 0.3), (0.62, 0.62), (0.8, 0.64)],
            )

        monkeypatch.setattr(runner, "find_saturation", fake_find)
        assert runner.main(["saturate", "VC8"]) == 0
        out = capsys.readouterr().out
        assert "64% of capacity" in out
        assert "offered 0.300" in out


class TestOverheadParameterisation:
    def test_table1_scales_with_flit_width(self):
        from repro.harness.tables import table1

        narrow = table1(flit_bits=128)
        wide = table1(flit_bits=256)
        assert narrow["FR6"]["data_buffers"] == wide["FR6"]["data_buffers"] / 2
        # Control-side structures do not depend on the data flit width.
        assert narrow["FR6"]["control_buffers"] == wide["FR6"]["control_buffers"]

    def test_table2_scales_with_packet_length(self):
        from repro.harness.tables import table2

        short = table2(packet_length=5)
        long = table2(packet_length=21)
        assert long["VC8"]["destination"] < short["VC8"]["destination"]
        # Arrival-time overhead is per data flit: independent of length.
        assert long["FR6"]["arrival_times"] == short["FR6"]["arrival_times"]
