"""`frfc heatmap` end to end, pinning the paper's spatial story.

One quick 8x8 FR point at saturation is simulated once (module-scoped);
every test below re-reads its ``frfc-heatmap/1`` JSON.  The acceptance
criterion rides on that payload: under XY dimension-ordered routing the
center of the mesh carries more traffic than the rim, so center-mesh
reservation-table occupancy must exceed edge occupancy.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.runner import main
from repro.obs.heatmap import validate_heatmap

SATURATION_LOAD = "0.85"


@pytest.fixture(scope="module")
def saturated(tmp_path_factory):
    """The heatmap JSON of one quick FR6 point at saturation (8x8 mesh)."""
    out = tmp_path_factory.mktemp("heatmap") / "hm.json"
    assert (
        main(
            [
                "--preset", "quick",
                "heatmap", "FR6", SATURATION_LOAD,
                "--metric", "reservation_occupancy",
                "--json-out", str(out),
            ]
        )
        == 0
    )
    return out


def test_payload_validates_and_names_the_run(saturated, capsys):
    payload = json.loads(saturated.read_text())
    validate_heatmap(payload)
    assert payload["mesh"] == {"width": 8, "height": 8}
    assert payload["metrics"]["reservation_occupancy"] == "level"
    assert payload["metrics"]["link_utilization"] == "rate"
    frame = payload["frames"][0]
    assert frame["label"].startswith("FR6 load=0.85")
    # The frame aggregates the measurement window, not warmup.
    assert frame["window"][0] > 0


def test_center_mesh_occupancy_exceeds_edge(saturated):
    """XY contention made visible: the acceptance criterion of the issue."""
    payload = json.loads(saturated.read_text())
    width = payload["mesh"]["width"]
    height = payload["mesh"]["height"]
    grid = payload["frames"][0]["nodes"]["reservation_occupancy"]
    center, edge = [], []
    for node, value in enumerate(grid):
        x, y = node % width, node // width
        if x in (width // 2 - 1, width // 2) and y in (height // 2 - 1, height // 2):
            center.append(value)
        elif x in (0, width - 1) or y in (0, height - 1):
            edge.append(value)
    assert len(center) == 4 and len(edge) == 28
    center_mean = sum(center) / len(center)
    edge_mean = sum(edge) / len(edge)
    assert center_mean > edge_mean, (
        f"center reservation occupancy {center_mean:.2f} does not exceed "
        f"edge {edge_mean:.2f} at saturation"
    )


def test_hotspots_are_interior_at_saturation(saturated):
    payload = json.loads(saturated.read_text())
    spots = payload["frames"][0]["hotspots"]["reservation_occupancy"]["nodes"]
    width = payload["mesh"]["width"]
    assert spots, "no hotspots reported"
    # The single hottest router sits strictly inside the mesh rim.
    hottest = spots[0]
    assert 0 < hottest["x"] < width - 1
    assert 0 < hottest["y"] < width - 1
    assert 0.0 < hottest["share"] <= 1.0


def test_from_rerenders_without_simulating(saturated, capsys):
    assert (
        main(
            [
                "heatmap", "--from", str(saturated),
                "--metric", "reservation_occupancy",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "reservation_occupancy" in out
    assert "hotspots" in out
    # No simulation ran: no experiment summary line.
    assert "accepted=" not in out


def test_svg_export_from_payload(saturated, capsys, tmp_path):
    svg = tmp_path / "hm.svg"
    assert (
        main(
            [
                "heatmap", "--from", str(saturated),
                "--metric", "reservation_occupancy",
                "--svg-out", str(svg),
            ]
        )
        == 0
    )
    text = svg.read_text()
    assert text.startswith("<svg ")
    assert text.count("<rect ") == 1 + 64


def test_unknown_metric_fails_cleanly(saturated):
    with pytest.raises(SystemExit, match="node metrics"):
        main(["heatmap", "--from", str(saturated), "--metric", "nope"])


def test_bad_window_spec_fails_cleanly(saturated):
    with pytest.raises(SystemExit, match="half-open"):
        main(["heatmap", "--from", str(saturated), "--window", "20:10"])
    with pytest.raises(SystemExit, match="A:B"):
        main(["heatmap", "--from", str(saturated), "--window", "abc"])


def test_heatmap_needs_config_or_from():
    with pytest.raises(SystemExit, match="CFG LOAD"):
        main(["heatmap"])


def test_heatmap_out_flag_restricted_to_point_obs_sweep():
    with pytest.raises(SystemExit, match="heatmap-out"):
        main(["--heatmap-out", "x.json", "table1"])
