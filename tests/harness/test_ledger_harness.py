"""Harness-level ledger properties: real simulations replayed from cache.

The contract under test is the headline one from the issue: a warm rerun
against the same store simulates **zero** points and reproduces the cold
results *byte-identically* (canonical JSON of the dataclasses), across all
three flow-control models and several seeds; an interrupted sweep resumes
exactly where it stopped; and an edit to code the model can reach forces
re-simulation while unrelated edits keep hitting.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines.vc.config import VC8
from repro.baselines.wormhole.network import WormholeConfig
from repro.core.config import FR6
from repro.harness.experiment import run_experiment
from repro.harness.presets import MeasurementPreset
from repro.harness.saturation import find_saturation
from repro.harness.sweep import run_load_sweep
from repro.obs.ledger import RunLedger, canonical_json
from repro.topology.mesh import Mesh2D

#: Small enough for CI, long enough to measure real packets on a 4x4 mesh.
TINY = MeasurementPreset(
    name="ledger-test",
    min_warmup=80,
    warmup_window=40,
    max_warmup=200,
    sample_cycles=150,
    drain_cycles=1500,
    throughput_cycles=200,
)

CONFIGS = {
    "FR": FR6,
    "VC": VC8,
    "WH": WormholeConfig(buffers_per_input=8),
}


def _run(config, load, seed, **kwargs):
    return run_experiment(
        config, load, seed=seed, preset=TINY, mesh=Mesh2D(4, 4), **kwargs
    )


def _json(result) -> str:
    return canonical_json(dataclasses.asdict(result))


@pytest.mark.parametrize("model", sorted(CONFIGS))
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_cache_hit_replays_byte_identically(model, seed, tmp_path):
    config = CONFIGS[model]
    ledger = RunLedger(tmp_path / "runs")
    cold = _run(config, 0.2, seed, ledger=ledger)
    assert (ledger.hits, ledger.recorded) == (0, 1)
    warm = _run(config, 0.2, seed, ledger=ledger)
    assert (ledger.hits, ledger.recorded) == (1, 1)  # zero new simulations
    assert _json(warm) == _json(cold)


def test_warm_sweep_simulates_zero_points(tmp_path):
    ledger = RunLedger(tmp_path / "runs")
    loads = [0.2, 0.3]
    cold = run_load_sweep(
        FR6, loads, preset=TINY, mesh=Mesh2D(4, 4), ledger=ledger
    )
    assert cold.cache_hits() == 0 and ledger.recorded == 2
    warm_ledger = RunLedger(tmp_path / "runs")
    warm = run_load_sweep(
        FR6, loads, preset=TINY, mesh=Mesh2D(4, 4), ledger=warm_ledger
    )
    assert warm.cache_hits() == 2
    assert warm_ledger.recorded == 0  # nothing was simulated
    assert warm.format_table() == cold.format_table()
    assert [_json(p) for p in warm.points] == [_json(p) for p in cold.points]
    # The hit points replay the recorded profiler report, so the health
    # table still shows real phase timings.
    assert all(t.profile is not None for t in warm.telemetry)


class _InterruptingLedger(RunLedger):
    """Raises KeyboardInterrupt after recording ``budget`` fresh points."""

    def __init__(self, root, budget: int) -> None:
        super().__init__(root)
        self.budget = budget

    def record_experiment(self, identity, result, obs=None, artifacts=None):
        record = super().record_experiment(identity, result, obs=obs,
                                           artifacts=artifacts)
        self.budget -= 1
        if self.budget <= 0:
            raise KeyboardInterrupt
        return record


@pytest.mark.parametrize("interrupt_after", [1, 2])
def test_interrupted_sweep_resumes_byte_identically(tmp_path, interrupt_after):
    loads = [0.15, 0.2, 0.25]
    reference = run_load_sweep(FR6, loads, preset=TINY, mesh=Mesh2D(4, 4))

    store = tmp_path / "runs"
    with pytest.raises(KeyboardInterrupt):
        run_load_sweep(
            FR6, loads, preset=TINY, mesh=Mesh2D(4, 4),
            ledger=_InterruptingLedger(store, budget=interrupt_after),
        )
    # The interrupted run recorded exactly the points it finished...
    resumed_ledger = RunLedger(store)
    resumed = run_load_sweep(
        FR6, loads, preset=TINY, mesh=Mesh2D(4, 4), ledger=resumed_ledger
    )
    # ...and the rerun replayed those while simulating only the rest.
    assert resumed.cache_hits() == interrupt_after
    assert resumed_ledger.recorded == len(loads) - interrupt_after
    assert [_json(p) for p in resumed.points] == [_json(p) for p in reference.points]


def test_ledger_and_progress_leave_results_bit_identical(tmp_path):
    """The acceptance property: attaching the whole observability stack
    (ledger + progress + profiled session) changes nothing measured."""
    import io

    from repro.obs.progress import ProgressReporter

    bare = run_load_sweep(FR6, [0.2], preset=TINY, mesh=Mesh2D(4, 4))
    observed = run_load_sweep(
        FR6, [0.2], preset=TINY, mesh=Mesh2D(4, 4),
        ledger=RunLedger(tmp_path / "runs"),
        progress=ProgressReporter(stream=io.StringIO()),
    )
    assert [_json(p) for p in observed.points] == [_json(p) for p in bare.points]


def test_code_edit_in_closure_forces_resimulation(tmp_path, monkeypatch):
    store = tmp_path / "runs"
    cold = _run(FR6, 0.2, 1, ledger=RunLedger(store))

    import repro.obs.ledger as ledger_module

    real_source = ledger_module._module_source
    monkeypatch.setattr(
        ledger_module,
        "_module_source",
        lambda module: real_source(module)
        + (b"\n# edit\n" if module == "repro.core.router" else b""),
    )
    edited = RunLedger(store)
    rerun = _run(FR6, 0.2, 1, ledger=edited)
    assert edited.hits == 0 and edited.recorded == 1  # forced re-simulation
    assert _json(rerun) == _json(cold)  # the code didn't actually change


def test_unrelated_code_edit_keeps_hitting(tmp_path, monkeypatch):
    store = tmp_path / "runs"
    _run(FR6, 0.2, 1, ledger=RunLedger(store))

    import repro.obs.ledger as ledger_module

    real_source = ledger_module._module_source
    monkeypatch.setattr(
        ledger_module,
        "_module_source",
        lambda module: real_source(module)
        + (b"\n# edit\n" if module == "repro.baselines.wormhole.network" else b""),
    )
    edited = RunLedger(store)
    _run(FR6, 0.2, 1, ledger=edited)
    assert edited.hits == 1 and edited.recorded == 0


def test_find_saturation_replays_probes(tmp_path):
    store = tmp_path / "runs"
    cold_ledger = RunLedger(store)
    cold = find_saturation(
        FR6, preset=TINY, mesh=Mesh2D(4, 4),
        low=0.3, high=0.9, resolution=0.1, ledger=cold_ledger,
    )
    assert cold_ledger.recorded == len(cold.probes)
    warm_ledger = RunLedger(store)
    warm = find_saturation(
        FR6, preset=TINY, mesh=Mesh2D(4, 4),
        low=0.3, high=0.9, resolution=0.1, ledger=warm_ledger,
    )
    assert warm_ledger.recorded == 0  # the whole bisection replayed
    assert warm_ledger.hits == len(warm.probes)
    assert warm.knee == cold.knee
    assert warm.probes == cold.probes
