"""Tests for measurement presets."""

import pytest

from repro.harness.presets import PRESETS, MeasurementPreset, get_preset


class TestPresets:
    def test_three_fidelities_exist(self):
        assert set(PRESETS) == {"quick", "standard", "paper"}

    def test_paper_preset_matches_methodology(self):
        paper = PRESETS["paper"]
        assert paper.min_warmup >= 10_000  # "a minimum of 10,000 cycles"

    def test_fidelity_ordering(self):
        quick, standard, paper = (
            PRESETS["quick"],
            PRESETS["standard"],
            PRESETS["paper"],
        )
        assert quick.sample_cycles < standard.sample_cycles < paper.sample_cycles
        assert quick.min_warmup < standard.min_warmup < paper.min_warmup

    def test_get_preset_by_name(self):
        assert get_preset("quick") is PRESETS["quick"]

    def test_get_preset_passthrough(self):
        custom = MeasurementPreset(
            name="custom",
            min_warmup=400,
            warmup_window=100,
            max_warmup=1_000,
            sample_cycles=500,
            drain_cycles=2_000,
            throughput_cycles=500,
        )
        assert get_preset(custom) is custom

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            get_preset("turbo")

    def test_validation(self):
        with pytest.raises(ValueError):
            MeasurementPreset(
                name="bad",
                min_warmup=100,
                warmup_window=100,
                max_warmup=1_000,
                sample_cycles=500,
                drain_cycles=2_000,
                throughput_cycles=500,
            )
