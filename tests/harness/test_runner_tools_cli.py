"""CLI tests for the sweep/trace/utilization tool subcommands."""

import pytest

from repro.harness import runner


class TestSweepCommand:
    def test_sweep_prints_curve(self, capsys):
        assert (
            runner.main(
                ["--preset", "quick", "sweep", "FR6", "--loads", "0.1,0.3"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "FR6" in out
        assert "0.10" in out and "0.30" in out


class TestTraceCommand:
    def test_trace_prints_timeline(self, capsys):
        assert runner.main(["trace", "FR6", "--packet", "1", "--cycles", "200"]) == 0
        out = capsys.readouterr().out
        assert "packet 1 timeline:" in out
        assert "data_eject" in out

    def test_trace_covers_vc_configs(self, capsys):
        # The event-bus port made non-FR schemes traceable too.
        assert runner.main(["trace", "VC8", "--packet", "1", "--cycles", "200"]) == 0
        out = capsys.readouterr().out
        assert "packet 1 timeline:" in out
        assert "flit_forward" in out


class TestUtilizationCommand:
    def test_utilization_prints_report(self, capsys):
        assert runner.main(["utilization", "FR6", "0.4", "--cycles", "600"]) == 0
        out = capsys.readouterr().out
        assert "data channel utilization" in out
        assert "hottest channels" in out
