"""CLI tests for the sweep/trace/utilization tool subcommands."""

import pytest

from repro.harness import runner


class TestSweepCommand:
    def test_sweep_prints_curve(self, capsys):
        assert (
            runner.main(
                ["--preset", "quick", "sweep", "FR6", "--loads", "0.1,0.3"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "FR6" in out
        assert "0.10" in out and "0.30" in out


class TestTraceCommand:
    def test_trace_prints_timeline(self, capsys):
        assert runner.main(["trace", "FR6", "--packet", "1", "--cycles", "200"]) == 0
        out = capsys.readouterr().out
        assert "packet 1 timeline:" in out
        assert "data_eject" in out

    def test_trace_covers_vc_configs(self, capsys):
        # The event-bus port made non-FR schemes traceable too.
        assert runner.main(["trace", "VC8", "--packet", "1", "--cycles", "200"]) == 0
        out = capsys.readouterr().out
        assert "packet 1 timeline:" in out
        assert "flit_forward" in out


class TestUtilizationCommand:
    def test_utilization_prints_report(self, capsys):
        assert runner.main(["utilization", "FR6", "0.4", "--cycles", "600"]) == 0
        out = capsys.readouterr().out
        assert "data channel utilization" in out
        assert "hottest channels" in out


class TestBenchCommand:
    """`frfc bench` delegates to tools/bench_gate.py; stub the loader so
    the tests exercise the wrapper, not the multi-second workloads."""

    def _stub_gate(self, monkeypatch):
        calls = []

        class FakeGate:
            @staticmethod
            def main(argv):
                calls.append(list(argv))
                return 0

        monkeypatch.setattr(runner, "_load_bench_gate", lambda: FakeGate)
        return calls

    def test_bench_record_forwards(self, monkeypatch):
        calls = self._stub_gate(monkeypatch)
        assert runner.main(["bench", "record"]) == 0
        assert calls == [["record"]]

    def test_bench_check_forwards_flags(self, monkeypatch):
        calls = self._stub_gate(monkeypatch)
        assert runner.main(["bench", "check", "--min-ratio", "0.5", "--models"]) == 0
        assert calls == [["check", "--min-ratio", "0.5", "--models"]]

    def test_bench_rejects_check_flags_on_record(self, monkeypatch):
        self._stub_gate(monkeypatch)
        with pytest.raises(SystemExit):
            runner.main(["bench", "record", "--models"])

    def test_loader_finds_the_real_tool(self):
        module = runner._load_bench_gate()
        assert callable(module.main)
        assert module.WORKLOAD["config"] == "FR6"


class TestAnalyzeGate:
    """`frfc --analyze` runs the cdg + races + isolation gates up front."""

    def test_gate_passes_and_names_all_three_proofs(self, capsys):
        assert (
            runner.main(
                ["--analyze", "trace", "FR6", "--packet", "1", "--cycles", "200"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "deadlock-free" in out
        assert "race-free" in out
        assert "isolation-certified" in out

    def test_gate_aborts_on_isolation_violation(self, monkeypatch, capsys):
        import repro.analysis
        from repro.analysis.isolation import EntryPointReport, IsolationFinding

        violated = EntryPointReport(
            name="run_experiment[FR]",
            module="repro.harness.experiment",
            function="run_experiment",
            model="FR",
            modules=("repro.harness.experiment",),
            read_only_globals=(),
            traced_draws=0,
            findings=(
                IsolationFinding(
                    category="global-write",
                    path="src/repro/core/fake.py",
                    line=3,
                    qualname="fake.f",
                    detail="a seeded violation",
                ),
            ),
        )
        monkeypatch.setattr(
            repro.analysis, "analyze_entry_points", lambda: [violated]
        )
        with pytest.raises(SystemExit, match="isolation violated"):
            runner.main(
                ["--analyze", "trace", "FR6", "--packet", "1", "--cycles", "200"]
            )
