"""Tests for the experiment driver."""

import pytest

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.network import VCNetwork
from repro.baselines.wormhole.network import WormholeConfig, WormholeNetwork
from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.harness.experiment import build_network, run_experiment
from repro.topology.mesh import Mesh2D


@pytest.fixture
def mesh4():
    return Mesh2D(4, 4)


class TestBuildNetwork:
    def test_dispatch_by_config_type(self, mesh4):
        assert isinstance(build_network(FRConfig(), 0.3, mesh=mesh4), FRNetwork)
        assert isinstance(build_network(VCConfig(), 0.3, mesh=mesh4), VCNetwork)
        assert isinstance(
            build_network(WormholeConfig(), 0.3, mesh=mesh4), WormholeNetwork
        )

    def test_load_to_rate_conversion(self, mesh4):
        network = build_network(VCConfig(), 0.5, packet_length=5, mesh=mesh4)
        expected = 0.5 * mesh4.capacity_flits_per_node() / 5
        assert network.injection_rate == pytest.approx(expected)

    def test_rejects_nonpositive_load(self, mesh4):
        with pytest.raises(ValueError):
            build_network(VCConfig(), 0.0, mesh=mesh4)

    def test_rejects_impossible_rate(self, mesh4):
        with pytest.raises(ValueError, match="more than one packet per cycle"):
            build_network(VCConfig(), 1.2, packet_length=1, mesh=mesh4)

    def test_rejects_unknown_config(self, mesh4):
        with pytest.raises(TypeError):
            build_network(object(), 0.5, mesh=mesh4)


class TestRunExperiment:
    def test_light_load_point(self, mesh4):
        result = run_experiment(
            VCConfig(), 0.2, seed=3, preset="quick", mesh=mesh4
        )
        assert not result.saturated
        assert result.packets_measured > 100
        assert result.accepted_load == pytest.approx(0.2, abs=0.04)
        assert 10 < result.mean_latency < 60
        assert result.p95_latency >= result.mean_latency

    def test_fr_point_has_extras(self, mesh4):
        result = run_experiment(
            FRConfig(), 0.2, seed=3, preset="quick", mesh=mesh4
        )
        assert "bypass_fraction" in result.extras
        assert "mean_data_flit_latency" in result.extras

    def test_oversaturated_point_flagged(self, mesh4):
        """Far beyond saturation the tagged sample cannot drain within the
        quick preset's deadline; the result must say so, not raise."""
        config = VCConfig(num_vcs=1, buffers_per_vc=2)
        result = run_experiment(config, 0.99, seed=3, preset="quick", mesh=mesh4)
        assert result.saturated
        assert result.accepted_load < 0.97

    def test_summary_format(self, mesh4):
        result = run_experiment(VCConfig(), 0.2, seed=3, preset="quick", mesh=mesh4)
        text = result.summary()
        assert "VC8" in text
        assert "load=0.20" in text

    def test_determinism(self, mesh4):
        a = run_experiment(FRConfig(), 0.3, seed=7, preset="quick", mesh=mesh4)
        b = run_experiment(FRConfig(), 0.3, seed=7, preset="quick", mesh=mesh4)
        assert a.mean_latency == b.mean_latency
        assert a.packets_measured == b.packets_measured


class TestStreamingWiring:
    """`streaming=` flows from the harness down to every latency collector."""

    def test_build_network_default_is_exact_mode(self, mesh4):
        network = build_network(FRConfig(), 0.3, mesh=mesh4)
        assert network.latency_stats.streaming is False
        assert network.data_flit_latency.streaming is False

    def test_build_network_streaming_reaches_all_collectors(self, mesh4):
        fr = build_network(FRConfig(), 0.3, mesh=mesh4, streaming=True)
        assert fr.latency_stats.streaming is True
        assert fr.data_flit_latency.streaming is True
        vc = build_network(VCConfig(), 0.3, mesh=mesh4, streaming=True)
        assert vc.latency_stats.streaming is True
        wh = build_network(WormholeConfig(), 0.3, mesh=mesh4, streaming=True)
        assert wh.latency_stats.streaming is True

    def test_streaming_run_reports_finite_percentiles(self, mesh4):
        result = run_experiment(
            FRConfig(data_buffers_per_input=6),
            0.3,
            preset="quick",
            mesh=mesh4,
            streaming=True,
        )
        assert result.packets_measured > 0
        assert result.mean_latency > 0
        assert result.p95_latency >= result.mean_latency * 0.5

    def test_streaming_and_exact_agree_on_the_mean(self, mesh4):
        exact = run_experiment(
            FRConfig(data_buffers_per_input=6), 0.3, preset="quick", mesh=mesh4
        )
        streamed = run_experiment(
            FRConfig(data_buffers_per_input=6),
            0.3,
            preset="quick",
            mesh=mesh4,
            streaming=True,
        )
        assert streamed.mean_latency == pytest.approx(exact.mean_latency)
        assert streamed.packets_measured == exact.packets_measured
