"""Tests for load sweeps and saturation search."""

import pytest

from repro.baselines.vc.config import VCConfig
from repro.core.config import FRConfig
from repro.harness.saturation import find_saturation, measure_throughput
from repro.harness.sweep import run_load_sweep
from repro.topology.mesh import Mesh2D


@pytest.fixture
def mesh4():
    return Mesh2D(4, 4)


class TestSweep:
    def test_latency_monotone_with_load(self, mesh4):
        sweep = run_load_sweep(
            VCConfig(), [0.1, 0.4], seed=3, preset="quick", mesh=mesh4
        )
        latencies = sweep.latencies()
        assert latencies[0] < latencies[1]

    def test_rows_and_format(self, mesh4):
        sweep = run_load_sweep(VCConfig(), [0.2], seed=3, preset="quick", mesh=mesh4)
        rows = sweep.rows()
        assert len(rows) == 1
        offered, accepted, latency = rows[0]
        assert offered == 0.2
        text = sweep.format_table()
        assert "VC8" in text
        assert "0.20" in text

    def test_latency_at_picks_closest(self, mesh4):
        sweep = run_load_sweep(
            VCConfig(), [0.1, 0.4], seed=3, preset="quick", mesh=mesh4
        )
        assert sweep.latency_at(0.45) == sweep.points[1].mean_latency

    def test_stop_when_saturated(self, mesh4):
        config = VCConfig(num_vcs=1, buffers_per_vc=2)
        sweep = run_load_sweep(
            config,
            [0.2, 0.9, 0.95, 0.99],
            seed=3,
            preset="quick",
            mesh=mesh4,
            stop_when_saturated=True,
        )
        # The sweep should have stopped at the first saturated point.
        assert len(sweep.points) < 4
        assert sweep.points[-1].saturated


class TestSaturation:
    def test_measure_throughput_tracks_offered_below_saturation(self, mesh4):
        accepted = measure_throughput(
            FRConfig(), 0.3, seed=3, preset="quick", mesh=mesh4
        )
        assert accepted == pytest.approx(0.3, abs=0.05)

    def test_find_saturation_brackets_the_knee(self, mesh4):
        result = find_saturation(
            VCConfig(num_vcs=1, buffers_per_vc=4),
            seed=3,
            preset="quick",
            mesh=mesh4,
            low=0.2,
            resolution=0.05,
        )
        assert 0.2 <= result.knee < 1.0
        assert result.plateau >= result.knee - 0.05
        assert len(result.probes) >= 3

    def test_unstable_lower_bound_rejected(self, mesh4):
        with pytest.raises(ValueError, match="stable lower bound"):
            find_saturation(
                VCConfig(num_vcs=1, buffers_per_vc=2),
                seed=3,
                preset="quick",
                mesh=mesh4,
                low=0.99,
            )
