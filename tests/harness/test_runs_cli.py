"""The `frfc` CLI surface of the run ledger: --ledger sweeps and `frfc runs`.

One cold attributed-free sweep (two quick FR6 points) is recorded into a
module-scoped store; every test below replays or inspects it, so the CLI
suite pays for simulation exactly once.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.runner import main

LOADS = "0.2,0.3"


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    root = tmp_path_factory.mktemp("ledger") / "runs"
    assert (
        main(["--preset", "quick", "sweep", "FR6", "--loads", LOADS,
              "--ledger", str(root)])
        == 0
    )
    return root


def _sweep(store, capsys, extra=()):
    assert (
        main(["--preset", "quick", "sweep", "FR6", "--loads", LOADS,
              "--ledger", str(store), *extra])
        == 0
    )
    return capsys.readouterr()


def test_warm_sweep_is_all_hits_and_stdout_identical(store, capsys):
    warm_a = _sweep(store, capsys)
    warm_b = _sweep(store, capsys)
    assert warm_a.out == warm_b.out  # byte-identical stdout, warm vs warm
    assert "offered" in warm_a.out and "0.20" in warm_a.out
    assert "2/2 cache hits" in warm_a.err
    assert "sweep health" in warm_a.err  # telemetry goes to stderr only


def test_progress_out_writes_schema_lines(store, capsys, tmp_path):
    jsonl = tmp_path / "progress.jsonl"
    result = _sweep(store, capsys, extra=["--progress-out", str(jsonl)])
    assert "[frfc] FR6 point 1/2" in result.err
    events = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert all(e["schema"] == "frfc-progress/1" for e in events)
    assert [e["event"] for e in events if e["event"] == "end_point"] == [
        "end_point", "end_point",
    ]
    assert all(e["cache_hit"] for e in events if e["event"] == "end_point")


def test_point_replays_from_the_sweeps_store(store, capsys):
    args = ["--preset", "quick", "point", "FR6", "0.2", "--ledger", str(store)]
    assert main(args) == 0
    first = capsys.readouterr()
    assert main(args) == 0
    second = capsys.readouterr()
    assert first.out == second.out
    assert "1/1 cache hits" in second.err


def test_runs_list_show_diff(store, capsys):
    assert main(["runs", "list", "--store", str(store)]) == 0
    listing = capsys.readouterr().out.splitlines()
    experiments = [line for line in listing if "experiment" in line]
    assert len(experiments) == 2
    hashes = [line.split()[0] for line in experiments]

    assert main(["runs", "show", hashes[0], "--store", str(store)]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["schema"] == "frfc-runrecord/1"
    assert record["identity"]["config"]["name"] == "FR6"

    assert main(["runs", "diff", hashes[0], hashes[1], "--store", str(store)]) == 0
    diff = capsys.readouterr().out
    assert "mean_latency" in diff and "delta" in diff


def test_runs_list_kind_filter(store, capsys):
    # Drop a bench-gate record into the experiment store, as the bench gate
    # itself would, then check each filter sees only its own kind.
    from repro.obs.ledger import RunLedger

    ledger = RunLedger(store)
    identity = ledger.bench_identity(
        model="FR",
        workload={"label": "gate", "config": "FR6", "offered_load": 0.2,
                  "preset": "quick", "seed": 1},
    )
    ledger.record_bench(identity, {"cycles": 100})

    assert main(["runs", "list", "--store", str(store)]) == 0
    unfiltered = capsys.readouterr().out.splitlines()
    assert any("bench" in line for line in unfiltered)
    assert any("experiment" in line for line in unfiltered)

    assert main(["runs", "list", "--store", str(store), "--kind", "experiment"]) == 0
    experiments = capsys.readouterr().out.splitlines()
    assert len(experiments) == 2
    assert all("experiment" in line for line in experiments)

    assert main(["runs", "list", "--store", str(store), "--kind", "bench"]) == 0
    benches = capsys.readouterr().out.splitlines()
    assert len(benches) == 1 and "bench" in benches[0]

    assert main(["runs", "list", "--store", str(store), "--kind", "throughput"]) == 0
    assert "no throughput records" in capsys.readouterr().out

    with pytest.raises(SystemExit, match="list"):
        main(["runs", "gc", "--store", str(store), "--kind", "bench"])


def test_runs_rejects_unknown_and_ambiguous_prefixes(store):
    with pytest.raises(SystemExit, match="no run record"):
        main(["runs", "show", "zzzz", "--store", str(store)])
    with pytest.raises(SystemExit, match="ambiguous"):
        main(["runs", "show", "", "--store", str(store)])


def test_runs_gc_all_empties_the_store(store, capsys):
    # Runs last in the module (alphabetical luck is not relied on: the store
    # fixture is module-scoped but this test only needs *some* records).
    assert main(["runs", "gc", "--store", str(store)]) == 0
    assert "evicted 0" in capsys.readouterr().out  # same checkout: all current
    assert main(["runs", "gc", "--all", "--store", str(store)]) == 0
    assert "kept 0" in capsys.readouterr().out
    assert main(["runs", "list", "--store", str(store)]) == 0
    assert "no run records" in capsys.readouterr().out
