"""Plumbing tests for the Table 3 generator (simulation stubbed out)."""

import pytest

from repro.harness import tables
from repro.harness.experiment import ExperimentResult
from repro.harness.saturation import SaturationResult


@pytest.fixture
def stubbed(monkeypatch):
    experiments = []
    saturations = []

    def fake_run(config, load, packet_length=5, seed=1, preset="standard", **kwargs):
        experiments.append((config.name, load, packet_length))
        return ExperimentResult(
            config_name=config.name,
            offered_load=load,
            injection_rate=0.01,
            packet_length=packet_length,
            seed=seed,
            accepted_load=load,
            mean_latency=30.0 if load < 0.1 else 40.0,
            latency_ci_halfwidth=0.2,
            p95_latency=50.0,
            packets_measured=100,
            cycles_simulated=1_000,
            warmup_cycles=500,
            saturated=False,
        )

    def fake_saturation(config, packet_length=5, seed=1, preset="standard", **kwargs):
        saturations.append((config.name, packet_length))
        return SaturationResult(
            config_name=config.name,
            packet_length=packet_length,
            knee=0.7,
            plateau=0.72,
            probes=[(0.3, 0.3), (0.7, 0.7)],
        )

    monkeypatch.setattr(tables, "run_experiment", fake_run)
    monkeypatch.setattr(tables, "find_saturation", fake_saturation)
    return experiments, saturations


class TestTable3Plumbing:
    def test_all_rows_present(self, stubbed):
        result = tables.table3(packet_lengths=(5, 21), include_leading=True)
        fast_rows = [r for r in result.rows if r.regime == "fast"]
        leading_rows = [r for r in result.rows if r.regime == "leading"]
        assert len(fast_rows) == 10  # 5 configs x 2 packet lengths
        assert len(leading_rows) == 5  # 5 configs, 5-flit only

    def test_row_lookup(self, stubbed):
        result = tables.table3(packet_lengths=(5,), include_leading=False)
        row = result.find("fast", "FR6", 5)
        assert row.base_latency == 30.0
        assert row.latency_at_50pct == 40.0
        assert row.saturation == pytest.approx(0.72)
        with pytest.raises(KeyError):
            result.find("fast", "FR6", 21)

    def test_each_row_runs_base_mid_and_saturation(self, stubbed):
        experiments, saturations = stubbed
        tables.table3(packet_lengths=(5,), include_leading=False)
        # 5 configs x (base + 50%) experiments, and one saturation each.
        assert len(experiments) == 10
        assert len(saturations) == 5
        loads = {load for _, load, _ in experiments}
        assert loads == {0.05, 0.50}

    def test_format_contains_all_configs(self, stubbed):
        result = tables.table3(packet_lengths=(5,), include_leading=False)
        text = result.format()
        for name in ("FR6", "FR13", "VC8", "VC16", "VC32"):
            assert name in text
