"""Regression of the storage model against the paper's Table 1."""

import pytest

from repro.baselines.vc.config import VC8, VC16, VC32
from repro.core.config import FR6, FR13
from repro.overhead.storage import (
    FRStorageModel,
    PAPER_TABLE1,
    VCStorageModel,
    ceil_log2,
)


class TestCeilLog2:
    @pytest.mark.parametrize(
        "value,expected",
        [(1, 1), (2, 1), (3, 2), (4, 2), (6, 3), (8, 3), (13, 4), (32, 5), (33, 6)],
    )
    def test_values(self, value, expected):
        assert ceil_log2(value) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)


class TestVCColumns:
    """Every VC cell of Table 1 must match exactly."""

    @pytest.mark.parametrize(
        "config,data,pointers,table,total,flits",
        [
            (VC8, 10360, 60, 32, 10452, 8.17),
            (VC16, 20800, 160, 80, 21040, 16.44),
            (VC32, 41760, 400, 192, 42352, 33.09),
        ],
    )
    def test_cells(self, config, data, pointers, table, total, flits):
        breakdown = VCStorageModel().breakdown(config)
        assert breakdown.data_buffers == data
        assert breakdown.queue_pointers == pointers
        assert breakdown.output_reservation_table == table
        assert breakdown.bits_per_node == total
        assert breakdown.flits_per_input_channel == pytest.approx(flits, abs=0.01)


class TestFRColumns:
    def test_fr6_cells_exact(self):
        breakdown = FRStorageModel().breakdown(FR6)
        assert breakdown.data_buffers == 7680
        assert breakdown.control_buffers == 240
        assert breakdown.queue_pointers == 60
        assert breakdown.output_reservation_table == 512
        assert breakdown.input_reservation_table == 2270
        assert breakdown.bits_per_node == 10762
        assert breakdown.flits_per_input_channel == pytest.approx(8.40, abs=0.01)

    def test_fr13_cells_follow_formula(self):
        """All FR13 cells match the paper except the input reservation table,
        whose printed value (1980) contradicts the paper's own general
        formula; we follow the formula (2620 bits) -- see the module
        docstring of repro.overhead.storage."""
        breakdown = FRStorageModel().breakdown(FR13)
        assert breakdown.data_buffers == 16640
        assert breakdown.control_buffers == 540
        assert breakdown.queue_pointers == 160
        assert breakdown.output_reservation_table == 640
        assert breakdown.input_reservation_table == 2620
        assert breakdown.bits_per_node == 20600

    def test_paper_reference_values_recorded(self):
        assert PAPER_TABLE1["FR13"]["bits_per_node"] == 19960


class TestStoragePairing:
    def test_fr6_matches_vc8_storage(self):
        """The experimental pairing: FR6 within ~3% of VC8's storage."""
        vc8 = VCStorageModel().breakdown(VC8).bits_per_node
        fr6 = FRStorageModel().breakdown(FR6).bits_per_node
        assert abs(fr6 - vc8) / vc8 < 0.035

    def test_fr13_matches_vc16_storage(self):
        vc16 = VCStorageModel().breakdown(VC16).bits_per_node
        fr13 = FRStorageModel().breakdown(FR13).bits_per_node
        assert abs(fr13 - vc16) / vc16 < 0.05

    def test_fr_data_buffers_are_pure_payload(self):
        breakdown = FRStorageModel(flit_bits=256).breakdown(FR6)
        assert breakdown.data_buffers == 256 * 6 * 5
