"""Regression of the bandwidth model against the paper's Table 2."""

import pytest

from repro.baselines.vc.config import VC8, VC16
from repro.core.config import FR6, FR13, FRConfig
from repro.overhead.bandwidth import (
    fr_bandwidth,
    fr_extra_bandwidth_fraction,
    vc_bandwidth,
)


class TestVCBandwidth:
    def test_formula(self):
        overhead = vc_bandwidth(VC8, packet_length=5, destination_bits=6)
        assert overhead.destination == pytest.approx(6 / 5)
        assert overhead.vcid == 1  # log2 of 2 VCs
        assert overhead.arrival_times == 0

    def test_vcid_grows_with_vcs(self):
        assert vc_bandwidth(VC16, 5).vcid == 2


class TestFRBandwidth:
    def test_formula_d1(self):
        overhead = fr_bandwidth(FR6, packet_length=5, destination_bits=6)
        assert overhead.destination == pytest.approx(6 / 5)
        # 5 control flits for 5 data flits, 1-bit VCID each, over 5 flits.
        assert overhead.vcid == pytest.approx(1.0)
        assert overhead.arrival_times == 5  # log2 of the 32-cycle horizon

    def test_five_extra_bits_vs_vc(self):
        """The paper: FR incurs 5 more bits per flit than VC (the arrival
        time stamp), about 2% of a 256-bit flit."""
        fr = fr_bandwidth(FR6, 5)
        vc = vc_bandwidth(VC8, 5)
        assert fr.bits_per_data_flit - vc.bits_per_data_flit == pytest.approx(5.0)
        extra = fr_extra_bandwidth_fraction(FR6, VC8, 5)
        assert extra == pytest.approx(5 / 256)

    def test_fr13_vs_vc16_also_five_bits(self):
        extra = fr_extra_bandwidth_fraction(FR13, VC16, 5)
        assert extra == pytest.approx(5 / 256)

    def test_wide_control_amortises_vcid(self):
        """With d=4 a 5-flit packet needs 2 control flits, not 5, so the
        VCID overhead per data flit shrinks (Section 5's discussion)."""
        narrow = fr_bandwidth(FRConfig(data_flits_per_control=1), 5)
        wide = fr_bandwidth(FRConfig(data_flits_per_control=4), 5)
        assert wide.vcid < narrow.vcid

    def test_longer_packets_amortise_destination(self):
        short = fr_bandwidth(FR6, 5)
        long = fr_bandwidth(FR6, 21)
        assert long.destination < short.destination

    def test_fraction_of_flit(self):
        overhead = fr_bandwidth(FR6, 5)
        assert overhead.fraction_of_flit(256) == pytest.approx(
            overhead.bits_per_data_flit / 256
        )
