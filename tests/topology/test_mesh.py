"""Tests for the 2-D mesh topology."""

import pytest

from repro.topology.mesh import (
    EAST,
    NORTH,
    SOUTH,
    WEST,
    Mesh2D,
    opposite_port,
)


class TestConstruction:
    def test_rejects_degenerate_mesh(self):
        with pytest.raises(ValueError):
            Mesh2D(1, 8)

    def test_node_count(self, mesh8):
        assert mesh8.num_nodes == 64

    def test_rectangular(self):
        mesh = Mesh2D(4, 2)
        assert mesh.num_nodes == 8


class TestCoordinates:
    def test_round_trip(self, mesh8):
        for node in mesh8.nodes():
            x, y = mesh8.coordinates(node)
            assert mesh8.node_at(x, y) == node

    def test_row_major_layout(self, mesh8):
        assert mesh8.coordinates(0) == (0, 0)
        assert mesh8.coordinates(7) == (7, 0)
        assert mesh8.coordinates(8) == (0, 1)
        assert mesh8.coordinates(63) == (7, 7)

    def test_out_of_range_node(self, mesh8):
        with pytest.raises(ValueError):
            mesh8.coordinates(64)

    def test_out_of_range_coordinate(self, mesh8):
        with pytest.raises(ValueError):
            mesh8.node_at(8, 0)


class TestNeighbors:
    def test_interior_node_has_four_neighbors(self, mesh8):
        node = mesh8.node_at(3, 3)
        assert mesh8.neighbor(node, NORTH) == mesh8.node_at(3, 2)
        assert mesh8.neighbor(node, SOUTH) == mesh8.node_at(3, 4)
        assert mesh8.neighbor(node, EAST) == mesh8.node_at(4, 3)
        assert mesh8.neighbor(node, WEST) == mesh8.node_at(2, 3)

    def test_corner_has_two_neighbors(self, mesh8):
        assert mesh8.neighbor(0, NORTH) is None
        assert mesh8.neighbor(0, WEST) is None
        assert mesh8.neighbor(0, EAST) == 1
        assert mesh8.neighbor(0, SOUTH) == 8
        assert sorted(mesh8.mesh_ports(0)) == sorted([EAST, SOUTH])

    def test_neighbor_symmetry(self, mesh4):
        for node in mesh4.nodes():
            for port in mesh4.mesh_ports(node):
                neighbor = mesh4.neighbor(node, port)
                assert mesh4.neighbor(neighbor, opposite_port(port)) == node

    def test_invalid_port(self, mesh8):
        with pytest.raises(ValueError):
            mesh8.neighbor(0, 4)


class TestOppositePort:
    def test_all_pairs(self):
        assert opposite_port(NORTH) == SOUTH
        assert opposite_port(SOUTH) == NORTH
        assert opposite_port(EAST) == WEST
        assert opposite_port(WEST) == EAST


class TestMetrics:
    def test_hop_distance(self, mesh8):
        assert mesh8.hop_distance(0, 0) == 0
        assert mesh8.hop_distance(0, 63) == 14
        assert mesh8.hop_distance(mesh8.node_at(2, 3), mesh8.node_at(5, 1)) == 5

    def test_mean_hop_distance_8x8(self, mesh8):
        """Exact mean for uniform dest != src traffic on 8x8: 5.25 * 64/63."""
        expected = (2 * 63 / 24) * 64 / 63
        assert mesh8.mean_hop_distance() == pytest.approx(expected)

    def test_mean_hop_distance_brute_force(self, mesh4):
        total = 0
        pairs = 0
        for src in mesh4.nodes():
            for dst in mesh4.nodes():
                if src != dst:
                    total += mesh4.hop_distance(src, dst)
                    pairs += 1
        assert mesh4.mean_hop_distance() == pytest.approx(total / pairs)

    def test_bisection_channels(self, mesh8):
        assert mesh8.bisection_channels() == 8

    def test_capacity_8x8(self, mesh8):
        """Roughly 4/k = 0.5 flits/node/cycle, with the dest != src correction."""
        assert mesh8.capacity_flits_per_node() == pytest.approx(0.4921875)

    def test_capacity_brute_force(self, mesh4):
        """Check the capacity formula against a direct pair count."""
        n = mesh4.num_nodes
        near = 2 * 4  # left half of a 4x4
        crossing = 2 * near * (n - near)
        p_cross = crossing / (n * (n - 1))
        per_channel = (n * p_cross / 2) / mesh4.bisection_channels()
        assert mesh4.capacity_flits_per_node() == pytest.approx(1 / per_channel)
