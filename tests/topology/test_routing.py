"""Tests for dimension-ordered routing."""

import pytest

from repro.topology.mesh import EAST, EJECT, NORTH, SOUTH, WEST, Mesh2D
from repro.topology.routing import (
    DimensionOrderRouting,
    RoutingLoopError,
    route_path,
)


@pytest.fixture
def routing8(mesh8):
    return DimensionOrderRouting(mesh8)


class TestOutputPort:
    def test_eject_at_destination(self, mesh8, routing8):
        for node in [0, 17, 63]:
            assert routing8.output_port(node, node) == EJECT

    def test_x_before_y(self, mesh8, routing8):
        src = mesh8.node_at(1, 1)
        dst = mesh8.node_at(4, 6)
        assert routing8.output_port(src, dst) == EAST

    def test_y_after_x_aligned(self, mesh8, routing8):
        src = mesh8.node_at(4, 1)
        dst = mesh8.node_at(4, 6)
        assert routing8.output_port(src, dst) == SOUTH

    def test_west_and_north(self, mesh8, routing8):
        src = mesh8.node_at(5, 5)
        assert routing8.output_port(src, mesh8.node_at(2, 5)) == WEST
        assert routing8.output_port(src, mesh8.node_at(5, 2)) == NORTH


class TestPaths:
    def test_path_length_is_hop_distance(self, mesh8, routing8):
        for src, dst in [(0, 63), (7, 56), (20, 43)]:
            path = route_path(routing8, mesh8, src, dst)
            assert len(path) - 1 == mesh8.hop_distance(src, dst)

    def test_all_pairs_reach_destination(self, mesh4):
        routing = DimensionOrderRouting(mesh4)
        for src in mesh4.nodes():
            for dst in mesh4.nodes():
                if src == dst:
                    continue
                path = route_path(routing, mesh4, src, dst)
                assert path[0] == src
                assert path[-1] == dst
                assert len(path) - 1 == mesh4.hop_distance(src, dst)

    def test_paths_turn_at_most_once(self, mesh8, routing8):
        """XY routing has a single EW->NS turn and never goes NS->EW."""
        path = route_path(routing8, mesh8, mesh8.node_at(1, 6), mesh8.node_at(6, 1))
        directions = []
        for a, b in zip(path, path[1:]):
            ax, ay = mesh8.coordinates(a)
            bx, by = mesh8.coordinates(b)
            directions.append("x" if ax != bx else "y")
        # All x-moves precede all y-moves.
        assert directions == sorted(directions, key=lambda d: d != "x")


class TestRoutingLoopDetection:
    class BouncingRouting:
        """Sends every non-delivered packet east/west forever."""

        def __init__(self, mesh):
            self.mesh = mesh

        def output_port(self, node, destination):
            if node == destination:
                return EJECT
            return EAST if node % self.mesh.width == 0 else WEST

    def test_revisit_raises_immediately_with_node_cycle(self, mesh4):
        routing = self.BouncingRouting(mesh4)
        with pytest.raises(RoutingLoopError) as excinfo:
            route_path(routing, mesh4, 0, 3)
        error = excinfo.value
        assert error.src == 0
        assert error.dst == 3
        # The cycle closes on the revisited node and names it in the message.
        assert error.cycle[-1] in error.cycle[:-1]
        assert str(error.cycle[-1]) in str(error)

    def test_detection_does_not_wait_for_hop_count_overflow(self, mesh4):
        """The walk raises on the first revisit: the reported cycle is the
        two-node bounce, not a num_nodes-hop trek."""
        routing = self.BouncingRouting(mesh4)
        with pytest.raises(RoutingLoopError) as excinfo:
            route_path(routing, mesh4, 0, 3)
        assert len(excinfo.value.cycle) <= 3


class TestDeadlockFreedom:
    def test_channel_dependency_graph_acyclic(self, mesh4):
        """XY routing's channel dependency graph must be a DAG (Dally-Seitz)."""
        import networkx as nx

        routing = DimensionOrderRouting(mesh4)
        graph = nx.DiGraph()
        for src in mesh4.nodes():
            for dst in mesh4.nodes():
                if src == dst:
                    continue
                path = route_path(routing, mesh4, src, dst)
                channels = list(zip(path, path[1:]))
                for c1, c2 in zip(channels, channels[1:]):
                    graph.add_edge(c1, c2)
        assert nx.is_directed_acyclic_graph(graph)
