"""Tests for FR configuration presets and validation."""

import pytest

from repro.core.config import FR6, FR13, FRConfig


class TestPresets:
    def test_fr6_matches_table1(self):
        assert FR6.data_buffers_per_input == 6
        assert FR6.control_vcs == 2
        assert FR6.control_buffers_per_input == 6
        assert FR6.scheduling_horizon == 32
        assert FR6.data_flits_per_control == 1
        assert FR6.name == "FR6"

    def test_fr13_matches_table1(self):
        assert FR13.data_buffers_per_input == 13
        assert FR13.control_vcs == 4
        assert FR13.control_buffers_per_input == 12
        assert FR13.name == "FR13"

    def test_fast_control_wire_ratio(self):
        """Control/credit wires are 4x faster than data wires."""
        assert FR6.data_link_delay == 4 * FR6.control_link_delay
        assert FR6.credit_link_delay == 1

    def test_two_control_flits_per_cycle(self):
        assert FR6.control_flits_per_cycle == 2


class TestVariants:
    def test_leading_control(self):
        leading = FR6.with_leading_control(lead=4)
        assert leading.data_link_delay == 1
        assert leading.control_link_delay == 1
        assert leading.injection_lead == 4
        assert leading.data_buffers_per_input == FR6.data_buffers_per_input

    def test_with_horizon(self):
        assert FR6.with_horizon(128).scheduling_horizon == 128

    def test_frozen(self):
        with pytest.raises(Exception):
            FR6.data_buffers_per_input = 99  # type: ignore[misc]


class TestValidation:
    def test_horizon_must_cover_link(self):
        with pytest.raises(ValueError):
            FRConfig(scheduling_horizon=4, data_link_delay=4)

    def test_negative_lead(self):
        with pytest.raises(ValueError):
            FRConfig(injection_lead=-1)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            FRConfig(scheduling_policy="eager")

    def test_unknown_allocation(self):
        with pytest.raises(ValueError):
            FRConfig(buffer_allocation="random")

    def test_zero_buffers(self):
        with pytest.raises(ValueError):
            FRConfig(data_buffers_per_input=0)
