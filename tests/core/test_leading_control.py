"""Behavioural tests of the leading-control regime (Section 4.4)."""

import pytest

from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D


def run(config, mesh, cycles=1_200, rate=0.02, seed=4):
    network = FRNetwork(config, mesh=mesh, injection_rate=rate, seed=seed)
    network.set_measure_window(0, cycles)  # per-flit stats need tagged packets
    simulator = Simulator(network)
    simulator.step(cycles)
    network.stop_injection()
    simulator.run_until(
        lambda: not network.packets_in_flight
        and all(ni.queue_length == 0 for ni in network.interfaces),
        deadline=cycles + 20_000,
        check_every=5,
    )
    return network


def spy_injections(monkeypatch):
    """Record creation-to-injection ages of every data flit entering the mesh.

    ``FRRouter`` carries ``__slots__``, so the spy wraps ``inject_data`` at
    the class rather than replacing it per instance.
    """
    from repro.core.router import FRRouter

    observed = []
    original = FRRouter.inject_data

    def spy(self, flit, now):
        observed.append(now - flit.packet.creation_cycle)
        original(self, flit, now)

    monkeypatch.setattr(FRRouter, "inject_data", spy)
    return observed


class TestInjectionLead:
    @pytest.mark.parametrize("lead", [1, 4, 10])
    def test_data_deferred_at_least_lead_cycles(self, mesh4, lead, monkeypatch):
        """Every data flit enters the network at least `lead` cycles after
        its packet was created (the control flit went first)."""
        config = FRConfig(data_buffers_per_input=6).with_leading_control(lead)
        network = FRNetwork(config, mesh=mesh4, injection_rate=0.02, seed=4)
        observed = spy_injections(monkeypatch)
        simulator = Simulator(network)
        simulator.step(800)
        assert observed, "no data flits injected"
        assert min(observed) >= lead

    def test_zero_lead_fast_control_still_defers_one_cycle(self, mesh4, monkeypatch):
        """Even with lead 0 the injection slot is at least one cycle out
        (scheduling takes the cycle)."""
        config = FRConfig(data_buffers_per_input=6)  # fast control, lead 0
        network = FRNetwork(config, mesh=mesh4, injection_rate=0.02, seed=4)
        observed = spy_injections(monkeypatch)
        Simulator(network).step(800)
        assert observed and min(observed) >= 1


class TestLeadLatencyShape:
    def test_large_lead_cuts_data_flit_latency(self, mesh4):
        """Per-flit data latency shrinks toward pure wire time as the
        control lead grows (the paper's 15 -> 6 cycle observation)."""
        small = run(FRConfig(data_buffers_per_input=6).with_leading_control(1), mesh4)
        large = run(FRConfig(data_buffers_per_input=6).with_leading_control(10), mesh4)
        assert large.data_flit_latency.mean < small.data_flit_latency.mean

    def test_bypass_rises_with_lead(self, mesh4):
        small = run(FRConfig(data_buffers_per_input=6).with_leading_control(1), mesh4)
        large = run(FRConfig(data_buffers_per_input=6).with_leading_control(10), mesh4)
        assert large.bypass_fraction() > small.bypass_fraction()

    def test_control_lead_tracker_reports_positive_lead(self, mesh4):
        config = FRConfig(data_buffers_per_input=6).with_leading_control(4)
        network = FRNetwork(
            config, mesh=mesh4, injection_rate=0.05, seed=4, track_control_lead=True
        )
        simulator = Simulator(network)
        simulator.step(2_000)
        assert network.control_lead.count > 100
        assert network.control_lead.mean_lead > 0
