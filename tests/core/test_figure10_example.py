"""Reproduce the paper's Figure 10 buffer-transfer argument.

Allocating a specific buffer at *reservation* time, without knowledge of
future reservations, can leave no single buffer free for a flit's whole
residency: the flit must then be transferred between buffers mid-stay.
Deferring the choice to *arrival* time (the paper's policy) eliminates
transfers, because by then every conflicting departure is known.

The forcing pattern is a reservation made out of arrival order: a flit P
with residency [12, 18) books first and takes buffer 0; a flit Q with
residency [10, 16) books second -- buffer 0 is the lowest buffer free at
cycle 10, so Q takes it, and at cycle 12 P's booking evicts Q to buffer 1.
In arrival order (Q then P) no transfer is needed.
"""

from repro.core.buffer_pool import IntervalBookkeeper


class TestFigure10:
    def test_out_of_order_reservation_forces_transfer(self):
        keeper = IntervalBookkeeper(2)
        keeper.book(12, 18)  # P, reserved first
        keeper.book(10, 16)  # Q, reserved second, arrives earlier
        assert keeper.transfers == 1

    def test_arrival_order_avoids_transfer(self):
        keeper = IntervalBookkeeper(2)
        keeper.book(10, 16)  # Q books in arrival order
        keeper.book(12, 18)  # P
        assert keeper.transfers == 0

    def test_figure_10b_scenario(self):
        """Allocation at arrival (the paper's 10(b)): flits A, B, D, C in
        arrival order share two buffers with no transfers."""
        keeper = IntervalBookkeeper(2)
        keeper.book(8, 12)  # A: holds a buffer until cycle 12
        keeper.book(9, 11)  # B: departs at 11
        keeper.book(12, 14)  # D: arrives at 12, takes A's freed buffer
        keeper.book(13, 15)  # C: arrives at 13, takes the other buffer
        assert keeper.transfers == 0

    def test_cascaded_transfers_counted(self):
        keeper = IntervalBookkeeper(3)
        keeper.book(12, 20)  # takes buffer 0 from 12
        keeper.book(14, 22)  # takes buffer 1 from 14
        keeper.book(10, 18)  # buffer 0 free at 10 -> evicted at 12 -> buffer 1
        # free at 12 -> evicted at 14 -> buffer 2
        assert keeper.transfers == 2
