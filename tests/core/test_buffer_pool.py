"""Tests for the data buffer pool."""

import pytest

from repro.core.buffer_pool import BufferPool, BufferPoolError, IntervalBookkeeper
from repro.core.flits import DataFlit
from repro.traffic.packet import Packet


def make_flit(index=0):
    packet = Packet(1, source=0, destination=1, length=8, creation_cycle=0)
    return DataFlit(packet, index)


class TestBufferPool:
    def test_allocate_release_cycle(self):
        pool = BufferPool(2)
        flit = make_flit()
        index = pool.allocate(flit)
        assert pool.occupied == 1
        assert pool.peek(index) is flit
        assert pool.release(index) is flit
        assert pool.occupied == 0

    def test_overflow_raises(self):
        pool = BufferPool(1)
        pool.allocate(make_flit(0))
        with pytest.raises(BufferPoolError):
            pool.allocate(make_flit(1))

    def test_release_empty_raises(self):
        pool = BufferPool(1)
        with pytest.raises(BufferPoolError):
            pool.release(0)

    def test_freed_buffer_reusable(self):
        pool = BufferPool(1)
        first = pool.allocate(make_flit(0))
        pool.release(first)
        second = pool.allocate(make_flit(1))
        assert second == first

    def test_is_full(self):
        pool = BufferPool(2)
        pool.allocate(make_flit(0))
        assert not pool.is_full
        pool.allocate(make_flit(1))
        assert pool.is_full

    def test_peak_occupancy(self):
        pool = BufferPool(3)
        a = pool.allocate(make_flit(0))
        pool.allocate(make_flit(1))
        pool.release(a)
        assert pool.peak_occupancy == 2

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            BufferPool(0)


class TestIntervalBookkeeper:
    def test_sequential_bookings_no_transfer(self):
        keeper = IntervalBookkeeper(2)
        keeper.book(8, 12)
        keeper.book(9, 11)
        keeper.book(11, 15)
        keeper.book(12, 14)
        assert keeper.transfers == 0

    def test_bypass_needs_no_booking(self):
        keeper = IntervalBookkeeper(1)
        keeper.book(5, 5)
        assert keeper.bookings_made == 0

    def test_overbooking_detected(self):
        keeper = IntervalBookkeeper(1)
        keeper.book(0, 10)
        with pytest.raises(BufferPoolError):
            keeper.book(5, 8)

    def test_prune_drops_past_bookings(self):
        keeper = IntervalBookkeeper(1)
        keeper.book(0, 5)
        keeper.prune(10)
        keeper.book(6, 9)  # would conflict if [0, 5) were still recorded? no --
        # rather: pruning must not break future bookings.
        assert keeper.transfers == 0
