"""Unit tests of the flit-reservation router on a hand-wired two-router rig.

The network-level tests exercise the router statistically; these tests pin
the control plane's per-cycle behaviour on a minimal east-west pair: control
flit processing latency, reservation feedback, advance credits, and control
credit backpressure.
"""

import pytest

from repro.core.config import FRConfig
from repro.core.flits import packet_to_control_flits
from repro.core.router import FRRouter
from repro.sim.link import Link
from repro.sim.rng import DeterministicRng
from repro.topology.mesh import EAST, INJECT, WEST, Mesh2D
from repro.topology.routing import DimensionOrderRouting


class Rig:
    """Two routers on a 2x1 mesh... actually a 2x2 mesh using its top edge."""

    def __init__(self, config=None):
        self.config = config or FRConfig(data_buffers_per_input=4, control_vcs=2)
        mesh = Mesh2D(2, 2)
        routing = DimensionOrderRouting(mesh)
        self.ejected = []
        self.consumed = []
        self.left = FRRouter(
            0, self.config, routing, DeterministicRng(1),
            lambda flit, now: self.ejected.append((0, flit, now)),
            lambda flit, now: self.consumed.append((0, flit, now)),
        )
        self.right = FRRouter(
            1, self.config, routing, DeterministicRng(2),
            lambda flit, now: self.ejected.append((1, flit, now)),
            lambda flit, now: self.consumed.append((1, flit, now)),
        )
        cfg = self.config
        data = Link(cfg.data_link_delay)
        ctrl = Link(cfg.control_link_delay, width=cfg.control_flits_per_cycle)
        adv = Link(cfg.credit_link_delay, width=4)
        ctrl_credit = Link(cfg.credit_link_delay, width=4)
        self.left.connect_output(EAST, data, ctrl, adv, ctrl_credit)
        self.right.connect_input(WEST, data, ctrl, adv, ctrl_credit)
        # NI callbacks on both routers (tests feed the local input directly).
        self.ni_advance_credits = []
        self.ni_control_credits = []
        for router in (self.left, self.right):
            router.ni_advance_credit = lambda now, t: self.ni_advance_credits.append(t)
            router.ni_control_credit = lambda vc: self.ni_control_credits.append(vc)
        self.cycle = 0

    def step(self, cycles=1):
        for _ in range(cycles):
            for router in (self.left, self.right):
                router.control_phase(self.cycle)
            for router in (self.left, self.right):
                router.data_departures(self.cycle)
            for router in (self.left, self.right):
                router.data_arrivals(self.cycle)
            self.cycle += 1

    def make_packet_flits(self, destination=1, length=1):
        from repro.traffic.packet import Packet

        packet = Packet(1, source=0, destination=destination, length=length,
                        creation_cycle=0)
        return packet_to_control_flits(packet, self.config.data_flits_per_control)


class TestControlPipeline:
    def test_control_flit_processed_then_forwarded_next_cycle(self):
        rig = Rig()
        control, _ = rig.make_packet_flits(destination=1, length=1)
        control[0].arrival_times = [2]  # normally set by the NI's scheduling
        rig.left.accept_control_flit(INJECT, 0, control[0], 0)
        rig.step()  # cycle 0: processed (reservation committed)
        assert control[0].fully_scheduled()
        assert control[0].forward_at == 1
        rig.step()  # cycle 1: forwarded onto the control link
        assert not rig.left.ctrl_queues[INJECT][0]
        rig.step()  # cycle 2: arrives and is processed at the right router
        # Destination is node 1, so the right router consumes it.
        assert rig.consumed and rig.consumed[0][0] == 1

    def test_reservation_feedback_fills_input_scheduler(self):
        rig = Rig()
        control, data = rig.make_packet_flits(destination=1, length=1)
        control[0].arrival_times = [3]  # data flit will reach node 0 at cycle 3
        rig.left.accept_control_flit(INJECT, 0, control[0], 0)
        rig.step()  # processing commits the reservation
        scheduler = rig.left.input_sched[INJECT]
        assert 3 in scheduler.expected
        departure, out_port = scheduler.expected[3]
        assert out_port == EAST
        assert departure >= 3

    def test_advance_credit_sent_to_upstream_of_input(self):
        rig = Rig()
        control, _ = rig.make_packet_flits(destination=1, length=1)
        control[0].arrival_times = [5]
        rig.left.accept_control_flit(INJECT, 0, control[0], 0)
        rig.step()
        # The local input's upstream is the NI: it received the departure time.
        assert rig.ni_advance_credits
        assert rig.ni_advance_credits[0] >= 5

    def test_control_credit_returned_on_forward(self):
        rig = Rig()
        control, _ = rig.make_packet_flits(destination=1, length=1)
        control[0].arrival_times = [3]
        rig.left.accept_control_flit(INJECT, 0, control[0], 0)
        rig.step(2)  # process + forward
        assert rig.ni_control_credits == [0]

    def test_downstream_credit_consumed_and_restored(self):
        rig = Rig()
        per_vc = rig.config.control_buffers_per_vc
        control, _ = rig.make_packet_flits(destination=1, length=1)
        control[0].arrival_times = [3]
        rig.left.accept_control_flit(INJECT, 0, control[0], 0)
        rig.step()  # commit consumes one downstream control credit
        assert sum(rig.left.ctrl_credits[EAST]) == 2 * per_vc - 1
        rig.step(6)  # forward, consume at right router, credit returns
        assert sum(rig.left.ctrl_credits[EAST]) == 2 * per_vc

    def test_control_vc_released_after_last_flit(self):
        rig = Rig()
        control, _ = rig.make_packet_flits(destination=1, length=2)
        assert len(control) == 2
        for i, flit in enumerate(control):
            flit.arrival_times = [3 + i]
        rig.left.accept_control_flit(INJECT, 0, control[0], 0)
        rig.left.accept_control_flit(INJECT, 0, control[1], 0)
        rig.step()
        assert any(rig.left.ctrl_vc_owned[EAST])
        rig.step(4)
        assert not any(rig.left.ctrl_vc_owned[EAST])


class TestDataPath:
    def test_data_flit_follows_reservation_end_to_end(self):
        rig = Rig()
        control, data = rig.make_packet_flits(destination=1, length=1)
        control[0].arrival_times = [2]
        rig.left.accept_control_flit(INJECT, 0, control[0], 0)
        rig.step(2)
        departure = None
        # Inject the data flit at its expected arrival cycle (2).
        rig.left.inject_data(data[0], 2)
        rig.step(12)
        ejections = [(node, flit) for node, flit, _ in rig.ejected]
        assert (1, data[0]) in ejections
