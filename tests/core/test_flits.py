"""Tests for control/data flit construction."""

import pytest

from repro.core.flits import packet_to_control_flits
from repro.traffic.packet import Packet


def make_packet(length=5):
    return Packet(1, source=0, destination=9, length=length, creation_cycle=0)


class TestPacketExpansion:
    def test_one_control_flit_per_data_flit_when_d_is_1(self):
        control, data = packet_to_control_flits(make_packet(5), 1)
        assert len(control) == 5
        assert len(data) == 5
        for flit in control:
            assert len(flit.data_flits) == 1

    def test_head_and_last_flags(self):
        control, _ = packet_to_control_flits(make_packet(5), 1)
        assert control[0].is_head
        assert not control[0].is_last
        assert control[-1].is_last
        assert all(not flit.is_head for flit in control[1:])

    def test_single_control_flit_is_head_and_last(self):
        control, _ = packet_to_control_flits(make_packet(1), 1)
        assert len(control) == 1
        assert control[0].is_head and control[0].is_last

    def test_wide_control_flits_group_data(self):
        control, data = packet_to_control_flits(make_packet(5), 4)
        assert len(control) == 2
        assert [len(flit.data_flits) for flit in control] == [4, 1]
        led = [f for flit in control for f in flit.data_flits]
        assert led == data

    def test_exact_multiple(self):
        control, _ = packet_to_control_flits(make_packet(8), 4)
        assert [len(flit.data_flits) for flit in control] == [4, 4]

    def test_data_flit_indices(self):
        _, data = packet_to_control_flits(make_packet(3), 1)
        assert [flit.index for flit in data] == [0, 1, 2]


class TestControlFlitState:
    def test_arrival_times_start_unset(self):
        control, _ = packet_to_control_flits(make_packet(2), 1)
        assert control[0].arrival_times == [-1]
        assert not control[0].fully_scheduled()

    def test_schedule_flags_reset(self):
        control, _ = packet_to_control_flits(make_packet(1), 1)
        flit = control[0]
        # Writers of ``scheduled`` keep the mirror counter in sync.
        flit.scheduled[0] = True
        flit.unscheduled -= 1
        flit.arrival_times[0] = 42
        assert flit.fully_scheduled()
        flit.reset_schedule_flags()
        assert not flit.fully_scheduled()
        assert flit.unscheduled == 1
        assert flit.arrival_times == [42], "arrival times must survive the reset"

    def test_destination_comes_from_packet(self):
        control, _ = packet_to_control_flits(make_packet(1), 1)
        assert control[0].destination == 9
