"""Golden-trace regression tests: exact single-packet latencies.

A single packet crossing an otherwise idle 2x2 mesh has a fully
deterministic schedule; these tests pin it cycle-exact so any change to the
control pipeline, reservation timing, or bypass logic is caught immediately.

Hand trace for the 1-flit fast-control case (node 0 -> node 3, XY route
east-then-south, 4-cycle data wires, 1-cycle control wires):

  cycle 0   packet created; NI schedules injection (slot 1) and injects the
            control flit into router 0's local control input
  cycle 1   data flit enters router 0; router 0 processes the control flit,
            reserves departure at cycle 2 (earliest after scheduling)
  cycle 2   data flit leaves router 0 east; control flit forwards
  cycle 3   router 1 processes the control flit; the data flit arrives at
            cycle 6, so it reserves the same-cycle bypass at 6
  cycle 6   data flit bypasses router 1 straight onto the south link
  cycle 5   (control reached router 3 already and reserved ejection at 10)
  cycle 10  data flit arrives at router 3 and bypasses to ejection

Latency = 10 cycles: one buffered hop at the source, zero-latency bypass
everywhere else -- the advance-scheduling behaviour the paper promises.
"""

import pytest

from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.sim.invariants import InvariantChecker
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D
from repro.traffic.packet import Packet


def single_packet_latency(config, length, checker=None):
    mesh = Mesh2D(2, 2)
    network = FRNetwork(config, mesh=mesh, injection_rate=0.5, seed=1)
    network.stop_injection()
    packet = Packet(1, source=0, destination=3, length=length, creation_cycle=0)
    network.packets_in_flight[1] = packet
    network.interfaces[0].enqueue(packet)
    Simulator(network, checker=checker).run_until(lambda: packet.delivered, deadline=200)
    return packet.latency


class TestGoldenLatencies:
    def test_single_flit_fast_control(self):
        assert single_packet_latency(FRConfig(data_buffers_per_input=4), 1) == 10

    def test_five_flit_fast_control(self):
        """Four extra flits pipeline one per cycle behind the first."""
        assert single_packet_latency(FRConfig(data_buffers_per_input=6), 5) == 15

    def test_five_flit_leading_control_unit_links(self):
        config = FRConfig(data_buffers_per_input=6).with_leading_control(1)
        assert single_packet_latency(config, 5) == 11

    def test_latency_grows_one_cycle_per_extra_flit(self):
        config = FRConfig(data_buffers_per_input=8)
        latencies = [single_packet_latency(config, length) for length in (1, 2, 3)]
        assert latencies[1] - latencies[0] == 1
        assert latencies[2] - latencies[1] == 1

    def test_golden_latencies_unchanged_under_invariant_checker(self):
        """The checker is a pure observer: running sanitized must reproduce
        the pinned latencies cycle-exactly for every golden case."""
        cases = [
            (FRConfig(data_buffers_per_input=4), 1, 10),
            (FRConfig(data_buffers_per_input=6), 5, 15),
            (FRConfig(data_buffers_per_input=6).with_leading_control(1), 5, 11),
        ]
        for config, length, expected in cases:
            assert single_packet_latency(config, length, InvariantChecker()) == expected

    def test_independent_of_seed(self):
        """A lone packet meets no contention, so arbitration draws are moot."""
        mesh = Mesh2D(2, 2)
        results = set()
        for seed in (1, 7, 42):
            network = FRNetwork(
                FRConfig(data_buffers_per_input=4),
                mesh=mesh,
                injection_rate=0.5,
                seed=seed,
            )
            network.stop_injection()
            packet = Packet(1, 0, 3, 1, 0)
            network.packets_in_flight[1] = packet
            network.interfaces[0].enqueue(packet)
            Simulator(network).run_until(lambda: packet.delivered, deadline=200)
            results.add(packet.latency)
        assert results == {10}


class TestInvariantCheckerIsPureObserver:
    """Loaded seeded runs of all three networks produce bit-identical
    end-of-run digests with and without the per-cycle invariant sweep."""

    CYCLES = 200

    def _digest(self, config, check_invariants):
        from repro.analysis.permute import digest_network
        from repro.harness.experiment import build_network

        network = build_network(config, 0.3, packet_length=5, seed=3, mesh=Mesh2D(4, 4))
        network.set_measure_window(0, self.CYCLES)
        checker = InvariantChecker() if check_invariants else None
        Simulator(network, checker=checker).step(self.CYCLES)
        return digest_network(network, self.CYCLES, "golden")

    def _assert_checker_invisible(self, config):
        plain = self._digest(config, check_invariants=False)
        sanitized = self._digest(config, check_invariants=True)
        assert plain.diff_fields(sanitized) == []
        assert plain.hexdigest() == sanitized.hexdigest()
        assert plain.packets_delivered > 0  # guard against a vacuous pass

    def test_fr_run_identical_under_checker(self):
        assert self._assert_checker_invisible(FRConfig()) is None

    def test_vc_run_identical_under_checker(self):
        from repro.baselines.vc.config import VC8

        assert self._assert_checker_invisible(VC8) is None

    def test_wormhole_run_identical_under_checker(self):
        from repro.baselines.wormhole.network import WormholeConfig

        assert self._assert_checker_invisible(WormholeConfig()) is None
