"""Tests of the Section 5 'excess capacity on the control network' argument.

With d=1 the control network carries exactly one control flit per data flit
but injects and processes two per cycle, so even when the data network is
near saturation the control network sees little contention -- the property
that lets control flits race ahead and keep recycling buffers.
"""

import pytest

from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D


def run(config, rate, cycles=1_500, seed=4, mesh=None):
    network = FRNetwork(
        config, mesh=mesh or Mesh2D(4, 4), injection_rate=rate, seed=seed
    )
    simulator = Simulator(network)
    simulator.step(cycles)
    return network


class TestControlFlitAccounting:
    def test_one_control_flit_per_data_flit(self, mesh4):
        """d=1: every data link launch is matched by a control flit launch
        on the corresponding control link (loads are equal, bandwidth is
        double -- footnote 12)."""
        network = run(FRConfig(data_buffers_per_input=6), rate=0.05, mesh=mesh4)
        data_total = 0
        ctrl_total = 0
        for router in network.routers:
            for port in router.connected_outputs:
                data_total += router.data_out_links[port].total_sent
                ctrl_total += router.ctrl_out_links[port].total_sent
        assert data_total > 500
        # In steady state the counts differ only by flits in flight.
        assert ctrl_total == pytest.approx(data_total, rel=0.05)

    def test_wide_control_flits_quarter_the_control_load(self, mesh4):
        """With d=4 and 5-flit packets, 2 control flits lead 5 data flits:
        the control network load drops to ~40% of the data network's."""
        config = FRConfig(data_buffers_per_input=8, data_flits_per_control=4)
        network = run(config, rate=0.04, mesh=mesh4)
        data_total = 0
        ctrl_total = 0
        for router in network.routers:
            for port in router.connected_outputs:
                data_total += router.data_out_links[port].total_sent
                ctrl_total += router.ctrl_out_links[port].total_sent
        ratio = ctrl_total / data_total
        # 2 control flits per 5 data flits = 0.4, plus a few splits.
        assert 0.35 < ratio < 0.55

    def test_control_stalls_rare_at_moderate_load(self, mesh4):
        network = run(FRConfig(data_buffers_per_input=6), rate=0.05, mesh=mesh4)
        processed = sum(
            router.out_tables[p].reservations_made
            for router in network.routers
            for p in range(5)
            if router.out_tables[p] is not None
        )
        stalls = sum(router.schedule_stalls for router in network.routers)
        assert processed > 1_000
        assert stalls / processed < 0.2

    def test_no_splits_with_d1(self, mesh4):
        """The paper's configurations (d=1) never exercise the splitting
        extension."""
        network = run(FRConfig(data_buffers_per_input=6), rate=0.10, mesh=mesh4)
        assert sum(router.splits_performed for router in network.routers) == 0
