"""Tests for the output reservation table."""

import pytest

from repro.core.reservation import OutputReservationTable, ReservationError


def make_table(horizon=32, buffers=4, delay=4, infinite=False):
    return OutputReservationTable(
        horizon, downstream_buffers=buffers, propagation_delay=delay,
        infinite_buffers=infinite,
    )


class TestConstruction:
    def test_rejects_tiny_horizon(self):
        with pytest.raises(ValueError):
            make_table(horizon=1)

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            make_table(buffers=0)

    def test_initial_state_free(self):
        table = make_table()
        for cycle in range(32):
            assert not table.is_busy(cycle)
            assert table.free_buffers_at(cycle) == 4


class TestFindDeparture:
    def test_earliest_is_next_cycle(self):
        table = make_table()
        assert table.find_departure(now=0, earliest=0) == 1

    def test_respects_earliest(self):
        table = make_table()
        assert table.find_departure(now=0, earliest=9) == 9

    def test_skips_busy_slot(self):
        table = make_table()
        table.reserve(0, 5)
        assert table.find_departure(now=0, earliest=5) == 6

    def test_none_when_all_busy(self):
        table = make_table(horizon=4, delay=1)
        for _ in range(3):  # slots now+1 .. now+3
            departure = table.find_departure(now=0, earliest=1)
            table.reserve(0, departure)
        assert table.find_departure(now=0, earliest=1) is None

    def test_none_when_no_buffers(self):
        table = make_table(buffers=1, delay=0)
        table.reserve(0, 1)  # consumes the only downstream buffer from cycle 1 on
        assert table.find_departure(now=0, earliest=1) is None

    def test_buffer_freed_by_credit_enables_slot(self):
        table = make_table(buffers=1, delay=0)
        table.reserve(0, 1)
        table.apply_credit(0, from_cycle=10)
        # Channel free at 2..9 but no buffer until 10.
        assert table.find_departure(now=0, earliest=2) == 10

    def test_hold_to_horizon_semantics(self):
        """A buffer must be free from arrival through the horizon, so a
        mid-window credit gap blocks earlier departures."""
        table = make_table(buffers=1, delay=0)
        table.reserve(0, 5)  # occupied from 5 to horizon
        table.apply_credit(0, from_cycle=20)
        departure = table.find_departure(now=0, earliest=1)
        # Slots 1..4 have a free buffer at arrival but the count drops to
        # zero at 5 before the credit at 20, violating the suffix condition.
        assert departure == 20


class TestReserve:
    def test_marks_busy(self):
        table = make_table()
        table.reserve(0, 7)
        assert table.is_busy(7)

    def test_double_booking_raises(self):
        table = make_table()
        table.reserve(0, 7)
        with pytest.raises(ReservationError):
            table.reserve(0, 7)

    def test_decrements_from_arrival(self):
        table = make_table(buffers=4, delay=4)
        table.reserve(0, 7)
        assert table.free_buffers_at(10) == 4  # before the flit arrives
        assert table.free_buffers_at(11) == 3  # from t_d + t_p on
        assert table.free_buffers_at(31) == 3

    def test_out_of_window_reservation_raises(self):
        table = make_table(horizon=8)
        with pytest.raises(ReservationError):
            table.reserve(0, 100)

    def test_release_restores_state(self):
        table = make_table()
        table.reserve(0, 7)
        table.release(7)
        assert not table.is_busy(7)
        assert table.free_buffers_at(11) == 4

    def test_release_unreserved_raises(self):
        table = make_table()
        with pytest.raises(ReservationError):
            table.release(7)


class TestCredits:
    def test_credit_restores_suffix(self):
        table = make_table(buffers=2, delay=0)
        table.reserve(0, 3)
        table.apply_credit(0, from_cycle=6)
        assert table.free_buffers_at(3) == 1
        assert table.free_buffers_at(5) == 1
        assert table.free_buffers_at(6) == 2

    def test_net_zero_for_bypass(self):
        """Decrement from t and credit from the same t cancel exactly."""
        table = make_table(buffers=2, delay=0)
        table.reserve(0, 4)
        table.apply_credit(0, from_cycle=4)
        for cycle in range(1, 32):
            assert table.free_buffers_at(cycle) == 2

    def test_credit_overflow_detected(self):
        table = make_table(buffers=2, delay=0)
        with pytest.raises(ReservationError):
            table.apply_credit(0, from_cycle=1)

    def test_pending_credit_beyond_window_applies_on_slide(self):
        table = make_table(horizon=8, buffers=1, delay=0)
        table.reserve(0, 3)  # buffer held from 3 to horizon
        table.apply_credit(0, from_cycle=30)  # far beyond the window
        # Inside the current window nothing is free after 3.
        assert table.find_departure(now=0, earliest=4) is None
        # Slide the window past cycle 30: the pending credit matures.
        table.advance(28)
        assert table.free_buffers_at(29) == 0
        assert table.free_buffers_at(30) == 1
        assert table.free_buffers_at(35) == 1


class TestWindowSliding:
    def test_expired_slots_reborn_clear(self):
        table = make_table(horizon=8)
        table.reserve(0, 3)
        table.advance(10)
        # Cycle 3 expired; the slot now represents cycle 11 and must be free.
        assert not table.is_busy(11)

    def test_steady_state_carries_over(self):
        table = make_table(horizon=8, buffers=3, delay=0)
        table.reserve(0, 2)  # one buffer held to the horizon
        table.advance(6)
        # Newly exposed slots inherit the decremented steady state.
        assert table.free_buffers_at(13) == 2

    def test_big_jump_rebuild(self):
        table = make_table(horizon=8, buffers=3, delay=0)
        table.reserve(0, 2)
        table.apply_credit(0, from_cycle=5)
        table.advance(1_000)
        for cycle in range(1_000, 1_008):
            assert not table.is_busy(cycle)
            assert table.free_buffers_at(cycle) == 3

    def test_big_jump_with_pending_credit(self):
        table = make_table(horizon=8, buffers=1, delay=0)
        table.reserve(0, 3)
        table.apply_credit(0, from_cycle=500)
        table.advance(1_000)  # the pending credit matured during the jump
        assert table.free_buffers_at(1_000) == 1

    def test_queries_behind_window_raise(self):
        table = make_table()
        table.advance(100)
        with pytest.raises(ReservationError):
            table.is_busy(50)


class TestInfiniteBuffers:
    def test_only_channel_limits(self):
        table = make_table(infinite=True, delay=0)
        departures = [table.find_departure(0, 1) for _ in range(3)]
        for d in departures[:1]:
            pass
        table2 = make_table(infinite=True, delay=0)
        first = table2.find_departure(0, 1)
        table2.reserve(0, first)
        second = table2.find_departure(0, 1)
        assert (first, second) == (1, 2)

    def test_credits_are_noops(self):
        table = make_table(infinite=True)
        table.apply_credit(0, from_cycle=5)  # must not raise
        assert table.free_buffers_at(5) > 1_000_000
