"""Conservation invariants of the flit-reservation network after a drain.

When every packet has been delivered and the NIs are empty, all transient
state must have returned to rest: free-buffer views back at pool size,
control credits fully restored, no residual reservations, empty pools.
Any leak here (a lost credit, an unmatched reservation) would slowly
strangle a long-running network.
"""

import pytest

from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D, opposite_port


@pytest.fixture(params=["d1", "d4"])
def drained_network(request, mesh4):
    if request.param == "d1":
        config = FRConfig(data_buffers_per_input=6, control_vcs=2)
        rate = 0.08
    else:
        config = FRConfig(
            data_buffers_per_input=5, control_vcs=2, data_flits_per_control=4
        )
        rate = 0.07
    network = FRNetwork(config, mesh=mesh4, injection_rate=rate, seed=9)
    simulator = Simulator(network)
    simulator.step(1_500)
    network.stop_injection()
    simulator.run_until(
        lambda: not network.packets_in_flight
        and all(ni.queue_length == 0 for ni in network.interfaces),
        deadline=40_000,
        check_every=5,
    )
    # A few extra cycles so in-flight credits land.
    simulator.step(20)
    return network, simulator.cycle


class TestConservation:
    def test_all_pools_empty(self, drained_network):
        network, _ = drained_network
        for router in network.routers:
            for scheduler in router.input_sched:
                assert scheduler.occupancy == 0
                assert not scheduler.schedule_list
                assert not scheduler.expected
                assert not scheduler.departures

    def test_free_buffer_views_fully_restored(self, drained_network):
        network, now = drained_network
        pool = network.config.data_buffers_per_input
        for router in network.routers:
            for port in router.connected_outputs:
                table = router.out_tables[port]
                table.advance(now)
                for cycle in range(now, now + network.config.scheduling_horizon):
                    assert table.free_buffers_at(cycle) == pool, (
                        f"node {router.node} port {port} cycle {cycle}"
                    )

    def test_control_credits_fully_restored(self, drained_network):
        network, _ = drained_network
        per_vc = network.config.control_buffers_per_vc
        for router in network.routers:
            for port in router.connected_outputs:
                for vc in range(network.config.control_vcs):
                    assert router.ctrl_credits[port][vc] == per_vc

    def test_control_queues_and_vc_ownership_clear(self, drained_network):
        network, _ = drained_network
        for router in network.routers:
            for queues in router.ctrl_queues:
                assert all(not queue for queue in queues)
            for owned in router.ctrl_vc_owned:
                assert not any(owned)
            for entries in router.route_table:
                assert all(entry is None for entry in entries)

    def test_injection_tables_restored(self, drained_network):
        network, now = drained_network
        pool = network.config.data_buffers_per_input
        for interface in network.interfaces:
            table = interface.injection_table
            table.advance(now)
            for cycle in range(now, now + network.config.scheduling_horizon):
                assert table.free_buffers_at(cycle) == pool
