"""Reproduce the paper's Figure 4 worked scheduling example.

A data flit arrives from the west channel at cycle 9 and must leave east.
The east channel is busy during cycle 10; at cycle 11 the channel is free
but the next node has no free buffer; the flit is therefore scheduled to
depart at cycle 12, the channel is marked busy at 12, and the downstream
free-buffer count is decremented from 12 onward.  (The figure's footnote 5
uses the buffer state at t_d as the state at t_d + t_p, i.e. a zero
propagation delay, which we mirror here.)
"""

import pytest

from repro.core.flits import DataFlit
from repro.core.input_schedule import InputScheduler
from repro.core.reservation import OutputReservationTable
from repro.topology.mesh import EAST
from repro.traffic.packet import Packet


@pytest.fixture
def east_table():
    """The east output reservation table in the state of Figure 4(a)."""
    table = OutputReservationTable(
        horizon=32, downstream_buffers=1, propagation_delay=0
    )
    # An earlier flit departs at cycle 10 (channel busy) and holds the last
    # downstream buffer until it leaves the next node at cycle 12 (credit).
    table.reserve(0, 10)
    table.apply_credit(0, from_cycle=12)
    return table


class TestFigure4OutputScheduling:
    def test_state_matches_figure_4a(self, east_table):
        assert east_table.is_busy(10)
        assert not east_table.is_busy(11)
        assert east_table.free_buffers_at(11) == 0
        assert east_table.free_buffers_at(12) == 1

    def test_flit_scheduled_to_depart_at_12(self, east_table):
        # t_a = 9, so the earliest departure considered is cycle 10.
        departure = east_table.find_departure(now=0, earliest=10)
        assert departure == 12

    def test_updates_match_figure_4b(self, east_table):
        east_table.reserve(0, 12)
        assert east_table.is_busy(12)
        for cycle in range(12, 32):
            assert east_table.free_buffers_at(cycle) == 0
        assert east_table.free_buffers_at(11) == 0  # unchanged from (a)


class TestFigure4InputScheduling:
    def test_flit_movement_follows_the_reservation(self):
        """Figure 4(c)/(d): arrive at 9, buffered, depart east at 12."""
        scheduler = InputScheduler(pool_size=8)
        scheduler.on_reservation(now=0, arrival=9, departure=12, out_port=EAST)
        packet = Packet(1, source=0, destination=1, length=1, creation_cycle=0)
        flit = DataFlit(packet, 0)

        for cycle in range(9):
            # The idle path returns the shared immutable empty-tuple sentinel.
            assert list(scheduler.take_departures(cycle)) == []
        assert scheduler.on_arrival(9, flit) is None  # buffered, not bypassed
        assert scheduler.occupancy == 1

        for cycle in range(9, 12):
            assert list(scheduler.take_departures(cycle)) == []
        departures = scheduler.take_departures(12)
        assert departures == [(flit, EAST)]
        assert scheduler.occupancy == 0
