"""Tests for the input scheduler (input reservation table)."""

import pytest

from repro.core.flits import DataFlit
from repro.core.input_schedule import InputScheduleError, InputScheduler
from repro.topology.mesh import EAST, EJECT, NORTH
from repro.traffic.packet import Packet


def make_flit(index=0):
    packet = Packet(1, source=0, destination=3, length=8, creation_cycle=0)
    return DataFlit(packet, index)


class TestReservations:
    def test_future_reservation_then_arrival_then_departure(self):
        scheduler = InputScheduler(4)
        scheduler.on_reservation(now=0, arrival=5, departure=9, out_port=NORTH)
        flit = make_flit()
        assert scheduler.on_arrival(5, flit) is None
        assert scheduler.take_departures(9) == [(flit, NORTH)]

    def test_bypass_when_departure_equals_arrival(self):
        scheduler = InputScheduler(4)
        scheduler.on_reservation(now=0, arrival=5, departure=5, out_port=EAST)
        flit = make_flit()
        assert scheduler.on_arrival(5, flit) == EAST
        assert scheduler.occupancy == 0
        assert scheduler.flits_bypassed == 1

    def test_early_arrival_goes_to_schedule_list(self):
        """A data flit that catches up with its control flit waits in the
        pool and is linked when the reservation feedback arrives."""
        scheduler = InputScheduler(4)
        flit = make_flit()
        assert scheduler.on_arrival(7, flit) is None
        assert scheduler.early_arrivals == 1
        scheduler.on_reservation(now=8, arrival=7, departure=11, out_port=EAST)
        assert scheduler.take_departures(11) == [(flit, EAST)]

    def test_duplicate_arrival_reservation_rejected(self):
        scheduler = InputScheduler(4)
        scheduler.on_reservation(now=0, arrival=5, departure=7, out_port=EAST)
        with pytest.raises(InputScheduleError):
            scheduler.on_reservation(now=0, arrival=5, departure=9, out_port=EAST)

    def test_past_departure_rejected(self):
        scheduler = InputScheduler(4)
        with pytest.raises(InputScheduleError):
            scheduler.on_reservation(now=10, arrival=12, departure=10, out_port=EAST)

    def test_reservation_for_unknown_early_flit_rejected(self):
        scheduler = InputScheduler(4)
        with pytest.raises(InputScheduleError):
            scheduler.on_reservation(now=10, arrival=5, departure=12, out_port=EAST)

    def test_departure_before_arrival_rejected(self):
        scheduler = InputScheduler(4)
        with pytest.raises(InputScheduleError):
            scheduler.on_reservation(now=0, arrival=9, departure=8, out_port=EAST)


class TestBufferTurnaround:
    def test_buffer_freed_at_t_reusable_at_t(self):
        """The zero-turnaround property: a departure at cycle t frees its
        buffer for an arrival in the same cycle."""
        scheduler = InputScheduler(1)  # a single buffer
        scheduler.on_reservation(now=0, arrival=2, departure=6, out_port=EAST)
        scheduler.on_reservation(now=0, arrival=6, departure=9, out_port=NORTH)
        first, second = make_flit(0), make_flit(1)
        assert scheduler.on_arrival(2, first) is None
        assert scheduler.occupancy == 1
        assert scheduler.take_departures(6) == [(first, EAST)]
        assert scheduler.on_arrival(6, second) is None  # same cycle reuse
        assert scheduler.occupancy == 1
        assert scheduler.take_departures(9) == [(second, NORTH)]

    def test_multiple_departures_same_cycle(self):
        scheduler = InputScheduler(4)
        scheduler.on_reservation(now=0, arrival=2, departure=8, out_port=EAST)
        scheduler.on_reservation(now=0, arrival=3, departure=8, out_port=EJECT)
        a, b = make_flit(0), make_flit(1)
        scheduler.on_arrival(2, a)
        scheduler.on_arrival(3, b)
        departures = scheduler.take_departures(8)
        assert sorted(d[1] for d in departures) == sorted([EAST, EJECT])


class TestDiagnostics:
    def test_counters(self):
        scheduler = InputScheduler(4)
        scheduler.on_reservation(now=0, arrival=1, departure=1, out_port=EAST)
        scheduler.on_reservation(now=0, arrival=2, departure=5, out_port=EAST)
        scheduler.on_arrival(1, make_flit(0))
        scheduler.on_arrival(2, make_flit(1))
        assert scheduler.flits_bypassed == 1
        assert scheduler.flits_buffered == 1
