"""Tests for the control-flit splitting extension (wide control flits).

With d > 1 and per-flit scheduling, a control flit stalled mid-group
forwards its progress as a *split* control flit so the data flits that
already moved ahead can be scheduled onward -- the deadlock-avoidance
extension for the cross-dependency the paper's Section 5 leaves open.
"""

import pytest

from repro.core.config import FRConfig
from repro.core.flits import ControlFlit, packet_to_control_flits
from repro.core.network import FRNetwork
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D
from repro.traffic.packet import Packet


def make_wide_flit(length=4):
    packet = Packet(1, source=0, destination=9, length=length, creation_cycle=0)
    control, _ = packet_to_control_flits(packet, data_flits_per_control=length)
    return control[0]


class TestSplitScheduled:
    def test_split_partitions_the_group(self):
        flit = make_wide_flit(4)
        flit.scheduled = [True, True, False, False]
        flit.arrival_times = [10, 11, -1, -1]
        split = flit.split_scheduled()
        assert [f.index for f in split.data_flits] == [0, 1]
        assert split.arrival_times == [10, 11]
        assert split.fully_scheduled()
        assert [f.index for f in flit.data_flits] == [2, 3]
        assert not any(flit.scheduled)

    def test_split_takes_headness(self):
        flit = make_wide_flit(4)
        flit.scheduled = [True, False, False, False]
        assert flit.is_head
        split = flit.split_scheduled()
        assert split.is_head
        assert not flit.is_head

    def test_is_last_stays_with_residual(self):
        packet = Packet(1, 0, 9, 4, 0)
        control, _ = packet_to_control_flits(packet, 4)
        flit = control[0]
        assert flit.is_last  # single wide flit leads the whole packet
        flit.scheduled = [True, False, True, False]
        split = flit.split_scheduled()
        assert not split.is_last
        assert flit.is_last

    def test_split_is_uncredited_by_default_semantics(self):
        flit = make_wide_flit(2)
        flit.scheduled = [True, False]
        split = flit.split_scheduled()
        # Creation leaves it credited; the router marks staging splits.
        assert split.credited

    def test_cannot_split_unscheduled_or_complete(self):
        flit = make_wide_flit(2)
        with pytest.raises(ValueError):
            flit.split_scheduled()
        flit.scheduled = [True, True]
        with pytest.raises(ValueError):
            flit.split_scheduled()


class TestWideControlUnderLoad:
    def test_heavy_load_no_deadlock_with_splitting(self, mesh4):
        """The configuration that deadlocks without splitting: small pools,
        d=4, sustained load near saturation."""
        config = FRConfig(
            data_buffers_per_input=5, control_vcs=2, data_flits_per_control=4
        )
        network = FRNetwork(config, mesh=mesh4, injection_rate=0.11, seed=7)
        simulator = Simulator(network)
        simulator.step(2_500)
        network.stop_injection()
        simulator.run_until(
            lambda: not network.packets_in_flight
            and all(ni.queue_length == 0 for ni in network.interfaces),
            deadline=40_000,
            check_every=5,
        )
        assert network.packets_delivered > 700
        splits = sum(router.splits_performed for router in network.routers)
        assert splits > 0, "the stress test should actually exercise splitting"

    def test_split_preserves_exact_delivery(self, mesh4):
        config = FRConfig(
            data_buffers_per_input=5, control_vcs=2, data_flits_per_control=4
        )
        network = FRNetwork(config, mesh=mesh4, injection_rate=0.10, seed=3)
        simulator = Simulator(network)
        simulator.step(2_000)
        network.stop_injection()
        simulator.run_until(
            lambda: not network.packets_in_flight
            and all(ni.queue_length == 0 for ni in network.interfaces),
            deadline=40_000,
            check_every=5,
        )
        created = sum(source.packets_created for source in network.sources)
        assert network.packets_delivered == created
