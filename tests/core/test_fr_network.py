"""Integration tests for the flit-reservation network."""

import pytest

from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D


def drain(network, max_cycles=30_000):
    simulator = Simulator(network)
    return simulator, simulator.cycle


def run_traffic(config, mesh, cycles, rate, seed=5, **kwargs):
    network = FRNetwork(
        config, mesh=mesh, injection_rate=rate, seed=seed, **kwargs
    )
    simulator = Simulator(network)
    simulator.step(cycles)
    network.stop_injection()
    simulator.run_until(
        lambda: not network.packets_in_flight
        and all(ni.queue_length == 0 for ni in network.interfaces),
        deadline=cycles + 20_000,
        check_every=5,
    )
    return network, simulator


class TestDelivery:
    def test_all_packets_delivered_exactly_once(self, mesh4, small_fr_config):
        network, _ = run_traffic(small_fr_config, mesh4, cycles=1_500, rate=0.02)
        assert network.packets_delivered > 50
        assert not network.packets_in_flight

    def test_single_packet_end_to_end(self, mesh4, small_fr_config):
        network = FRNetwork(small_fr_config, mesh=mesh4, injection_rate=0.5, seed=1)
        network.stop_injection()
        from repro.traffic.packet import Packet

        packet = Packet(1, source=0, destination=15, length=5, creation_cycle=0)
        network.packets_in_flight[1] = packet
        network.interfaces[0].enqueue(packet)
        simulator = Simulator(network)
        simulator.run_until(lambda: packet.delivered, deadline=500)
        assert packet.flits_delivered == 5

    def test_heavy_load_no_loss(self, mesh4):
        """Near saturation, every injected flit still arrives exactly once
        (the reservation protocol must never drop or duplicate)."""
        config = FRConfig(data_buffers_per_input=4, control_vcs=2)
        network, _ = run_traffic(config, mesh4, cycles=2_000, rate=0.12)
        assert network.packets_delivered > 500
        assert not network.packets_in_flight

    def test_long_packets(self, mesh4, small_fr_config):
        network, _ = run_traffic(
            small_fr_config, mesh4, cycles=1_200, rate=0.008, packet_length=21
        )
        assert network.packets_delivered > 20
        assert not network.packets_in_flight

    def test_single_flit_packets(self, mesh4, small_fr_config):
        network, _ = run_traffic(
            small_fr_config, mesh4, cycles=1_000, rate=0.05, packet_length=1
        )
        assert network.packets_delivered > 100
        assert not network.packets_in_flight


class TestAnonymityOfDataFlits:
    def test_flits_delivered_by_timing_alone(self, mesh4, small_fr_config):
        """The routers never read DataFlit.packet for decisions; if the
        timing tables were wrong, the destination assertion in the ejection
        hook would fire.  This test just confirms it holds under load with
        deterministic permutation traffic (every node sending)."""
        network, _ = run_traffic(
            small_fr_config, mesh4, cycles=1_500, rate=0.06, traffic="bit_complement"
        )
        assert network.packets_delivered > 300


class TestLeadingControl:
    @pytest.mark.parametrize("lead", [1, 2, 4])
    def test_delivery_with_injection_lead(self, mesh4, small_fr_config, lead):
        config = small_fr_config.with_leading_control(lead)
        network, _ = run_traffic(config, mesh4, cycles=1_200, rate=0.04)
        assert network.packets_delivered > 150
        assert not network.packets_in_flight

    def test_larger_lead_does_not_break_horizon(self, mesh4, small_fr_config):
        config = small_fr_config.with_leading_control(10)
        network, _ = run_traffic(config, mesh4, cycles=1_000, rate=0.02)
        assert network.packets_delivered > 50


class TestSchedulingPolicies:
    def test_all_or_nothing_delivers(self, mesh4):
        config = FRConfig(
            data_buffers_per_input=6,
            data_flits_per_control=4,
            scheduling_policy="all_or_nothing",
        )
        network, _ = run_traffic(config, mesh4, cycles=1_200, rate=0.03)
        assert network.packets_delivered > 100
        assert not network.packets_in_flight

    def test_wide_control_flits_deliver(self, mesh4):
        config = FRConfig(data_buffers_per_input=6, data_flits_per_control=4)
        network, _ = run_traffic(config, mesh4, cycles=1_200, rate=0.03)
        assert network.packets_delivered > 100

    def test_at_reservation_allocation_counts_transfers(self, mesh4):
        config = FRConfig(data_buffers_per_input=4, buffer_allocation="at_reservation")
        network, _ = run_traffic(config, mesh4, cycles=1_500, rate=0.10)
        # The counter exists and is non-negative; the ablation benchmark
        # quantifies it under contention.
        assert network.buffer_transfer_count() >= 0


class TestBypass:
    def test_bypass_dominates_at_low_load(self, mesh4, small_fr_config):
        network, _ = run_traffic(small_fr_config, mesh4, cycles=1_500, rate=0.01)
        assert network.bypass_fraction() > 0.5

    def test_bypass_declines_under_load(self, mesh4, small_fr_config):
        light, _ = run_traffic(small_fr_config, mesh4, cycles=1_500, rate=0.01)
        heavy, _ = run_traffic(small_fr_config, mesh4, cycles=1_500, rate=0.12)
        assert heavy.bypass_fraction() < light.bypass_fraction()


class TestDeterminism:
    def test_same_seed_same_results(self, mesh4, small_fr_config):
        a, _ = run_traffic(small_fr_config, mesh4, cycles=800, rate=0.05, seed=11)
        b, _ = run_traffic(small_fr_config, mesh4, cycles=800, rate=0.05, seed=11)
        assert a.packets_delivered == b.packets_delivered
        assert a.bypass_fraction() == b.bypass_fraction()

    def test_different_seed_different_results(self, mesh4, small_fr_config):
        a, _ = run_traffic(small_fr_config, mesh4, cycles=800, rate=0.05, seed=11)
        b, _ = run_traffic(small_fr_config, mesh4, cycles=800, rate=0.05, seed=12)
        assert a.packets_delivered != b.packets_delivered or (
            a.bypass_fraction() != b.bypass_fraction()
        )
