"""Tests for the Section 5 design options: read ports and plesiochronous
margin."""

import pytest

from dataclasses import replace

from repro.core.config import FR6, FRConfig
from repro.core.input_schedule import InputScheduler
from repro.core.network import FRNetwork
from repro.sim.kernel import Simulator
from repro.topology.mesh import EAST, NORTH
from repro.traffic.packet import Packet
from repro.core.flits import DataFlit


class TestReadPortTracking:
    def test_port_uses_counts_all_departure_kinds(self):
        scheduler = InputScheduler(4)
        scheduler.on_reservation(now=0, arrival=3, departure=3, out_port=EAST)  # bypass
        scheduler.on_reservation(now=0, arrival=4, departure=9, out_port=NORTH)
        assert scheduler.departures_at(3) == 1
        assert scheduler.departures_at(9) == 1
        assert scheduler.departures_at(5) == 0

    def test_port_uses_cleared_as_time_passes(self):
        scheduler = InputScheduler(4)
        scheduler.on_reservation(now=0, arrival=2, departure=5, out_port=EAST)
        packet = Packet(1, 0, 1, 1, 0)
        scheduler.on_arrival(2, DataFlit(packet, 0))
        scheduler.take_departures(5)
        assert scheduler.departures_at(5) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FRConfig(input_read_ports=0)
        with pytest.raises(ValueError):
            FRConfig(plesiochronous_margin=-1)


class TestReadPortConstraintInNetwork:
    def test_single_ported_never_double_reads(self, mesh4):
        """With one read port, an input never drives two outputs at once."""
        network = FRNetwork(
            FRConfig(data_buffers_per_input=6, input_read_ports=1),
            mesh=mesh4,
            injection_rate=0.10,
            seed=6,
        )
        simulator = Simulator(network)
        violations = 0
        for _ in range(150):
            cycle = simulator.cycle
            for router in network.routers:
                for scheduler in router.input_sched:
                    if scheduler.departures_at(cycle) > 1:
                        violations += 1
            simulator.step()
        assert violations == 0

    def test_multi_ported_allows_double_reads(self, mesh4):
        network = FRNetwork(
            FRConfig(data_buffers_per_input=6, input_read_ports=2),
            mesh=mesh4,
            injection_rate=0.12,
            seed=6,
        )
        simulator = Simulator(network)
        doubles = 0
        for _ in range(1_500):
            cycle = simulator.cycle
            for router in network.routers:
                for scheduler in router.input_sched:
                    if scheduler.departures_at(cycle) > 1:
                        doubles += 1
            simulator.step()
        assert doubles > 0  # the extra row actually gets used under load


class TestPlesiochronousMargin:
    def test_margin_delays_buffer_reuse(self, mesh4):
        """With a 1-cycle hold margin, delivery still works and the network
        behaves slightly more conservatively (never better) on latency."""
        plain = FRNetwork(
            FR6, mesh=mesh4, injection_rate=0.08, seed=4
        )
        held = FRNetwork(
            replace(FR6, plesiochronous_margin=1), mesh=mesh4, injection_rate=0.08, seed=4
        )
        for network in (plain, held):
            network.set_measure_window(300, 1_300)
            simulator = Simulator(network)
            simulator.step(1_300)
            network.stop_injection()
            simulator.run_until(
                lambda n=network: not n.packets_in_flight, deadline=20_000, check_every=5
            )
        assert held.packets_delivered == plain.packets_delivered
        assert held.latency_stats.mean >= plain.latency_stats.mean - 0.5
