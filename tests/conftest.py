"""Shared fixtures: small meshes and fast configurations for quick tests."""

from __future__ import annotations

import pytest

from repro.baselines.vc.config import VCConfig
from repro.core.config import FRConfig
from repro.topology.mesh import Mesh2D


@pytest.fixture
def mesh4() -> Mesh2D:
    """A 4x4 mesh: big enough for multi-hop routes, cheap to simulate."""
    return Mesh2D(4, 4)


@pytest.fixture
def mesh8() -> Mesh2D:
    """The paper's 8x8 mesh."""
    return Mesh2D(8, 8)


@pytest.fixture
def small_vc_config() -> VCConfig:
    """A small virtual-channel configuration for unit and integration tests."""
    return VCConfig(num_vcs=2, buffers_per_vc=4)


@pytest.fixture
def small_fr_config() -> FRConfig:
    """A small flit-reservation configuration for unit and integration tests."""
    return FRConfig(data_buffers_per_input=6, control_vcs=2)
