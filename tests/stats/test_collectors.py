"""Tests for the statistics collectors."""

import pytest

from repro.stats.collectors import (
    ControlLeadTracker,
    LatencyStats,
    OccupancyTracker,
    ThroughputCounter,
)


class TestLatencyStats:
    def test_mean(self):
        stats = LatencyStats()
        for value in (10, 20, 30):
            stats.record(value)
        assert stats.mean == 20
        assert stats.count == 3
        assert stats.maximum == 30

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyStats().record(-1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            _ = LatencyStats().mean

    def test_percentiles(self):
        stats = LatencyStats()
        for value in range(1, 101):
            stats.record(value)
        assert stats.percentile(0) == 1
        assert stats.percentile(100) == 100
        assert stats.percentile(50) == pytest.approx(50.5)

    def test_percentile_bounds(self):
        stats = LatencyStats()
        stats.record(5)
        with pytest.raises(ValueError):
            stats.percentile(101)

    def test_samples_copy(self):
        stats = LatencyStats()
        stats.record(1)
        samples = stats.samples()
        samples.append(99)
        assert stats.count == 1


class TestThroughputCounter:
    def test_counts_only_inside_window(self):
        counter = ThroughputCounter(num_nodes=4)
        counter.set_window(10, 20)
        counter.record_flit(5)
        counter.record_flit(10)
        counter.record_flit(19)
        counter.record_flit(20)
        assert counter.flits_ejected == 2

    def test_normalised_rate(self):
        counter = ThroughputCounter(num_nodes=4)
        counter.set_window(0, 10)
        for cycle in range(10):
            counter.record_flit(cycle)
            counter.record_flit(cycle)
        assert counter.flits_per_node_per_cycle == pytest.approx(0.5)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            ThroughputCounter(1).set_window(5, 5)

    def test_rate_without_window_raises(self):
        with pytest.raises(ValueError):
            _ = ThroughputCounter(1).flits_per_node_per_cycle


class TestOccupancyTracker:
    def test_fraction_full(self):
        tracker = OccupancyTracker(pool_size=4)
        for occupied in (4, 4, 2, 0):
            tracker.record(occupied)
        assert tracker.fraction_full == pytest.approx(0.5)
        assert tracker.mean_occupancy == pytest.approx(2.5)

    def test_range_check(self):
        tracker = OccupancyTracker(pool_size=4)
        with pytest.raises(ValueError):
            tracker.record(5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            _ = OccupancyTracker(1).fraction_full


class TestControlLeadTracker:
    def test_control_first(self):
        tracker = ControlLeadTracker()
        tracker.record_control_arrival(1, 100)
        tracker.record_first_data_arrival(1, 114)
        assert tracker.count == 1
        assert tracker.mean_lead == 14

    def test_data_first_gives_negative_lead(self):
        tracker = ControlLeadTracker()
        tracker.record_first_data_arrival(2, 50)
        tracker.record_control_arrival(2, 53)
        assert tracker.mean_lead == -3

    def test_only_first_data_arrival_counts(self):
        tracker = ControlLeadTracker()
        tracker.record_control_arrival(1, 10)
        tracker.record_first_data_arrival(1, 20)
        tracker.record_first_data_arrival(1, 99)
        assert tracker.mean_lead == 10

    def test_duplicate_control_ignored(self):
        tracker = ControlLeadTracker()
        tracker.record_control_arrival(1, 10)
        tracker.record_control_arrival(1, 5)
        tracker.record_first_data_arrival(1, 12)
        assert tracker.mean_lead == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            _ = ControlLeadTracker().mean_lead
