"""Tests for the batch-means confidence intervals."""

import math

import pytest

from repro.sim.rng import DeterministicRng
from repro.stats.confidence import confidence_interval, mean_and_halfwidth


class TestMeanAndHalfwidth:
    def test_mean_exact(self):
        mean, _ = mean_and_halfwidth([1, 2, 3, 4, 5])
        assert mean == 3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_and_halfwidth([])

    def test_tiny_sample_reports_infinite_width(self):
        _, halfwidth = mean_and_halfwidth([1, 2])
        assert math.isinf(halfwidth)

    def test_constant_sample_zero_width(self):
        mean, halfwidth = mean_and_halfwidth([7.0] * 100)
        assert mean == 7.0
        assert halfwidth == 0.0

    def test_width_shrinks_with_sample_size(self):
        rng = DeterministicRng(3)
        small = [rng.random() for _ in range(100)]
        rng = DeterministicRng(3)
        large = [rng.random() for _ in range(10_000)]
        _, width_small = mean_and_halfwidth(small)
        _, width_large = mean_and_halfwidth(large)
        assert width_large < width_small

    def test_coverage_on_iid_noise(self):
        """~95% of intervals on uniform noise should cover the true mean 0.5."""
        covered = 0
        trials = 200
        for seed in range(trials):
            rng = DeterministicRng(seed)
            samples = [rng.random() for _ in range(400)]
            low, high = confidence_interval(samples)
            if low <= 0.5 <= high:
                covered += 1
        assert covered / trials >= 0.85

    def test_99_wider_than_95(self):
        rng = DeterministicRng(1)
        samples = [rng.random() for _ in range(500)]
        _, width95 = mean_and_halfwidth(samples, level=0.95)
        _, width99 = mean_and_halfwidth(samples, level=0.99)
        assert width99 > width95

    def test_unsupported_level(self):
        with pytest.raises(ValueError):
            mean_and_halfwidth([1.0] * 50, level=0.90)


class TestConfidenceInterval:
    def test_interval_is_centred(self):
        rng = DeterministicRng(2)
        samples = [rng.random() for _ in range(500)]
        mean, halfwidth = mean_and_halfwidth(samples)
        low, high = confidence_interval(samples)
        assert low == pytest.approx(mean - halfwidth)
        assert high == pytest.approx(mean + halfwidth)
