"""Streaming LatencyStats: exact mode unchanged, estimates within bound.

The documented contract (``repro/stats/streaming.py``): on the unimodal,
heavy-right-tailed distributions the simulator produces, P² lands within
5% relative error (or 1 cycle absolute, whichever is larger) of the exact
percentile at the tracked quantiles, and the Welford moments match the
exact mean/stddev to floating-point precision.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.stats.collectors import DEFAULT_TRACKED_QUANTILES, LatencyStats
from repro.stats.streaming import P2Quantile, RunningMoments


def _latency_like(seed: int, n: int = 20_000) -> list[int]:
    """Unimodal with a heavy right tail, like network latency samples."""
    rng = random.Random(seed)
    return [int(20 + rng.expovariate(1 / 15)) for _ in range(n)]


# -- default mode must be byte-for-byte the old exact behavior ---------------


def test_default_mode_is_exact_and_keeps_samples():
    stats = LatencyStats()
    for sample in [5, 3, 9, 3, 7]:
        stats.record(sample)
    assert stats.streaming is False
    assert stats.samples() == [5, 3, 9, 3, 7]
    assert stats.count == 5
    assert stats.mean == pytest.approx(5.4)
    assert stats.maximum == 9
    assert stats.percentile(50) == 5.0
    assert stats.percentile(0) == 3.0
    assert stats.percentile(100) == 9.0
    assert stats.histogram(bin_width=5) == [(0, 2), (5, 3)]


def test_default_mode_serves_arbitrary_percentiles():
    stats = LatencyStats()
    for sample in range(101):
        stats.record(sample)
    assert stats.percentile(37.5) == pytest.approx(37.5)


# -- streaming mode ----------------------------------------------------------


@pytest.mark.parametrize("seed", (1, 7, 23))
def test_streaming_percentiles_within_documented_bound(seed: int):
    samples = _latency_like(seed)
    exact = LatencyStats()
    stream = LatencyStats(streaming=True)
    for sample in samples:
        exact.record(sample)
        stream.record(sample)
    for q in DEFAULT_TRACKED_QUANTILES:
        reference = exact.percentile(q)
        estimate = stream.percentile(q)
        bound = max(0.05 * reference, 1.0)
        assert abs(estimate - reference) <= bound, (
            f"p{q:g}: estimate {estimate} vs exact {reference} (seed {seed})"
        )


def test_streaming_moments_match_exact():
    samples = _latency_like(99)
    exact = LatencyStats()
    stream = LatencyStats(streaming=True)
    for sample in samples:
        exact.record(sample)
        stream.record(sample)
    assert stream.count == exact.count
    assert stream.mean == pytest.approx(exact.mean)
    assert stream.stddev == pytest.approx(exact.stddev)
    assert stream.maximum == exact.maximum
    assert stream.percentile(0) == min(samples)
    assert stream.percentile(100) == max(samples)


def test_streaming_is_exact_below_five_samples():
    stream = LatencyStats(streaming=True)
    for sample in [9, 1, 5]:
        stream.record(sample)
    assert stream.percentile(50) == 5.0
    assert stream.mean == pytest.approx(5.0)


def test_streaming_rejects_untracked_percentile():
    stream = LatencyStats(streaming=True)
    stream.record(4)
    with pytest.raises(ValueError, match="tracks only"):
        stream.percentile(42)


def test_streaming_custom_tracked_quantiles():
    stream = LatencyStats(streaming=True, tracked_quantiles=(75.0,))
    for sample in range(1001):
        stream.record(sample)
    assert stream.percentile(75.0) == pytest.approx(750, rel=0.05)
    with pytest.raises(ValueError, match="tracks only"):
        stream.percentile(50)


def test_streaming_keeps_no_samples():
    stream = LatencyStats(streaming=True)
    stream.record(3)
    with pytest.raises(ValueError, match="no samples"):
        stream.samples()
    with pytest.raises(ValueError, match="no histogram"):
        stream.histogram()


def test_streaming_confidence_is_normal_approximation():
    stream = LatencyStats(streaming=True)
    rng = random.Random(5)
    for _ in range(10_000):
        stream.record(int(rng.gauss(50, 10)) if rng.random() else 50)
    halfwidth = stream.confidence_halfwidth()
    expected = 1.959964 * stream.stddev / math.sqrt(stream.count)
    assert halfwidth == pytest.approx(expected)


def test_streaming_rejects_bad_quantiles():
    with pytest.raises(ValueError, match="tracked quantiles"):
        LatencyStats(streaming=True, tracked_quantiles=(0.0,))
    with pytest.raises(ValueError, match="tracked quantiles"):
        LatencyStats(streaming=True, tracked_quantiles=(100.0,))


def test_streaming_rejects_negative_latency():
    stream = LatencyStats(streaming=True)
    with pytest.raises(ValueError, match="negative"):
        stream.record(-1)


# -- the underlying estimators ----------------------------------------------


def test_p2_memory_is_constant():
    estimator = P2Quantile(0.95)
    for value in _latency_like(3, n=50_000):
        estimator.observe(value)
    assert estimator.count == 50_000
    assert len(estimator._heights) == 5
    assert not estimator._initial or len(estimator._initial) == 5


def test_p2_rejects_degenerate_quantile():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


def test_p2_no_samples_raises():
    with pytest.raises(ValueError, match="no samples"):
        P2Quantile(0.5).value


def test_running_moments_welford():
    moments = RunningMoments()
    samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    for sample in samples:
        moments.observe(sample)
    mean = sum(samples) / len(samples)
    variance = sum((x - mean) ** 2 for x in samples) / (len(samples) - 1)
    assert moments.mean == pytest.approx(mean)
    assert moments.variance == pytest.approx(variance)
    assert moments.stddev == pytest.approx(math.sqrt(variance))


def test_running_moments_needs_two_samples():
    moments = RunningMoments()
    moments.observe(1.0)
    with pytest.raises(ValueError):
        moments.variance
