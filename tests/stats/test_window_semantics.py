"""Regression tests: mid-run attach must not double-count a boundary cycle.

The measurement window is half-open, ``[start, end)``.  Before this guard,
a window opened at a cycle that had already recorded ejections would count
that cycle's *remaining* ejections as if they were the whole cycle; and an
occupancy tracker attached mid-run would sample the attach cycle twice
(once by the attaching code, once by the network's own end-of-cycle
sample).  These tests pin both guards.
"""

from __future__ import annotations

import pytest

from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.sim.kernel import Simulator
from repro.stats.collectors import OccupancyTracker, ThroughputCounter


class TestThroughputWindow:
    def test_window_is_half_open(self) -> None:
        counter = ThroughputCounter(num_nodes=4)
        counter.set_window(10, 20)
        counter.record_flit(10)  # included: start is closed
        counter.record_flit(19)  # included
        counter.record_flit(20)  # excluded: end is open
        assert counter.flits_ejected == 2
        assert counter.flits_per_node_per_cycle == 2 / (10 * 4)

    def test_window_at_recorded_cycle_rejected(self) -> None:
        counter = ThroughputCounter(num_nodes=4)
        counter.record_flit(10)
        with pytest.raises(ValueError, match="double-counted"):
            counter.set_window(10, 20)

    def test_window_before_recorded_cycle_rejected(self) -> None:
        counter = ThroughputCounter(num_nodes=4)
        counter.record_flit(10)
        with pytest.raises(ValueError, match="double-counted"):
            counter.set_window(5, 20)

    def test_window_after_recorded_cycle_accepted(self) -> None:
        counter = ThroughputCounter(num_nodes=4)
        counter.record_flit(10)
        counter.set_window(11, 21)
        assert counter.flits_ejected == 0
        counter.record_flit(11)
        assert counter.flits_ejected == 1

    def test_empty_window_rejected(self) -> None:
        with pytest.raises(ValueError, match="empty"):
            ThroughputCounter(num_nodes=4).set_window(10, 10)

    def test_out_of_window_records_still_advance_the_guard(self) -> None:
        counter = ThroughputCounter(num_nodes=4)
        counter.set_window(0, 5)
        counter.record_flit(7)  # outside the window, but seen
        with pytest.raises(ValueError):
            counter.set_window(7, 12)


class TestOccupancyBoundary:
    def test_same_cycle_sample_ignored(self) -> None:
        tracker = OccupancyTracker(pool_size=8)
        tracker.record(4, cycle=10)
        tracker.record(7, cycle=10)  # mid-run attach boundary: silently skipped
        assert tracker.cycles == 1
        assert tracker.mean_occupancy == 4.0

    def test_backwards_cycle_rejected(self) -> None:
        tracker = OccupancyTracker(pool_size=8)
        tracker.record(4, cycle=10)
        with pytest.raises(ValueError, match="already recorded"):
            tracker.record(4, cycle=9)

    def test_unclocked_samples_keep_legacy_behaviour(self) -> None:
        tracker = OccupancyTracker(pool_size=2)
        tracker.record(2)
        tracker.record(2)
        tracker.record(0)
        assert tracker.cycles == 3
        assert tracker.fraction_full == pytest.approx(2 / 3)

    def test_mid_run_attach_does_not_double_count(
        self, mesh4, small_fr_config
    ) -> None:
        """End-to-end: attach a tracker mid-run, one sample per cycle."""
        network = FRNetwork(
            small_fr_config, mesh=mesh4, injection_rate=0.05, seed=1
        )
        simulator = Simulator(network)
        simulator.step(50)
        tracker = network.track_occupancy(5)
        simulator.step(50)
        assert tracker.cycles <= 50
