"""Tests for the warm-up detector."""

import pytest

from repro.stats.warmup import WarmupDetector


def feed(detector, values, start_cycle=0):
    for offset, value in enumerate(values):
        if detector.record(value, start_cycle + offset):
            return start_cycle + offset
    return None


class TestWarmupDetector:
    def test_requires_min_cycles(self):
        detector = WarmupDetector(min_cycles=200, window=50)
        warm_at = feed(detector, [1.0] * 300)
        assert warm_at is not None
        assert warm_at >= 199

    def test_stable_signal_warms_at_minimum(self):
        detector = WarmupDetector(min_cycles=100, window=20)
        warm_at = feed(detector, [5.0] * 150)
        assert warm_at == 99

    def test_growing_signal_never_warms(self):
        """A queue growing 5% per window (an oversaturated network) should
        not be declared warm."""
        detector = WarmupDetector(min_cycles=100, window=50, tolerance=0.02)
        values = [1.0 * (1.08 ** (i // 50)) for i in range(1_000)]
        assert feed(detector, values) is None

    def test_signal_that_stabilises_warms_late(self):
        detector = WarmupDetector(min_cycles=100, window=50, tolerance=0.02)
        ramp = [i / 100 for i in range(400)]
        plateau = [4.0] * 300
        warm_at = feed(detector, ramp + plateau)
        assert warm_at is not None
        assert warm_at >= 400

    def test_empty_network_is_warm(self):
        """All-zero queues trip the absolute floor, not a 0/0 division."""
        detector = WarmupDetector(min_cycles=100, window=20)
        assert feed(detector, [0.0] * 150) == 99

    def test_min_cycles_must_cover_windows(self):
        with pytest.raises(ValueError):
            WarmupDetector(min_cycles=10, window=20)

    def test_is_warm_latches(self):
        detector = WarmupDetector(min_cycles=100, window=20)
        feed(detector, [1.0] * 150)
        assert detector.is_warm
        assert detector.record(1e9, 1_000)  # stays warm afterwards
