"""Tests for LatencyStats histogram and dispersion additions."""

import pytest

from repro.stats.collectors import LatencyStats


def stats_with(values):
    stats = LatencyStats()
    for value in values:
        stats.record(value)
    return stats


class TestStddev:
    def test_known_value(self):
        stats = stats_with([2, 4, 4, 4, 5, 5, 7, 9])
        assert stats.stddev == pytest.approx(2.138, abs=0.01)

    def test_constant_sample(self):
        assert stats_with([5, 5, 5]).stddev == 0.0

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            _ = stats_with([1]).stddev


class TestHistogram:
    def test_bins_cover_range_with_gaps(self):
        stats = stats_with([10, 11, 12, 30, 31, 55])
        assert stats.histogram(10) == [(10, 3), (20, 0), (30, 2), (40, 0), (50, 1)]

    def test_counts_sum_to_sample_size(self):
        stats = stats_with(list(range(0, 97, 3)))
        rows = stats.histogram(7)
        assert sum(count for _, count in rows) == stats.count

    def test_bin_width_one(self):
        stats = stats_with([3, 3, 4])
        assert stats.histogram(1) == [(3, 2), (4, 1)]

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            stats_with([1]).histogram(0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyStats().histogram()

    def test_format_histogram_bars(self):
        stats = stats_with([10] * 8 + [20] * 4)
        text = stats.format_histogram(bin_width=10, bar_width=8)
        lines = text.splitlines()
        assert lines[0].endswith("#" * 8)
        assert lines[1].endswith("#" * 4)
